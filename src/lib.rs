//! # compreuse-repro — workspace façade
//!
//! A from-scratch reproduction of Ding & Li, *"A Compiler Scheme for
//! Reusing Intermediate Computation Results"* (CGO 2004). This crate
//! re-exports the workspace's layers so examples and downstream users can
//! depend on one name; see the individual crates for the real APIs:
//!
//! - [`minic`] — the C-subset front end (GCC's role in the paper);
//! - [`flow`] — graphs, CFGs, dataflow solving;
//! - [`analysis`] — the paper's supporting analyses (call graph, pointer
//!   analysis, def-use, code-segment analysis);
//! - [`memo_runtime`] — the reuse hash tables (direct / LRU / merged);
//! - [`vm`] — the profiling interpreter standing in for the iPAQ;
//! - [`compreuse`] — the scheme itself (cost-benefit, specialization,
//!   nesting, merging, transformation);
//! - [`workloads`] — the seven benchmarks rebuilt for MiniC.
//!
//! Start with `examples/quickstart.rs`.

#![warn(missing_docs)]

pub use analysis;
pub use compreuse;
pub use flow;
pub use memo_runtime;
pub use minic;
pub use vm;
pub use workloads;
