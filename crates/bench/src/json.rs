//! Minimal JSON reader for round-trip checks of the reports this crate
//! emits.
//!
//! The workspace builds offline with no third-party crates, and the
//! report writers in [`crate::reports`] assemble JSON by hand — so
//! nothing would catch a malformed report (an unescaped quote, a
//! trailing comma, a bare `NaN`) until a downstream consumer choked on
//! it. This module is the other half of the contract: a strict
//! recursive-descent parser, just big enough to parse everything the
//! writers produce, used by the chaos gate and the report tests to prove
//! every emitted document round-trips.
//!
//! It is a *reader*, not a serde replacement: numbers are `f64`, objects
//! are association lists (first match wins on lookup), and there is no
//! serialization side.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON does not distinguish integer from float.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number inside a `Num`, truncated to `u64` (negative → `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The boolean inside a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string inside a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of an `Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed byte.
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: format!("expected {expected}"),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(lit))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Json::Num)
            .ok_or_else(|| ParseError {
                at: start,
                message: "expected a finite number".into(),
            })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("a closing quote")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("a \\uXXXX escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("an escape character")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("no raw control characters")),
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("valid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat("{")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": "x\"\n"}"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"\n"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "nul",
            "1 2",
            "NaN",
            "\"\\q\"",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed doc {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_raw_utf8_round_trip() {
        let v = parse("\"\\u00e9é\"").unwrap();
        assert_eq!(v.as_str(), Some("éé"));
    }
}
