//! Shared measurement machinery: run the pipeline once per (workload,
//! opt-level), then execute baseline and transformed programs on chosen
//! inputs. Independent workloads run in parallel with scoped threads.

use compreuse::{PipelineConfig, ReuseOutcome};
use memo_runtime::MemoTable;
use vm::{CostModel, OptLevel, RunConfig};
use workloads::Workload;

/// Which input family to execute with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// The default inputs (profiling always uses these, as in the paper).
    Default,
    /// The alternate inputs of Table 10.
    Alt,
}

/// A prepared workload: pipeline ran, both programs lowered.
#[derive(Debug)]
pub struct Prepared {
    /// Workload name.
    pub name: &'static str,
    /// Pipeline product.
    pub outcome: ReuseOutcome,
    /// Lowered baseline module.
    pub base_module: vm::Module,
    /// Lowered transformed module.
    pub memo_module: vm::Module,
    /// The opt level decisions were made for.
    pub opt: OptLevel,
    /// The execution engine used for profiling and measurement runs.
    pub engine: vm::Engine,
    /// The pipeline's mined specialization plan (shared by the baseline
    /// and memoized run configs when the engine is
    /// [`vm::Engine::Specialized`], `None` otherwise).
    pub spec_plan: Option<std::sync::Arc<vm::SpecPlan>>,
}

/// Extra preparation options.
#[derive(Debug, Clone, Default)]
pub struct PrepareOpts {
    /// Per-table byte cap (Figures 14/15).
    pub bytes_cap: Option<usize>,
    /// Disable §2.5 merging (Table 5 models per-segment hardware buffers).
    pub disable_merging: bool,
    /// Execution engine (modelled cycles are engine-independent; this
    /// only picks the host-speed implementation).
    pub engine: vm::Engine,
    /// Plan with dependency-tracked key reduction (DESIGN.md §8g). Off by
    /// default: the paper tables reproduce the static exact-match scheme,
    /// so only the serve harness (which measures the incremental-reuse
    /// extension) opts in.
    pub validate: bool,
}

/// Runs the reuse pipeline for `w` at `opt`, profiling on default inputs
/// scaled by `profile_scale`.
///
/// # Panics
///
/// Panics if the bundled workload fails the pipeline (covered by tests).
pub fn prepare(w: &Workload, opt: OptLevel, profile_scale: f64) -> Prepared {
    prepare_with(w, opt, profile_scale, &PrepareOpts::default())
}

/// Like [`prepare`] with extra [`PrepareOpts`].
pub fn prepare_with(
    w: &Workload,
    opt: OptLevel,
    profile_scale: f64,
    opts: &PrepareOpts,
) -> Prepared {
    let program =
        minic::parse(&w.source).unwrap_or_else(|e| panic!("{}: parse failed: {e}", w.name));
    let config = PipelineConfig {
        cost: CostModel::for_level(opt),
        profile_input: (w.default_input)(profile_scale),
        bytes_cap: opts.bytes_cap,
        enable_merging: !opts.disable_merging,
        engine: opts.engine,
        enable_validation: opts.validate,
        ..PipelineConfig::default()
    };
    let outcome = compreuse::run_pipeline(&program, &config)
        .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", w.name));
    let base_module = vm::lower(&outcome.baseline);
    let memo_module = vm::lower(&outcome.transformed);
    let spec_plan = outcome.spec_plan.clone().map(std::sync::Arc::new);
    Prepared {
        name: w.name,
        outcome,
        base_module,
        memo_module,
        opt,
        engine: opts.engine,
        spec_plan,
    }
}

/// One baseline-vs-memoized comparison.
#[derive(Debug)]
pub struct Measurement {
    /// Workload name.
    pub name: &'static str,
    /// Baseline modelled cycles / seconds / joules.
    pub orig_cycles: u64,
    /// Memoized modelled cycles.
    pub memo_cycles: u64,
    /// Baseline modelled seconds.
    pub orig_seconds: f64,
    /// Memoized modelled seconds.
    pub memo_seconds: f64,
    /// Baseline modelled energy (J).
    pub orig_energy: f64,
    /// Memoized modelled energy (J).
    pub memo_energy: f64,
    /// Whether both versions printed identical output (must be true).
    pub output_match: bool,
    /// The memo tables after the run (stats + access histograms).
    pub tables: Vec<MemoTable>,
}

impl Measurement {
    /// Speedup = orig time / memoized time.
    pub fn speedup(&self) -> f64 {
        self.orig_seconds / self.memo_seconds
    }

    /// Energy saving fraction (paper prints percent).
    pub fn energy_saving(&self) -> f64 {
        1.0 - self.memo_energy / self.orig_energy
    }
}

/// Executes baseline and transformed programs on `input` inputs at
/// `run_scale`.
///
/// # Panics
///
/// Panics on a trap (workloads are trap-free by construction and tests).
pub fn execute(p: &Prepared, w: &Workload, input: InputKind, run_scale: f64) -> Measurement {
    execute_with_tables(p, w, input, run_scale, p.outcome.make_tables())
}

/// Like [`execute`] but with caller-provided memo tables (Table 5 swaps in
/// small LRU buffers to model the hardware proposals).
///
/// # Panics
///
/// Panics on a trap.
pub fn execute_with_tables(
    p: &Prepared,
    w: &Workload,
    input: InputKind,
    run_scale: f64,
    tables: Vec<MemoTable>,
) -> Measurement {
    let data = match input {
        InputKind::Default => (w.default_input)(run_scale),
        InputKind::Alt => (w.alt_input)(run_scale),
    };
    let cost = CostModel::for_level(p.opt);
    let orig = vm::run(
        &p.base_module,
        RunConfig {
            cost: cost.clone(),
            input: data.clone(),
            engine: p.engine,
            spec_plan: p.spec_plan.clone(),
            ..RunConfig::default()
        },
    )
    .unwrap_or_else(|t| panic!("{}: baseline trapped: {t}", p.name));
    let memo = vm::run(
        &p.memo_module,
        RunConfig {
            cost,
            input: data,
            tables,
            engine: p.engine,
            spec_plan: p.spec_plan.clone(),
            ..RunConfig::default()
        },
    )
    .unwrap_or_else(|t| panic!("{}: memoized trapped: {t}", p.name));
    Measurement {
        name: p.name,
        orig_cycles: orig.cycles,
        memo_cycles: memo.cycles,
        orig_seconds: orig.seconds,
        memo_seconds: memo.seconds,
        orig_energy: orig.energy_joules,
        memo_energy: memo.energy_joules,
        output_match: orig.output_text() == memo.output_text(),
        tables: memo.tables,
    }
}

/// Prepares and executes many workloads in parallel (one thread each).
pub fn measure_all(
    workloads: &[Workload],
    opt: OptLevel,
    scale: f64,
    input: InputKind,
) -> Vec<Measurement> {
    measure_all_with_engine(workloads, opt, scale, input, vm::Engine::default())
}

/// Like [`measure_all`] but on an explicit execution engine (modelled
/// results are engine-independent; wall-clock is not).
pub fn measure_all_with_engine(
    workloads: &[Workload],
    opt: OptLevel,
    scale: f64,
    input: InputKind,
    engine: vm::Engine,
) -> Vec<Measurement> {
    let opts = PrepareOpts {
        engine,
        ..PrepareOpts::default()
    };
    let mut results: Vec<Option<Measurement>> = Vec::new();
    results.resize_with(workloads.len(), || None);
    std::thread::scope(|s| {
        for (slot, w) in results.iter_mut().zip(workloads) {
            let opts = &opts;
            s.spawn(move || {
                let p = prepare_with(w, opt, scale, opts);
                let m = execute(&p, w, input, scale);
                assert!(m.output_match, "{}: outputs diverged", w.name);
                *slot = Some(m);
            });
        }
    });
    results.into_iter().map(|m| m.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_execute_unepic() {
        let w = workloads::unepic::unepic();
        let p = prepare(&w, OptLevel::O0, 0.05);
        assert!(p.outcome.report.transformed >= 1);
        let m = execute(&p, &w, InputKind::Default, 0.05);
        assert!(m.output_match);
        assert!(m.speedup() > 1.0, "UNEPIC should win: {}", m.speedup());
        assert!(m.energy_saving() > 0.0);
    }

    #[test]
    fn alt_input_executes_against_default_profile() {
        let w = workloads::unepic::unepic();
        let p = prepare(&w, OptLevel::O3, 0.05);
        let m = execute(&p, &w, InputKind::Alt, 0.02);
        assert!(m.output_match);
    }

    #[test]
    fn measure_all_runs_in_parallel() {
        let ws = vec![workloads::unepic::unepic(), workloads::rasta::rasta()];
        let ms = measure_all(&ws, OptLevel::O0, 0.05, InputKind::Default);
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m.output_match));
    }
}
