//! `metrics --contend` machinery: a multi-thread contention microbench
//! over one [`ShardedTable`], stressing the optimistic lock-free probe
//! path (DESIGN.md §8h) directly rather than through the full service.
//!
//! Per sweep point a fresh store is pre-populated with a hot key set,
//! then `threads` workers each run a fixed operation budget: mostly
//! probes of hot keys, with every `write_every`-th operation a record —
//! alternating between re-recording a hot key (same payload, so hits
//! stay verifiable) and inserting a fresh cold key (which can evict a
//! hot entry and forces real churn on the version words). Every hit's
//! payload is checked against the deterministic per-key function; a
//! mismatch is a *torn read* and is counted, never tolerated. The point
//! reports wall time, aggregate throughput, and the store's merged
//! [`TableStats`] — including `optimistic_hits` and `optimistic_retries`,
//! which show how much of the probe traffic resolved without the shard
//! lock and how often writers forced a reader to retry.

use memo_runtime::{ShardedTable, TableSpec, TableStats};

/// Options for the contention microbench.
#[derive(Debug, Clone)]
pub struct ContendOpts {
    /// Aggregate slot budget for the shared store.
    pub slots: usize,
    /// Lock shards (rounded up to a power of two by the store).
    pub shards: usize,
    /// Distinct hot keys pre-populated and probed by every thread.
    pub hot_keys: usize,
    /// Operations per thread per sweep point.
    pub ops_per_thread: usize,
    /// One in `write_every` operations records instead of probing.
    pub write_every: usize,
}

impl Default for ContendOpts {
    fn default() -> Self {
        ContendOpts {
            slots: 256,
            shards: 8,
            hot_keys: 64,
            ops_per_thread: 100_000,
            write_every: 16,
        }
    }
}

const KEY_WORDS: usize = 2;
const OUT_WORDS: usize = 2;

/// The deterministic payload recorded for `key`: any hit that returns
/// anything else is a torn read.
fn payload_of(key: &[u64]) -> [u64; OUT_WORDS] {
    let mut out = [0u64; OUT_WORDS];
    for (j, w) in out.iter_mut().enumerate() {
        *w = key[0]
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key[1].rotate_left(j as u32 + 1) ^ j as u64);
    }
    out
}

fn hot_key(k: usize) -> [u64; KEY_WORDS] {
    [k as u64, 0x0048_4f54]
}

fn cold_key(n: u64) -> [u64; KEY_WORDS] {
    [n, 0x434f_4c44]
}

/// One thread count's measurements.
#[derive(Debug)]
pub struct ContendPoint {
    /// Worker threads at this point.
    pub threads: usize,
    /// Wall-clock seconds for the whole point.
    pub wall_seconds: f64,
    /// Total operations executed across all threads.
    pub ops: u64,
    /// Aggregate operations per second.
    pub throughput_ops: f64,
    /// Probe operations that hit.
    pub hits: u64,
    /// Probe operations that missed.
    pub misses: u64,
    /// Hits whose payload did not match the recorded value. Must be 0;
    /// anything else means the version-word protocol leaked a torn entry.
    pub torn: u64,
    /// The store's merged statistics after the point, including
    /// `optimistic_hits` / `optimistic_retries`.
    pub stats: TableStats,
    /// Whether the per-shard statistics summed losslessly to `stats`.
    pub shard_merge_ok: bool,
}

/// The full contention-microbench result.
#[derive(Debug)]
pub struct ContendSummary {
    /// Options the sweep ran under.
    pub opts: ContendOpts,
    /// Host CPUs available to the process (a single-CPU host cannot show
    /// a parallel speedup, and readers rarely overlap writers on one).
    pub cpus: usize,
    /// One entry per swept thread count.
    pub points: Vec<ContendPoint>,
}

impl ContendSummary {
    /// Whether no sweep point observed a torn hit payload.
    pub fn no_torn_reads(&self) -> bool {
        self.points.iter().all(|p| p.torn == 0)
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Builds a fresh pre-populated store for one sweep point.
fn build_store(opts: &ContendOpts) -> ShardedTable {
    let spec = TableSpec {
        slots: opts.slots,
        key_words: KEY_WORDS,
        out_words: vec![OUT_WORDS],
    };
    let table = ShardedTable::try_from_spec(&spec, opts.shards)
        .unwrap_or_else(|e| panic!("contend: invalid spec: {e}"));
    for k in 0..opts.hot_keys {
        let key = hot_key(k);
        table.record(0, &key, &payload_of(&key));
    }
    table
}

/// Runs the microbench at each thread count in `thread_counts`.
///
/// # Panics
///
/// Panics if the synthetic table spec is invalid (covered by tests).
pub fn run_contend(opts: &ContendOpts, thread_counts: &[usize]) -> ContendSummary {
    let mut points = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let table = build_store(opts);
        let mut tallies = vec![(0u64, 0u64, 0u64); threads.max(1)];
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for (t, tally) in tallies.iter_mut().enumerate() {
                let table = &table;
                s.spawn(move || {
                    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((t as u64 + 1) << 32);
                    let mut out = Vec::new();
                    let (mut hits, mut misses, mut torn) = (0u64, 0u64, 0u64);
                    let mut churn = 0u64;
                    for op in 0..opts.ops_per_thread {
                        let r = xorshift(&mut rng);
                        if op % opts.write_every == opts.write_every - 1 {
                            // Writer turn: alternate re-recording a hot key
                            // (payload unchanged) with inserting a cold key
                            // that may evict one.
                            if r & 1 == 0 {
                                let key = hot_key((r as usize / 2) % opts.hot_keys);
                                table.record(0, &key, &payload_of(&key));
                            } else {
                                churn += 1;
                                let key = cold_key((t as u64) << 32 | churn);
                                table.record(0, &key, &payload_of(&key));
                            }
                        } else {
                            let key = hot_key(r as usize % opts.hot_keys);
                            if table.lookup(0, &key, &mut out) {
                                hits += 1;
                                if out != payload_of(&key) {
                                    torn += 1;
                                }
                            } else {
                                misses += 1;
                            }
                        }
                    }
                    *tally = (hits, misses, torn);
                });
            }
        });
        let wall_seconds = start.elapsed().as_secs_f64();
        let ops = (threads.max(1) * opts.ops_per_thread) as u64;
        let (hits, misses, torn) = tallies.iter().fold((0, 0, 0), |(h, m, x), &(th, tm, tx)| {
            (h + th, m + tm, x + tx)
        });
        let stats = table.stats();
        let mut summed = TableStats::default();
        for s in table.shard_stats() {
            summed.merge(&s);
        }
        let shard_merge_ok = summed == stats;
        points.push(ContendPoint {
            threads,
            wall_seconds,
            ops,
            throughput_ops: if wall_seconds > 0.0 {
                ops as f64 / wall_seconds
            } else {
                0.0
            },
            hits,
            misses,
            torn,
            stats,
            shard_merge_ok,
        });
    }
    ContendSummary {
        opts: opts.clone(),
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contended_sweep_sees_no_torn_reads_and_counts_optimistically() {
        let opts = ContendOpts {
            ops_per_thread: 4_000,
            ..ContendOpts::default()
        };
        let summary = run_contend(&opts, &[1, 2]);
        assert_eq!(summary.points.len(), 2);
        assert!(summary.no_torn_reads());
        for p in &summary.points {
            assert_eq!(p.ops, (p.threads * opts.ops_per_thread) as u64);
            assert!(p.hits + p.misses > 0);
            assert!(p.shard_merge_ok, "shard stats lost counts in the merge");
            // Warm hot keys resolve without the lock; the single-thread
            // point alone already proves the optimistic path carries hits.
            assert!(
                p.stats.optimistic_hits > 0,
                "no optimistic hits at {} threads",
                p.threads
            );
            // Probes and records must both be accounted: each thread's
            // probe ops all land in accesses (hit or miss).
            assert_eq!(p.stats.hits + p.stats.misses, p.stats.accesses);
        }
    }

    #[test]
    fn payloads_are_deterministic_per_key() {
        let k = hot_key(7);
        assert_eq!(payload_of(&k), payload_of(&k));
        assert_ne!(payload_of(&hot_key(1)), payload_of(&hot_key(2)));
    }
}
