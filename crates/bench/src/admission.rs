//! Deterministic A/B microbench for TinyLFU admission (DESIGN.md §8i).
//!
//! Drives the *same* key stream — a hot working set re-recorded many
//! times, then a burst of one-shot keys that alias the hot slots —
//! against two stores of identical geometry, one with the admission
//! sketch enabled and one without. Without admission every one-shot
//! record evicts whatever hot entry shares its slot; with admission the
//! sketch refuses candidates that look less frequent than the resident.
//! The comparison is pure store arithmetic (no timing), so the verdict
//! is reproducible run to run.

use memo_runtime::{ShardedTable, TableSpec, TableStats};

/// One arm's measurements after the stream.
#[derive(Debug)]
pub struct AdmissionArm {
    /// Entries overwritten by a different key.
    pub evictions: u64,
    /// Recordings the sketch refused (always 0 with admission off).
    pub admission_rejects: u64,
    /// Recordings that landed in the store.
    pub insertions: u64,
    /// Fraction of the hot working set still resident after the one-shot
    /// burst (the quantity admission exists to protect).
    pub hot_survival: f64,
    /// Full statistics fold for the report.
    pub stats: TableStats,
}

/// The A/B verdict at equal memory.
#[derive(Debug)]
pub struct AdmissionAb {
    /// Slot budget of each store.
    pub slots: usize,
    /// Lock shards per store.
    pub shards: usize,
    /// Hot working-set size (keys re-recorded every round).
    pub hot_keys: u64,
    /// Rounds the hot set is replayed before the burst.
    pub hot_rounds: u64,
    /// One-shot keys recorded once each after the hot phase.
    pub one_shots: u64,
    /// Sketch enabled.
    pub on: AdmissionArm,
    /// Sketch disabled.
    pub off: AdmissionArm,
}

impl AdmissionAb {
    /// Whether the experiment separated the arms: admission must have
    /// refused at least one recording, evicted strictly less than the
    /// unguarded arm, and kept at least as much of the hot set resident.
    pub fn conclusive(&self) -> bool {
        self.on.admission_rejects > 0
            && self.on.evictions < self.off.evictions
            && self.on.hot_survival >= self.off.hot_survival
    }
}

/// Runs one arm: hot keys × rounds (lookup-then-record, the probe shape
/// the VM generates), a one-shot burst, then a hot re-probe pass that
/// measures survival.
fn run_arm(
    slots: usize,
    shards: usize,
    hot_keys: u64,
    hot_rounds: u64,
    one_shots: u64,
    admission: bool,
) -> AdmissionArm {
    let spec = TableSpec {
        slots,
        key_words: 1,
        out_words: vec![1],
    };
    let mut store = ShardedTable::try_from_spec(&spec, shards).expect("valid spec");
    store.set_admission(admission);
    let mut out = Vec::new();
    // The sketch learns frequencies from the record stream, so the hot
    // phase records every round (same-key refreshes are always admitted
    // and each one bumps the key's counters toward saturation).
    for _ in 0..hot_rounds {
        for k in 0..hot_keys {
            store.lookup(0, &[k], &mut out);
            store.record(0, &[k], &[k * 3 + 1]);
        }
    }
    // One-shot burst: keys the stream never repeats, offset far past the
    // hot range so they alias hot slots without ever equalling a hot key.
    for k in 0..one_shots {
        let key = 1_000_000 + k;
        if !store.lookup(0, &[key], &mut out) {
            store.record(0, &[key], &[key]);
        }
    }
    let mut survived = 0u64;
    for k in 0..hot_keys {
        if store.lookup(0, &[k], &mut out) {
            survived += 1;
        }
    }
    let stats = store.stats();
    AdmissionArm {
        evictions: stats.evictions,
        admission_rejects: stats.admission_rejects,
        insertions: stats.insertions,
        hot_survival: survived as f64 / hot_keys.max(1) as f64,
        stats,
    }
}

/// Runs both arms over the identical stream at equal memory.
pub fn run_admission_ab(
    slots: usize,
    shards: usize,
    hot_keys: u64,
    hot_rounds: u64,
    one_shots: u64,
) -> AdmissionAb {
    AdmissionAb {
        slots,
        shards,
        hot_keys,
        hot_rounds,
        one_shots,
        on: run_arm(slots, shards, hot_keys, hot_rounds, one_shots, true),
        off: run_arm(slots, shards, hot_keys, hot_rounds, one_shots, false),
    }
}

/// The default experiment shape used by `metrics --serve --admission`:
/// a 64-key hot set saturating its sketch counters, then 512 one-shots
/// against a 256-slot single-shard store.
pub fn default_admission_ab() -> AdmissionAb {
    run_admission_ab(256, 1, 64, 16, 512)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_experiment_is_conclusive() {
        let ab = default_admission_ab();
        assert!(
            ab.conclusive(),
            "admission on: {} evictions, {} rejects; off: {} evictions",
            ab.on.evictions,
            ab.on.admission_rejects,
            ab.off.evictions
        );
        assert_eq!(ab.off.admission_rejects, 0, "off arm has no sketch");
        assert!(
            (ab.on.hot_survival - 1.0).abs() < f64::EPSILON,
            "a saturated hot set must fully survive: {}",
            ab.on.hot_survival
        );
    }

    #[test]
    fn arms_see_the_identical_stream() {
        let ab = run_admission_ab(128, 1, 32, 8, 200);
        let probes_on = ab.on.stats.accesses;
        let probes_off = ab.off.stats.accesses;
        // Accesses differ only through lookup misses turned hits by
        // surviving entries; the submitted probe count is identical, so
        // the totals must be identical too (every probe counts once).
        assert_eq!(probes_on, probes_off, "same stream, same probe count");
    }
}
