//! ASCII table rendering for the harness output.

/// Prints a titled, column-aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate().take(ncols) {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--")
    );
    for row in rows {
        line(row);
    }
}

/// Renders a horizontal ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Formats a float with `digits` decimals.
pub fn f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a byte count like the paper prints table sizes.
pub fn bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.2}MB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.0}KB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(86 * 1024), "86KB");
        assert_eq!(bytes(2 * 1024 * 1024 + 60000), "2.06MB");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(99.4, 1), "99.4");
    }
}
