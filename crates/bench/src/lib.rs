//! # bench — the harness that regenerates the paper's evaluation
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 for the
//! full index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table3` | Table 3 — factors affecting the decision |
//! | `table4` | Table 4 — segment counts |
//! | `table5` | Table 5 — hit ratios with limited LRU buffers |
//! | `table6_7` | Tables 6/7 — speedups under O0/O3 |
//! | `table8_9` | Tables 8/9 — energy savings under O0/O3 |
//! | `table10` | Table 10 — speedups on alternate inputs |
//! | `figures` | Figures 5–8, 11–13 — value/entry histograms |
//! | `fig14_15` | Figures 14/15 — speedup vs. hash-table size |
//! | `all_tables` | everything above in one run |
//!
//! Common flags: `--scale <f>` (input-size factor, default 0.25),
//! `--opt <o0|o3>` where applicable. Run with `--release`; a tree-walking
//! interpreter in debug mode is an order of magnitude slower.

#![warn(missing_docs)]

pub mod admission;
pub mod contend;
pub mod fmt;
pub mod json;
pub mod reports;
pub mod runner;
pub mod serve;

pub use runner::{execute, prepare, InputKind, Measurement, Prepared};

/// Tiny argument parser shared by the table binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Input-size scale factor (1.0 = full size).
    pub scale: f64,
    /// Optimization level for cost modelling.
    pub opt: vm::OptLevel,
    /// Free-standing figure/extra selector.
    pub fig: Option<u32>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 0.25,
            opt: vm::OptLevel::O0,
            fig: None,
        }
    }
}

impl Args {
    /// Parses `--scale <f>`, `--opt <o0|o3>`, `--fig <n>` from the process
    /// arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Args {
        let mut args = Args::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    i += 1;
                    args.scale = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a number"));
                }
                "--opt" => {
                    i += 1;
                    args.opt = match argv.get(i).map(String::as_str) {
                        Some("o0") | Some("O0") => vm::OptLevel::O0,
                        Some("o3") | Some("O3") => vm::OptLevel::O3,
                        other => panic!("--opt needs o0 or o3, got {other:?}"),
                    };
                }
                "--fig" => {
                    i += 1;
                    args.fig = Some(
                        argv.get(i)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| panic!("--fig needs a number")),
                    );
                }
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        args
    }
}

/// Harmonic mean of a slice (the paper's summary statistic for speedups).
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_matches_definition() {
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        // HM(1, 2) = 2/(1 + 0.5) = 4/3.
        assert!((harmonic_mean(&[1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }
}
