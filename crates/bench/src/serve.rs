//! `metrics --serve` machinery: a request-serving benchmark over the
//! seven main workloads.
//!
//! Builds one [`service::ReuseService`] whose programs are the memoized
//! modules the pipeline produced, then drives a mixed request batch
//! (default and alternate inputs, round-robin across workloads) through
//! it at each worker count of a sweep. Every sweep point starts from a
//! cold store ([`service::ReuseService::reset_stores`]) and runs the
//! batch twice — the second, warm round measures what a populated shared
//! store buys. Fingerprints at every point must equal the sequential
//! private-table baseline ([`service::ReuseService::run_private_sequential`]);
//! throughput and hit rates are expected to differ (DESIGN.md §8e).
//!
//! With [`ServeOpts::fault_seed`] set, every sweep point additionally
//! runs under a deterministic [`FaultPlan`] firing all four fail points
//! at [`ServeOpts::fault_rate`]. Faults may shed, delay, or retry
//! requests, but every request that *executes* must still fingerprint
//! identically to the fault-free baseline, and the four terminal
//! statuses must account for the whole batch (DESIGN.md §8f).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::runner::{prepare_with, PrepareOpts};
use memo_runtime::{FaultPlan, TableStats};
use service::{Request, ReuseService, ServiceConfig, ServiceProgram, ServiceReport};
use vm::{CostModel, OptLevel};
use workloads::Workload;

/// Options for the serving benchmark.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Input-size scale factor for profiling and request inputs.
    pub scale: f64,
    /// Optimization level the programs are planned and costed under.
    pub opt: OptLevel,
    /// Lock shards per table.
    pub shards: usize,
    /// Bounded request-queue capacity.
    pub queue_capacity: usize,
    /// Requests per workload in the batch (alternating default and
    /// alternate inputs).
    pub requests_per_workload: usize,
    /// Seed for a deterministic [`FaultPlan`]; `None` (the default) runs
    /// fault-free.
    pub fault_seed: Option<u64>,
    /// Fire rate applied to every fail point when `fault_seed` is set.
    pub fault_rate: f64,
    /// Default per-request modelled-cycle deadline.
    pub deadline_cycles: Option<u64>,
    /// Queue-depth high watermark at which the producer sheds load.
    pub high_watermark: Option<usize>,
    /// Per-worker L1 cache slots per table (`0` disables tiering).
    pub l1_slots: usize,
    /// Whether the stores gate recordings through TinyLFU admission.
    pub admission: bool,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            scale: 0.25,
            opt: OptLevel::O0,
            shards: 8,
            queue_capacity: 64,
            requests_per_workload: 4,
            fault_seed: None,
            fault_rate: 0.1,
            deadline_cycles: None,
            high_watermark: None,
            l1_slots: 64,
            admission: false,
        }
    }
}

impl ServeOpts {
    /// A fresh fault plan for one sweep point, or `None` when
    /// `fault_seed` is unset. Each point gets its own plan so the fault
    /// sequence (and the counters reported for the point) restart from
    /// the seed, making every point independently reproducible.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_seed
            .map(|seed| Arc::new(FaultPlan::new(seed).with_all_rates(self.fault_rate)))
    }
}

/// Whether every *executed* request in `r` (status `Ok` or
/// `DeadlineExceeded`) fingerprinted identically to the same request in
/// the fault-free sequential baseline. Shed and exhausted requests never
/// ran, so they carry no fingerprint to compare (DESIGN.md §8f).
pub fn executed_matches(r: &ServiceReport, expected: &[u64]) -> bool {
    r.executed_fingerprints()
        .iter()
        .all(|&(i, fp)| expected.get(i) == Some(&fp))
}

/// Builds the service (pipeline run per workload, in parallel) and the
/// mixed request batch.
///
/// # Panics
///
/// Panics if a workload fails the pipeline or plans an invalid table spec
/// (both covered by the workload test suite).
pub fn build_service(
    ws: &[Workload],
    opts: &ServeOpts,
    workers: usize,
) -> (ReuseService, Vec<Request>) {
    let mut programs: Vec<Option<ServiceProgram>> = Vec::new();
    programs.resize_with(ws.len(), || None);
    std::thread::scope(|s| {
        for (slot, w) in programs.iter_mut().zip(ws) {
            s.spawn(move || {
                let p = prepare_with(
                    w,
                    opts.opt,
                    opts.scale,
                    &PrepareOpts {
                        validate: true,
                        ..PrepareOpts::default()
                    },
                );
                *slot = Some(ServiceProgram {
                    name: w.name.to_string(),
                    module: p.memo_module,
                    specs: p.outcome.specs,
                    policies: p.outcome.policies,
                    table_deps: p.outcome.table_deps,
                    spec_plan: p.outcome.spec_plan,
                });
            });
        }
    });
    let programs: Vec<ServiceProgram> = programs.into_iter().map(|p| p.expect("filled")).collect();
    // Round-robin across workloads so concurrent workers interleave
    // different programs; alternate input families so the store sees both
    // the profiled and the unprofiled value distributions.
    let mut requests = Vec::with_capacity(ws.len() * opts.requests_per_workload);
    for round in 0..opts.requests_per_workload {
        for (i, w) in ws.iter().enumerate() {
            let input = if round % 2 == 0 {
                (w.default_input)(opts.scale)
            } else {
                (w.alt_input)(opts.scale)
            };
            requests.push(Request::new(i, input));
        }
    }
    let svc = ReuseService::new(
        programs,
        ServiceConfig {
            workers,
            shards: opts.shards,
            queue_capacity: opts.queue_capacity,
            adaptive: false,
            cost: CostModel::for_level(opts.opt),
            faults: opts.fault_plan(),
            deadline_cycles: opts.deadline_cycles,
            high_watermark: opts.high_watermark,
            low_watermark: opts.high_watermark.map_or(0, |h| h / 2),
            // Chaos sweeps retry often; a cheap backoff keeps them fast
            // without changing any outcome.
            backoff_base_ns: 2_000,
            backoff_cap_ns: 200_000,
            l1_slots: opts.l1_slots,
            admission: opts.admission,
            ..ServiceConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("pipeline planned an invalid table spec: {e}"));
    (svc, requests)
}

/// One worker count's measurements: cold and warm rounds over the same
/// batch, plus the determinism verdict against the baseline.
#[derive(Debug)]
pub struct SweepPoint {
    /// Worker threads at this point.
    pub workers: usize,
    /// First round against a freshly reset (cold) store.
    pub cold: ServiceReport,
    /// Second round over the now-populated store.
    pub warm: ServiceReport,
    /// Whether both rounds' *executed* requests fingerprinted identically
    /// to the sequential private-table baseline (with faults disabled
    /// every request executes, so this is full-batch equality).
    pub matches_baseline: bool,
    /// Whether both rounds' status counts sum to the submitted batch
    /// (`ok + shed + deadline_exceeded + exhausted == submitted`).
    pub accounting_ok: bool,
}

/// The full serving-benchmark result.
#[derive(Debug)]
pub struct ServeSummary {
    /// Options the sweep ran under.
    pub opts: ServeOpts,
    /// Host CPUs available to the process (parallel speedup is bounded
    /// by this — a single-CPU host cannot show one).
    pub cpus: usize,
    /// Program names, in request `program`-index order.
    pub workload_names: Vec<String>,
    /// Requests per batch.
    pub requests: usize,
    /// Sequential baseline: private tables per request, no sharing.
    pub baseline: ServiceReport,
    /// One entry per swept worker count.
    pub points: Vec<SweepPoint>,
}

impl ServeSummary {
    /// Whether every sweep point's executed requests fingerprinted
    /// identically to the baseline.
    pub fn all_match(&self) -> bool {
        self.points.iter().all(|p| p.matches_baseline)
    }

    /// Whether every sweep point's status counts sum to the batch size.
    pub fn all_accounted(&self) -> bool {
        self.points.iter().all(|p| p.accounting_ok)
    }
}

/// Runs the serving benchmark at each worker count in `worker_counts`.
///
/// # Panics
///
/// Panics if the pipeline fails for a workload (see [`build_service`]).
pub fn run_serve(ws: &[Workload], opts: &ServeOpts, worker_counts: &[usize]) -> ServeSummary {
    let first = worker_counts.first().copied().unwrap_or(1);
    let (mut svc, requests) = build_service(ws, opts, first);
    let baseline = svc.run_private_sequential(&requests);
    let expected = baseline.fingerprints();
    let mut points = Vec::with_capacity(worker_counts.len());
    for &workers in worker_counts {
        // A fresh plan per point restarts the deterministic fault
        // sequence; it must be installed before `reset_stores` so the
        // rebuilt stores pick up probe-level fail points.
        svc.set_fault_plan(opts.fault_plan());
        svc.reset_stores().expect("specs already built once");
        svc.set_workers(workers);
        let cold = svc.run(&requests);
        let warm = svc.run(&requests);
        let matches_baseline =
            executed_matches(&cold, &expected) && executed_matches(&warm, &expected);
        let accounting_ok =
            cold.accounting_holds(requests.len()) && warm.accounting_holds(requests.len());
        points.push(SweepPoint {
            workers,
            cold,
            warm,
            matches_baseline,
            accounting_ok,
        });
    }
    ServeSummary {
        opts: opts.clone(),
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        workload_names: svc.program_names().iter().map(|s| s.to_string()).collect(),
        requests: requests.len(),
        baseline,
        points,
    }
}

/// One worker count's A/B measurement: the same perturbed-input batch
/// served twice per arm (cold then warm), with arm A forcing red
/// recomputes (exact-match probing only) and arm B validating recorded
/// dependencies (try-mark-green, DESIGN.md §8g).
#[derive(Debug)]
pub struct AbPoint {
    /// Worker threads at this point.
    pub workers: usize,
    /// Arm A cold round: fresh store, validation off.
    pub red_cold: ServiceReport,
    /// Arm A warm round: populated store, validation off. Dependency-keyed
    /// entries stay red, so only exact-match hits land.
    pub red_warm: ServiceReport,
    /// Arm B cold round: fresh store, validation on.
    pub green_cold: ServiceReport,
    /// Arm B warm round: populated store, validation on. Entries whose
    /// recorded dependency fingerprints still hold are promoted green.
    pub green_warm: ServiceReport,
    /// Whether all four rounds' executed requests fingerprinted
    /// identically to the sequential baseline (§8e: validation must never
    /// change an answer).
    pub matches_baseline: bool,
    /// Whether all four rounds' status counts sum to the batch.
    pub accounting_ok: bool,
}

impl AbPoint {
    /// Warm hit-ratio lift of validation: arm B warm minus arm A warm.
    pub fn hit_lift(&self) -> f64 {
        self.green_warm.hit_ratio() - self.red_warm.hit_ratio()
    }
}

/// The full A/B benchmark result (`metrics --serve --alt`).
#[derive(Debug)]
pub struct AbSummary {
    /// Options the sweep ran under.
    pub opts: ServeOpts,
    /// Host CPUs available to the process.
    pub cpus: usize,
    /// Program names, in request `program`-index order.
    pub workload_names: Vec<String>,
    /// Requests per batch (each workload contributes both default and
    /// alternate inputs, so warm rounds re-probe under perturbed values).
    pub requests: usize,
    /// Sequential baseline: private tables per request, no sharing.
    pub baseline: ServiceReport,
    /// One entry per swept worker count.
    pub points: Vec<AbPoint>,
}

impl AbSummary {
    /// Whether every point's executed requests matched the baseline.
    pub fn all_match(&self) -> bool {
        self.points.iter().all(|p| p.matches_baseline)
    }

    /// Whether every point's status counts sum to the batch size.
    pub fn all_accounted(&self) -> bool {
        self.points.iter().all(|p| p.accounting_ok)
    }

    /// Whether validation lifted the warm hit ratio at every point and
    /// promoted at least one green hit somewhere (the CI gate behind
    /// `--assert-hit-lift`).
    pub fn lift_holds(&self) -> bool {
        !self.points.is_empty()
            && self.points.iter().all(|p| p.hit_lift() > 0.0)
            && self
                .points
                .iter()
                .any(|p| p.green_warm.store_delta.green_hits > 0)
    }
}

/// Runs the perturbed-input A/B benchmark at each worker count: per
/// point, the batch is served cold+warm with validation off (arm A),
/// then again from a fresh store with validation on (arm B). Both arms
/// execute the identical request sequence against the identical
/// transformed programs; only the probe policy differs.
///
/// # Panics
///
/// Panics if the pipeline fails for a workload (see [`build_service`]).
pub fn run_serve_ab(ws: &[Workload], opts: &ServeOpts, worker_counts: &[usize]) -> AbSummary {
    let first = worker_counts.first().copied().unwrap_or(1);
    let (mut svc, requests) = build_service(ws, opts, first);
    let baseline = svc.run_private_sequential(&requests);
    let expected = baseline.fingerprints();
    let mut points = Vec::with_capacity(worker_counts.len());
    for &workers in worker_counts {
        svc.set_workers(workers);
        let mut arm = |validate: bool| {
            svc.set_fault_plan(opts.fault_plan());
            svc.set_validate(validate);
            svc.reset_stores().expect("specs already built once");
            let cold = svc.run(&requests);
            let warm = svc.run(&requests);
            (cold, warm)
        };
        let (red_cold, red_warm) = arm(false);
        let (green_cold, green_warm) = arm(true);
        let rounds = [&red_cold, &red_warm, &green_cold, &green_warm];
        let matches_baseline = rounds.iter().all(|r| executed_matches(r, &expected));
        let accounting_ok = rounds.iter().all(|r| r.accounting_holds(requests.len()));
        points.push(AbPoint {
            workers,
            red_cold,
            red_warm,
            green_cold,
            green_warm,
            matches_baseline,
            accounting_ok,
        });
    }
    AbSummary {
        opts: opts.clone(),
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        workload_names: svc.program_names().iter().map(|s| s.to_string()).collect(),
        requests: requests.len(),
        baseline,
        points,
    }
}

/// One batch served in ten sequential sub-batches, so the hit ratio is
/// observable *within* the batch (the first decile is what a restarted
/// service's early requests experience).
#[derive(Debug)]
pub struct DecileRun {
    /// Hit ratio of each tenth of the batch, in order.
    pub ratios: Vec<f64>,
    /// Fingerprints across the sub-batches, in request order.
    pub fingerprints: Vec<u64>,
    /// Store-statistics delta summed over the whole batch.
    pub delta: TableStats,
}

impl DecileRun {
    /// Hit ratio over the whole batch.
    pub fn overall(&self) -> f64 {
        self.delta.hit_ratio()
    }

    /// Hit ratio of the first tenth of the batch.
    pub fn first_decile(&self) -> f64 {
        self.ratios.first().copied().unwrap_or(0.0)
    }
}

/// Serves `requests` in ten sequential sub-batches, recording each
/// tenth's hit ratio.
pub fn run_deciles(svc: &ReuseService, requests: &[Request]) -> DecileRun {
    let chunk = requests.len().div_ceil(10).max(1);
    let mut ratios = Vec::with_capacity(10);
    let mut fingerprints = Vec::with_capacity(requests.len());
    let mut delta = TableStats::default();
    for sub in requests.chunks(chunk) {
        let report = svc.run(sub);
        ratios.push(report.hit_ratio());
        fingerprints.extend(report.fingerprints());
        delta.merge(&report.store_delta);
    }
    DecileRun {
        ratios,
        fingerprints,
        delta,
    }
}

/// The warm-restart benchmark's verdict (`metrics --serve
/// --assert-warm-restart`): cold/warm/restored decile curves plus the
/// gates the restored run must pass (DESIGN.md §8i).
#[derive(Debug)]
pub struct WarmRestartSummary {
    /// Options the run used.
    pub opts: ServeOpts,
    /// Worker threads.
    pub workers: usize,
    /// Program names, in request `program`-index order.
    pub workload_names: Vec<String>,
    /// Requests per batch.
    pub requests: usize,
    /// First round against the cold store.
    pub cold: DecileRun,
    /// Second round over the populated store (the warm reference).
    pub warm: DecileRun,
    /// Round served after snapshot → "restart" → restore.
    pub restored: DecileRun,
    /// Snapshot file size in bytes.
    pub snapshot_bytes: u64,
    /// Whether the restore actually used the snapshot (`false` means it
    /// degraded to a cold start, which fails the gate).
    pub restore_ok: bool,
    /// Whether every round's fingerprints equal the sequential baseline.
    pub matches_baseline: bool,
    /// Slack allowed between the restored and warm first-decile hit
    /// ratios.
    pub tolerance: f64,
}

impl WarmRestartSummary {
    /// The warm-restart gate: the snapshot restored, every answer matched
    /// the baseline, and the restored service was already at the warm hit
    /// ratio within its first 10% of requests — its first decile must
    /// match the warm round's first decile (the same requests at the same
    /// position; the overall ratios mix input families and are reported,
    /// not gated).
    pub fn gate_holds(&self) -> bool {
        self.restore_ok
            && self.matches_baseline
            && self.restored.first_decile() + self.tolerance >= self.warm.first_decile()
    }
}

/// Runs the warm-restart benchmark: cold and warm decile rounds, a
/// snapshot of the warm store, a simulated restart (stores reset cold),
/// a restore, and a restored decile round.
///
/// `snapshot_out` chooses where the snapshot is written (a temp file
/// otherwise); `snapshot_in` restores from an existing snapshot written
/// by a previous run *instead of* this run's own (the cross-process warm
/// start — the store shape must match).
///
/// # Panics
///
/// Panics if the pipeline fails for a workload (see [`build_service`]).
pub fn run_warm_restart(
    ws: &[Workload],
    opts: &ServeOpts,
    workers: usize,
    snapshot_out: Option<&Path>,
    snapshot_in: Option<&Path>,
) -> WarmRestartSummary {
    let (mut svc, requests) = build_service(ws, opts, workers);
    let baseline = svc.run_private_sequential(&requests);
    let expected = baseline.fingerprints();
    let cold = run_deciles(&svc, &requests);
    let warm = run_deciles(&svc, &requests);
    let own_path: PathBuf = snapshot_out.map_or_else(
        || std::env::temp_dir().join("compreuse-warm-restart.snap"),
        Path::to_path_buf,
    );
    svc.snapshot_to(&own_path)
        .unwrap_or_else(|e| panic!("cannot write snapshot to {}: {e}", own_path.display()));
    let restore_path = snapshot_in.unwrap_or(&own_path);
    let snapshot_bytes = std::fs::metadata(restore_path).map_or(0, |m| m.len());
    // The "restart": every store is rebuilt cold, then the snapshot is
    // restored — the same path a fresh process takes.
    svc.reset_stores().expect("specs already built once");
    let restore_ok = svc.restore_from(restore_path).is_restored();
    let restored = run_deciles(&svc, &requests);
    let matches_baseline = [&cold, &warm, &restored]
        .iter()
        .all(|r| r.fingerprints == expected);
    WarmRestartSummary {
        opts: opts.clone(),
        workers,
        workload_names: svc.program_names().iter().map(|s| s.to_string()).collect(),
        requests: requests.len(),
        cold,
        warm,
        restored,
        snapshot_bytes,
        restore_ok,
        matches_baseline,
        tolerance: 0.05,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_deterministic_and_warms_up() {
        let ws = vec![workloads::unepic::unepic(), workloads::rasta::rasta()];
        let opts = ServeOpts {
            scale: 0.05,
            requests_per_workload: 3,
            ..ServeOpts::default()
        };
        let summary = run_serve(&ws, &opts, &[1, 2]);
        assert_eq!(summary.requests, 6);
        assert!(summary.all_match(), "fingerprints diverged from baseline");
        for p in &summary.points {
            assert_eq!(
                p.cold.fingerprints(),
                p.warm.fingerprints(),
                "warm round changed results at {} workers",
                p.workers
            );
            assert!(
                p.warm.hit_ratio() >= p.cold.hit_ratio(),
                "warm hit ratio fell at {} workers",
                p.workers
            );
        }
    }

    #[test]
    fn ab_sweep_lifts_hit_ratio_without_changing_answers() {
        let ws = vec![workloads::unepic::unepic(), workloads::gnugo::gnugo()];
        let opts = ServeOpts {
            scale: 0.05,
            requests_per_workload: 3,
            ..ServeOpts::default()
        };
        let summary = run_serve_ab(&ws, &opts, &[1, 2]);
        assert!(summary.all_match(), "an arm changed an executed answer");
        assert!(summary.all_accounted(), "status counts lost a request");
        for p in &summary.points {
            // §8e: both arms and both rounds execute identical requests,
            // so all four fingerprint sets must be equal.
            let fp = p.red_cold.fingerprints();
            for r in [&p.red_warm, &p.green_cold, &p.green_warm] {
                assert_eq!(
                    fp,
                    r.fingerprints(),
                    "arms diverged at {} workers",
                    p.workers
                );
            }
            assert!(
                p.hit_lift() > 0.0,
                "validation gave no lift at {} workers: red {:.4} green {:.4}",
                p.workers,
                p.red_warm.hit_ratio(),
                p.green_warm.hit_ratio()
            );
            // Arm A must never report a green hit (validation is off).
            assert_eq!(p.red_cold.store_delta.green_hits, 0);
            assert_eq!(p.red_warm.store_delta.green_hits, 0);
        }
        assert!(summary.lift_holds());
    }

    #[test]
    fn warm_restart_resumes_at_the_warm_hit_ratio() {
        let ws = vec![workloads::unepic::unepic(), workloads::rasta::rasta()];
        let opts = ServeOpts {
            scale: 0.05,
            requests_per_workload: 10, // 20 requests → deciles of 2
            ..ServeOpts::default()
        };
        let dir = std::env::temp_dir().join("compreuse-bench-warm-restart");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.snap");
        let summary = run_warm_restart(&ws, &opts, 2, Some(&path), None);
        assert!(summary.restore_ok, "snapshot must restore");
        assert!(summary.matches_baseline, "fingerprints diverged");
        assert!(summary.snapshot_bytes > 0);
        assert!(
            summary.gate_holds(),
            "restored first decile {:.4} vs warm first decile {:.4}",
            summary.restored.first_decile(),
            summary.warm.first_decile()
        );
        assert!(
            summary.restored.first_decile() > summary.cold.first_decile(),
            "a restored store must beat a cold start out of the gate"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulted_sweep_keeps_executed_requests_equivalent() {
        memo_runtime::silence_injected_panics();
        let ws = vec![workloads::unepic::unepic(), workloads::rasta::rasta()];
        let opts = ServeOpts {
            scale: 0.05,
            requests_per_workload: 4,
            fault_seed: Some(42),
            fault_rate: 0.25,
            ..ServeOpts::default()
        };
        let summary = run_serve(&ws, &opts, &[1, 2]);
        assert!(
            summary.all_match(),
            "an executed request diverged from the fault-free baseline"
        );
        assert!(summary.all_accounted(), "status counts lost a request");
        for p in &summary.points {
            let faults = p.cold.faults.as_ref().expect("plan installed");
            assert!(
                faults.total_fired() > 0,
                "a 25% fault plan fired nothing at {} workers",
                p.workers
            );
        }
    }
}
