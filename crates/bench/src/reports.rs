//! Row generators for every table and figure of the paper's evaluation.
//!
//! Each function returns printable rows (and prints nothing itself); the
//! `src/bin/*` wrappers render them with [`crate::fmt::print_table`]. The
//! paper's published value is shown next to every measured one so the
//! *shape* comparison (who wins, by roughly what factor) is immediate.

use crate::fmt;
use crate::runner::{
    execute, execute_with_tables, prepare, prepare_with, InputKind, PrepareOpts, Prepared,
};
use compreuse::SegDecision;
use memo_runtime::{LruTable, MemoTable};
use vm::cost::cycles_to_micros;
use vm::OptLevel;
use workloads::Workload;

/// The segment the paper's Table 3 reports: the chosen segment with the
/// largest total gain.
pub fn dominant_segment(report: &compreuse::Report) -> Option<&SegDecision> {
    report.decisions.iter().filter(|d| d.chosen).max_by(|a, b| {
        let ta = a.gain * a.n as f64;
        let tb = b.gain * b.n as f64;
        ta.partial_cmp(&tb).expect("finite")
    })
}

/// Prepares all seven main workloads in parallel.
pub fn prepare_seven(opt: OptLevel, scale: f64, opts: &PrepareOpts) -> Vec<(Workload, Prepared)> {
    let ws = workloads::main_seven();
    let mut out: Vec<Option<(Workload, Prepared)>> = Vec::new();
    out.resize_with(ws.len(), || None);
    std::thread::scope(|s| {
        for (slot, w) in out.iter_mut().zip(ws) {
            let opts = opts.clone();
            s.spawn(move || {
                let p = prepare_with(&w, opt, scale, &opts);
                *slot = Some((w, p));
            });
        }
    });
    out.into_iter().map(|x| x.expect("filled")).collect()
}

// ---------------------------------------------------------------------
// Table 3 — factors which affect the optimization decision
// ---------------------------------------------------------------------

/// Header row for Table 3.
pub const TABLE3_HEADERS: [&str; 11] = [
    "Program",
    "C (us)",
    "paper C",
    "O (us)",
    "paper O",
    "DIP#",
    "paper DIP",
    "Reuse",
    "paper R",
    "Table",
    "paper tbl",
];

/// Generates Table 3 rows at `scale`.
pub fn table3(scale: f64) -> Vec<Vec<String>> {
    let prepared = prepare_seven(OptLevel::O0, scale, &PrepareOpts::default());
    let mut rows = Vec::new();
    for (w, p) in &prepared {
        let Some(d) = dominant_segment(&p.outcome.report) else {
            let mut row = vec![w.name.to_string()];
            row.extend(std::iter::repeat_with(|| "—".to_string()).take(10));
            rows.push(row);
            continue;
        };
        let table_bytes = d
            .assignment
            .map(|a| p.outcome.specs[a.table].bytes())
            .unwrap_or(0);
        let paper = w.paper.table3;
        rows.push(vec![
            w.name.to_string(),
            fmt::f(cycles_to_micros(d.measured_c as u64), 2),
            paper.map(|t| fmt::f(t.c_us, 2)).unwrap_or_default(),
            fmt::f(cycles_to_micros(d.overhead_o as u64), 2),
            paper.map(|t| fmt::f(t.o_us, 2)).unwrap_or_default(),
            d.dip.to_string(),
            paper.map(|t| t.dip.to_string()).unwrap_or_default(),
            format!("{:.1}%", d.reuse_rate * 100.0),
            paper
                .map(|t| format!("{:.1}%", t.reuse_pct))
                .unwrap_or_default(),
            fmt::bytes(table_bytes),
            paper.map(|t| t.table_size.to_string()).unwrap_or_default(),
        ]);
    }
    rows
}

// ---------------------------------------------------------------------
// Table 4 — number of code segments
// ---------------------------------------------------------------------

/// Header row for Table 4.
pub const TABLE4_HEADERS: [&str; 9] = [
    "Program",
    "Functions",
    "Analyzed",
    "paper",
    "Profiled",
    "paper",
    "Transformed",
    "paper",
    "lines",
];

/// Generates Table 4 rows at `scale`.
pub fn table4(scale: f64) -> Vec<Vec<String>> {
    let prepared = prepare_seven(OptLevel::O0, scale, &PrepareOpts::default());
    prepared
        .iter()
        .map(|(w, p)| {
            let r = &p.outcome.report;
            let paper = w.paper.table4;
            vec![
                w.name.to_string(),
                w.hot_functions.to_string(),
                r.analyzed.to_string(),
                paper.map(|t| t.analyzed.to_string()).unwrap_or_default(),
                r.profiled.to_string(),
                paper.map(|t| t.profiled.to_string()).unwrap_or_default(),
                r.transformed.to_string(),
                paper.map(|t| t.transformed.to_string()).unwrap_or_default(),
                w.code_lines().to_string(),
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 5 — hit ratios with limited (LRU) buffers
// ---------------------------------------------------------------------

/// Header row for Table 5.
pub const TABLE5_HEADERS: [&str; 11] = [
    "Program",
    "1-entry",
    "paper",
    "4-entry",
    "paper",
    "16-entry",
    "paper",
    "64-entry",
    "paper",
    "64-entry size",
    "paper size",
];

/// Generates Table 5 rows at `scale`: the transformed programs run with
/// small fully-associative LRU buffers in place of the software tables,
/// modelling the hardware reuse-buffer proposals.
pub fn table5(scale: f64) -> Vec<Vec<String>> {
    // Per-segment buffers: merging off, as hardware buffers are per
    // segment.
    let opts = PrepareOpts {
        disable_merging: true,
        ..PrepareOpts::default()
    };
    let prepared = prepare_seven(OptLevel::O0, scale, &opts);
    let caps = [1usize, 4, 16, 64];
    let mut rows = Vec::new();
    for (w, p) in &prepared {
        let mut cells = vec![w.name.to_string()];
        let paper = w.paper.table5;
        let mut size64 = 0usize;
        for (ci, &cap) in caps.iter().enumerate() {
            let tables: Vec<MemoTable> = p
                .outcome
                .specs
                .iter()
                .map(|spec| MemoTable::from(LruTable::new(cap, spec.key_words, spec.out_words[0])))
                .collect();
            if p.outcome.specs.is_empty() {
                cells.push("—".into());
                cells.push(String::new());
                continue;
            }
            let m = execute_with_tables(p, w, InputKind::Default, scale, tables);
            // The buffer of the most significant segment (as in Table 3):
            // the most-accessed table.
            let stats = *m
                .tables
                .iter()
                .map(|t| t.stats())
                .max_by_key(|s| s.accesses)
                .expect("at least one table");
            if cap == 64 {
                size64 = m.tables.iter().map(|t| t.bytes()).max().unwrap_or(0);
            }
            cells.push(format!("{:.1}%", stats.hit_ratio() * 100.0));
            cells.push(paper.map(|t| format!("{:.2}%", t[ci])).unwrap_or_default());
        }
        cells.push(fmt::bytes(size64));
        cells.push("(paper: 512B-16KB)".into());
        rows.push(cells);
    }
    rows
}

// ---------------------------------------------------------------------
// Tables 6/7 — performance improvement under O0/O3
// ---------------------------------------------------------------------

/// Header row for Tables 6/7.
pub const TABLE67_HEADERS: [&str; 5] = [
    "Program",
    "Original (s)",
    "Comp. Reuse (s)",
    "Speedup",
    "paper speedup",
];

/// Generates Table 6 (O0) or Table 7 (O3) rows at `scale`, including the
/// harmonic-mean row over the seven main programs.
pub fn table6_or_7(opt: OptLevel, scale: f64) -> Vec<Vec<String>> {
    let ws = workloads::all_eleven();
    let mut rows: Vec<Option<Vec<String>>> = Vec::new();
    rows.resize_with(ws.len(), || None);
    let mut speedups: Vec<Option<(bool, f64)>> = vec![None; ws.len()];
    std::thread::scope(|s| {
        for ((slot, sp), w) in rows.iter_mut().zip(speedups.iter_mut()).zip(ws.iter()) {
            s.spawn(move || {
                let p = prepare(w, opt, scale);
                let m = execute(&p, w, InputKind::Default, scale);
                assert!(m.output_match, "{}: outputs diverged", w.name);
                let paper = match opt {
                    OptLevel::O0 => w.paper.speedup_o0,
                    OptLevel::O3 => w.paper.speedup_o3,
                };
                let is_variant = w.name.ends_with("_s") || w.name.ends_with("_b");
                *sp = Some((is_variant, m.speedup()));
                *slot = Some(vec![
                    w.name.to_string(),
                    fmt::f(m.orig_seconds, 2),
                    fmt::f(m.memo_seconds, 2),
                    fmt::f(m.speedup(), 2),
                    fmt::f(paper, 2),
                ]);
            });
        }
    });
    let mut out: Vec<Vec<String>> = rows.into_iter().map(|r| r.expect("filled")).collect();
    // Harmonic mean excludes the _s/_b variants, as in the paper.
    let mains: Vec<f64> = speedups
        .iter()
        .filter_map(|s| s.filter(|(v, _)| !v).map(|(_, x)| x))
        .collect();
    let paper_hm = match opt {
        OptLevel::O0 => 1.46,
        OptLevel::O3 => 1.37,
    };
    out.push(vec![
        "Harmonic Mean".into(),
        String::new(),
        String::new(),
        fmt::f(crate::harmonic_mean(&mains), 2),
        fmt::f(paper_hm, 2),
    ]);
    out
}

// ---------------------------------------------------------------------
// Tables 8/9 — energy saving under O0/O3
// ---------------------------------------------------------------------

/// Header row for Tables 8/9.
pub const TABLE89_HEADERS: [&str; 5] = [
    "Program",
    "Original (J)",
    "Comp. Reuse (J)",
    "Energy Saving",
    "paper saving",
];

/// Generates Table 8 (O0) or Table 9 (O3) rows at `scale`.
pub fn table8_or_9(opt: OptLevel, scale: f64) -> Vec<Vec<String>> {
    let prepared = prepare_seven(opt, scale, &PrepareOpts::default());
    prepared
        .iter()
        .map(|(w, p)| {
            let m = execute(p, w, InputKind::Default, scale);
            assert!(m.output_match, "{}: outputs diverged", w.name);
            let paper = w.paper.energy_saving.map(|(o0, o3)| match opt {
                OptLevel::O0 => o0,
                OptLevel::O3 => o3,
            });
            vec![
                w.name.to_string(),
                fmt::f(m.orig_energy, 2),
                fmt::f(m.memo_energy, 2),
                format!("{:.1}%", m.energy_saving() * 100.0),
                paper.map(|x| format!("{x:.1}%")).unwrap_or_default(),
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 10 — different input files (O3)
// ---------------------------------------------------------------------

/// Header row for Table 10.
pub const TABLE10_HEADERS: [&str; 6] = [
    "Program",
    "Sources of Inputs",
    "Original (s)",
    "Comp. Reuse (s)",
    "Speedup",
    "paper speedup",
];

/// Generates Table 10 rows: transformation decided on the default inputs,
/// executed on the alternates (O3, as in the paper).
pub fn table10(scale: f64) -> Vec<Vec<String>> {
    let prepared = prepare_seven(OptLevel::O3, scale, &PrepareOpts::default());
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (w, p) in &prepared {
        let m = execute(p, w, InputKind::Alt, scale);
        assert!(m.output_match, "{}: outputs diverged", w.name);
        speedups.push(m.speedup());
        rows.push(vec![
            w.name.to_string(),
            w.alt_source.to_string(),
            fmt::f(m.orig_seconds, 2),
            fmt::f(m.memo_seconds, 2),
            fmt::f(m.speedup(), 2),
            w.paper
                .alt_speedup
                .map(|x| fmt::f(x, 2))
                .unwrap_or_default(),
        ]);
    }
    rows.push(vec![
        "Harmonic Mean".into(),
        String::new(),
        String::new(),
        String::new(),
        fmt::f(crate::harmonic_mean(&speedups), 2),
        fmt::f(1.43, 2),
    ]);
    rows
}

// ---------------------------------------------------------------------
// Figures 5–8, 11–13 — histograms
// ---------------------------------------------------------------------

/// Prints one of the paper's histogram figures (5, 6, 7, 8, 11, 12, 13).
///
/// # Panics
///
/// Panics on an unknown figure number.
pub fn print_figure(figure: u32, scale: f64) {
    match figure {
        5 => input_value_histogram(
            "G721_encode",
            scale,
            "Figure 5: histogram of input values in G721_encode (quan)",
        ),
        6 => input_value_histogram(
            "G721_decode",
            scale,
            "Figure 6: histogram of input values in G721_decode (quan)",
        ),
        7 => table_entry_histogram(
            "G721_encode",
            scale,
            "Figure 7: histogram of accessed table entries in G721_encode",
        ),
        8 => table_entry_histogram(
            "G721_decode",
            scale,
            "Figure 8: histogram of accessed table entries in G721_decode",
        ),
        11 => pattern_histogram(
            "RASTA",
            scale,
            "Figure 11: histogram of distinct input patterns in RASTA",
        ),
        12 => input_value_histogram(
            "UNEPIC",
            scale,
            "Figure 12: histogram of input values in UNEPIC",
        ),
        13 => pattern_histogram(
            "GNUGO",
            scale,
            "Figure 13: histogram of input values in GNU Go",
        ),
        other => panic!("figure {other} is not a histogram figure (5-8, 11-13)"),
    }
}

fn prepared_for(name: &str, scale: f64) -> (Workload, Prepared) {
    let w = workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let p = prepare(&w, OptLevel::O0, scale);
    (w, p)
}

/// The profile of the dominant chosen segment.
fn dominant_profile(p: &Prepared) -> (&SegDecision, &vm::SegProfile) {
    let d = dominant_segment(&p.outcome.report).expect("a segment was chosen");
    let idx = p
        .outcome
        .report
        .decisions
        .iter()
        .position(|x| std::ptr::eq(x, d))
        .expect("position");
    (d, &p.outcome.profile.segs[idx])
}

fn input_value_histogram(name: &str, scale: f64, title: &str) {
    let (_, p) = prepared_for(name, scale);
    let (d, seg) = dominant_profile(&p);
    let pairs = seg
        .value_histogram()
        .expect("single-word key for value histograms");
    println!("\n{title}");
    println!(
        "segment {} — {} executions, {} distinct values",
        d.name,
        seg.n,
        pairs.len()
    );
    print_bucketed(&pairs, 24);
}

fn pattern_histogram(name: &str, scale: f64, title: &str) {
    let (_, p) = prepared_for(name, scale);
    let (d, seg) = dominant_profile(&p);
    let counts = seg.pattern_access_counts();
    println!("\n{title}");
    println!(
        "segment {} — {} executions, {} distinct patterns",
        d.name,
        seg.n,
        counts.len()
    );
    // Rank/frequency curve in 20 rank buckets.
    let buckets = 20usize.min(counts.len().max(1));
    let per = counts.len().div_ceil(buckets).max(1);
    let max = counts.first().copied().unwrap_or(0) as f64;
    for (bi, chunk) in counts.chunks(per).enumerate() {
        let avg = chunk.iter().sum::<u64>() as f64 / chunk.len() as f64;
        println!(
            "rank {:>5}-{:<5} avg accesses {:>10.1} {}",
            bi * per + 1,
            bi * per + chunk.len(),
            avg,
            fmt::bar(avg, max, 40)
        );
    }
}

fn table_entry_histogram(name: &str, scale: f64, title: &str) {
    let (w, p) = prepared_for(name, scale);
    let d = dominant_segment(&p.outcome.report).expect("chosen segment");
    let table_idx = d.assignment.expect("assigned").table;
    let m = execute(&p, &w, InputKind::Default, scale);
    let counts = m.tables[table_idx]
        .access_counts()
        .expect("direct tables track entry accesses")
        .to_vec();
    println!("\n{title}");
    let accessed = counts.iter().filter(|&&c| c > 0).count();
    println!(
        "table {} — {} slots, {} accessed",
        table_idx,
        counts.len(),
        accessed
    );
    let pairs: Vec<(i64, u64)> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as i64, c))
        .collect();
    print_bucketed(&pairs, 24);
}

/// Buckets `(x, count)` pairs over the x-range and prints count bars.
fn print_bucketed(pairs: &[(i64, u64)], buckets: usize) {
    if pairs.is_empty() {
        println!("(empty)");
        return;
    }
    let lo = pairs.iter().map(|&(v, _)| v).min().expect("nonempty");
    let hi = pairs.iter().map(|&(v, _)| v).max().expect("nonempty");
    let span = (hi - lo + 1).max(1);
    let width = (span as f64 / buckets as f64).ceil().max(1.0) as i64;
    let mut sums = vec![0u64; buckets];
    for &(v, c) in pairs {
        let b = (((v - lo) / width) as usize).min(buckets - 1);
        sums[b] += c;
    }
    let max = sums.iter().copied().max().unwrap_or(1) as f64;
    for (b, &s) in sums.iter().enumerate() {
        let from = lo + b as i64 * width;
        let to = (from + width - 1).min(hi);
        println!(
            "[{from:>8}..{to:>8}] {:>10} {}",
            s,
            fmt::bar(s as f64, max, 40)
        );
    }
}

// ---------------------------------------------------------------------
// Figures 14/15 — speedups vs. hash table size
// ---------------------------------------------------------------------

/// The byte sizes swept by Figures 14/15 (plus the profiled-optimal size,
/// represented as `None`).
pub const SIZE_SWEEP: [Option<usize>; 6] = [
    Some(2 << 10),
    Some(8 << 10),
    Some(32 << 10),
    Some(128 << 10),
    Some(512 << 10),
    None, // optimal (sized from profiling)
];

/// Header row for Figures 14/15.
pub const FIG1415_HEADERS: [&str; 7] =
    ["Program", "2KB", "8KB", "32KB", "128KB", "512KB", "optimal"];

/// Generates the Figure 14 (O0) / Figure 15 (O3) speedup matrix.
pub fn fig14_15(opt: OptLevel, scale: f64) -> Vec<Vec<String>> {
    let ws = workloads::main_seven();
    let mut rows: Vec<Option<Vec<String>>> = Vec::new();
    rows.resize_with(ws.len(), || None);
    std::thread::scope(|s| {
        for (slot, w) in rows.iter_mut().zip(ws.iter()) {
            s.spawn(move || {
                let mut cells = vec![w.name.to_string()];
                for cap in SIZE_SWEEP {
                    let opts = PrepareOpts {
                        bytes_cap: cap,
                        ..PrepareOpts::default()
                    };
                    let p = prepare_with(w, opt, scale, &opts);
                    if p.outcome.report.transformed == 0 {
                        cells.push("1.00".into());
                        continue;
                    }
                    let m = execute(&p, w, InputKind::Default, scale);
                    assert!(m.output_match, "{}: outputs diverged", w.name);
                    cells.push(fmt::f(m.speedup(), 2));
                }
                *slot = Some(cells);
            });
        }
    });
    rows.into_iter().map(|r| r.expect("filled")).collect()
}

// ---------------------------------------------------------------------
// Runtime table metrics — JSON telemetry report (`metrics` binary)
// ---------------------------------------------------------------------

/// Escapes `s` for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_stats(s: &memo_runtime::TableStats) -> String {
    format!(
        concat!(
            "{{\"accesses\":{},\"hits\":{},\"green_hits\":{},\"stale_reds\":{},",
            "\"misses\":{},\"collisions\":{},",
            "\"evictions\":{},\"insertions\":{},",
            "\"optimistic_hits\":{},\"optimistic_retries\":{},",
            "\"l1_hits\":{},\"promotions\":{},\"admission_rejects\":{},",
            "\"hit_ratio\":{},\"collision_rate\":{}}}"
        ),
        s.accesses,
        s.hits,
        s.green_hits,
        s.stale_reds,
        s.misses,
        s.collisions,
        s.evictions,
        s.insertions,
        s.optimistic_hits,
        s.optimistic_retries,
        s.l1_hits,
        s.promotions,
        s.admission_rejects,
        s.hit_ratio(),
        s.collision_rate(),
    )
}

fn json_table(index: usize, spec: &memo_runtime::TableSpec, t: &MemoTable) -> String {
    let kind = match t.kind() {
        memo_runtime::TableKind::Direct(_) => "direct",
        memo_runtime::TableKind::Lru(_) => "lru",
        memo_runtime::TableKind::Merged(_) => "merged",
    };
    let pol = t.policy();
    let tel = t.telemetry();
    let policy = format!(
        concat!(
            "{{\"enabled\":{},\"epoch_len\":{},\"predicted_collision_rate\":{},",
            "\"margin\":{},\"k_epochs\":{},\"bypass_epochs\":{},\"max_resizes\":{}}}"
        ),
        pol.enabled,
        pol.epoch_len,
        pol.predicted_collision_rate,
        pol.margin,
        pol.k_epochs,
        pol.bypass_epochs,
        pol.max_resizes,
    );
    let per_segment: Vec<String> = tel.per_segment().iter().map(json_stats).collect();
    let transitions: Vec<String> = tel
        .transitions()
        .iter()
        .map(|tr| {
            format!(
                "{{\"epoch\":{},\"from\":\"{}\",\"to\":\"{}\",\"reason\":\"{}\"}}",
                tr.epoch,
                tr.from.name(),
                tr.to.name(),
                json_escape(tr.reason),
            )
        })
        .collect();
    let epochs: Vec<String> = tel
        .epochs()
        .iter()
        .map(|e| {
            format!(
                "{{\"epoch\":{},\"state\":\"{}\",\"bypassed\":{},\"stats\":{}}}",
                e.epoch,
                e.state.name(),
                e.bypassed,
                json_stats(&e.stats),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"index\":{},\"kind\":\"{}\",\"planned_slots\":{},\"slots\":{},",
            "\"bytes\":{},\"segments\":{},\"state\":\"{}\",\"policy\":{},",
            "\"stats\":{},\"bypassed_lookups\":{},\"dropped_records\":{},",
            "\"per_segment\":[{}],\"transitions\":[{}],\"epochs\":[{}]}}"
        ),
        index,
        kind,
        spec.slots,
        t.slots(),
        t.bytes(),
        spec.out_words.len(),
        t.state().name(),
        policy,
        json_stats(t.stats()),
        tel.bypassed_total(),
        tel.dropped_records(),
        per_segment.join(","),
        transitions.join(","),
        epochs.join(","),
    )
}

// ---------------------------------------------------------------------
// Engine wall-clock benchmark — JSON report (`metrics --bench-engines`)
// ---------------------------------------------------------------------

/// Host wall-clock timings of one workload's full prepare + execute
/// cycle under each measured execution engine (tree first; any number of
/// further tiers may follow).
#[derive(Debug, Clone)]
pub struct EngineBenchRow {
    /// Workload name.
    pub name: &'static str,
    /// Wall-clock per engine, milliseconds, in measurement order.
    pub engine_ms: Vec<(vm::Engine, f64)>,
}

impl EngineBenchRow {
    /// Wall-clock of `engine`, if it was measured.
    pub fn ms(&self, engine: vm::Engine) -> Option<f64> {
        self.engine_ms
            .iter()
            .find(|(e, _)| *e == engine)
            .map(|&(_, ms)| ms)
    }

    /// Wall-clock speedup of the bytecode engine over the tree-walker.
    ///
    /// # Panics
    ///
    /// Panics if either engine was not measured.
    pub fn speedup(&self) -> f64 {
        self.ms(vm::Engine::Tree).expect("tree measured")
            / self.ms(vm::Engine::Bytecode).expect("bytecode measured")
    }
}

/// Sums each engine's wall-clock across `rows`, in row engine order.
pub fn engine_totals(rows: &[EngineBenchRow]) -> Vec<(vm::Engine, f64)> {
    let mut totals: Vec<(vm::Engine, f64)> = Vec::new();
    for r in rows {
        for &(e, ms) in &r.engine_ms {
            match totals.iter_mut().find(|(t, _)| *t == e) {
                Some((_, acc)) => *acc += ms,
                None => totals.push((e, ms)),
            }
        }
    }
    totals
}

/// Serialises the per-engine wall-clock comparison. Modelled metrics are
/// engine-independent (asserted by the differential tests), so only host
/// timings appear here.
///
/// The schema is N-engine: each workload and the totals carry an
/// `engine_ms` object keyed by engine name, plus `speedup_vs_tree` for
/// every non-tree engine. The two-engine keys the PR 3 reports used
/// (`tree_ms`, `bytecode_ms`, `speedup`, `total_tree_ms`,
/// `total_bytecode_ms`, `speedup_wall`) are kept verbatim whenever both
/// of those engines were measured, so existing consumers never break.
pub fn engine_bench_json(scale: f64, opt: OptLevel, rows: &[EngineBenchRow]) -> String {
    let ms_obj = |pairs: &[(vm::Engine, f64)]| -> String {
        let fields: Vec<String> = pairs
            .iter()
            .map(|(e, ms)| format!("\"{e}\":{ms:.3}"))
            .collect();
        format!("{{{}}}", fields.join(","))
    };
    let speedups_obj = |pairs: &[(vm::Engine, f64)]| -> String {
        let tree = pairs
            .iter()
            .find(|(e, _)| *e == vm::Engine::Tree)
            .map(|&(_, ms)| ms);
        let fields: Vec<String> = pairs
            .iter()
            .filter(|(e, _)| *e != vm::Engine::Tree)
            .filter_map(|&(e, ms)| tree.map(|t| format!("\"{e}\":{:.3}", t / ms)))
            .collect();
        format!("{{{}}}", fields.join(","))
    };
    let legacy = |pairs: &[(vm::Engine, f64)], t_key: &str, b_key: &str, s_key: &str| -> String {
        let (Some(t), Some(b)) = (
            pairs
                .iter()
                .find(|(e, _)| *e == vm::Engine::Tree)
                .map(|&(_, ms)| ms),
            pairs
                .iter()
                .find(|(e, _)| *e == vm::Engine::Bytecode)
                .map(|&(_, ms)| ms),
        ) else {
            return String::new();
        };
        format!(
            "\"{t_key}\":{t:.3},\"{b_key}\":{b:.3},\"{s_key}\":{:.3},",
            t / b
        )
    };
    let per: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",{}\"engine_ms\":{},\"speedup_vs_tree\":{}}}",
                json_escape(r.name),
                legacy(&r.engine_ms, "tree_ms", "bytecode_ms", "speedup"),
                ms_obj(&r.engine_ms),
                speedups_obj(&r.engine_ms),
            )
        })
        .collect();
    let totals = engine_totals(rows);
    format!(
        concat!(
            "{{\"bench\":\"engines\",\"scale\":{},\"opt\":\"{:?}\",",
            "{}\"total_engine_ms\":{},\"speedup_wall_vs_tree\":{},",
            "\"workloads\":[{}]}}"
        ),
        scale,
        opt,
        legacy(
            &totals,
            "total_tree_ms",
            "total_bytecode_ms",
            "speedup_wall"
        ),
        ms_obj(&totals),
        speedups_obj(&totals),
        per.join(","),
    )
}

// ---------------------------------------------------------------------
// Serving benchmark — JSON report (`metrics --serve`)
// ---------------------------------------------------------------------

fn json_histogram(h: &service::LatencyHistogram) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .iter()
        .map(|b| {
            format!(
                "{{\"lo_ns\":{},\"hi_ns\":{},\"count\":{}}}",
                b.lo_ns, b.hi_ns, b.count
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"count\":{},\"mean_ns\":{:.1},\"min_ns\":{},\"max_ns\":{},",
            "\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"buckets\":[{}]}}"
        ),
        h.count(),
        h.mean_ns(),
        h.min_ns(),
        h.max_ns(),
        h.quantile_ns(0.5),
        h.quantile_ns(0.9),
        h.quantile_ns(0.99),
        buckets.join(","),
    )
}

fn json_fault_counters(c: &memo_runtime::FaultCounters) -> String {
    let per: Vec<String> = memo_runtime::FailPoint::ALL
        .iter()
        .map(|&p| {
            format!(
                "\"{}\":{{\"draws\":{},\"fired\":{}}}",
                p.name(),
                c.draws_at(p),
                c.fired_at(p),
            )
        })
        .collect();
    format!("{{{}}}", per.join(","))
}

fn json_service_report(r: &service::ServiceReport) -> String {
    let per_worker: Vec<String> = r.per_worker.iter().map(u64::to_string).collect();
    let counts = r.status_counts();
    let statuses: Vec<String> = service::RequestStatus::ALL
        .iter()
        .zip(counts)
        .map(|(s, n)| format!("\"{}\":{}", s.name(), n))
        .collect();
    let by_status: Vec<String> = service::RequestStatus::ALL
        .iter()
        .zip(&r.latency_by_status)
        .map(|(s, h)| format!("\"{}\":{}", s.name(), json_histogram(h)))
        .collect();
    let faults = r
        .faults
        .as_ref()
        .map_or_else(|| "null".to_string(), json_fault_counters);
    // Per-program store deltas, in the summary's workload order — the
    // per-workload green/red breakdown of this batch's store traffic.
    let per_program: Vec<String> = r.per_program_delta.iter().map(json_stats).collect();
    format!(
        concat!(
            "{{\"wall_seconds\":{:.6},\"throughput_rps\":{:.1},\"hit_ratio\":{:.6},",
            "\"trapped\":{},\"per_worker\":[{}],\"store\":{},\"per_program\":[{}],",
            "\"latency\":{},",
            "\"statuses\":{{{}}},\"retries\":{},\"degraded_flips\":{},",
            "\"faults\":{},\"latency_by_status\":{{{}}}}}"
        ),
        r.wall_seconds,
        r.throughput_rps,
        r.hit_ratio(),
        r.results.iter().filter(|x| x.trapped).count(),
        per_worker.join(","),
        json_stats(&r.store_delta),
        per_program.join(","),
        json_histogram(&r.latency),
        statuses.join(","),
        r.retries,
        r.degraded_flips,
        faults,
        by_status.join(","),
    )
}

/// Serialises a [`crate::serve::ServeSummary`] — the worker-scaling sweep
/// of the request-serving benchmark. Each point reports a cold and a warm
/// round; `speedup_vs_first` compares warm wall-clock against the sweep's
/// first worker count.
pub fn serve_report_json(s: &crate::serve::ServeSummary) -> String {
    let names: Vec<String> = s
        .workload_names
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    let first_warm_wall = s.points.first().map_or(0.0, |p| p.warm.wall_seconds);
    let points: Vec<String> = s
        .points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{\"workers\":{},\"fingerprints_match\":{},\"accounting_ok\":{},",
                    "\"speedup_vs_first\":{:.3},\"cold\":{},\"warm\":{}}}"
                ),
                p.workers,
                p.matches_baseline,
                p.accounting_ok,
                if p.warm.wall_seconds > 0.0 {
                    first_warm_wall / p.warm.wall_seconds
                } else {
                    0.0
                },
                json_service_report(&p.cold),
                json_service_report(&p.warm),
            )
        })
        .collect();
    let fault_plan = s.opts.fault_seed.map_or_else(
        || "null".to_string(),
        |seed| {
            format!(
                concat!(
                    "{{\"seed\":{},\"rate\":{},\"deadline_cycles\":{},",
                    "\"high_watermark\":{}}}"
                ),
                seed,
                s.opts.fault_rate,
                s.opts
                    .deadline_cycles
                    .map_or_else(|| "null".to_string(), |d| d.to_string()),
                s.opts
                    .high_watermark
                    .map_or_else(|| "null".to_string(), |h| h.to_string()),
            )
        },
    );
    format!(
        concat!(
            "{{\"bench\":\"serve\",\"scale\":{},\"opt\":\"{:?}\",\"shards\":{},",
            "\"queue_capacity\":{},\"cpus\":{},\"requests\":{},\"all_match\":{},",
            "\"all_accounted\":{},\"fault_plan\":{},",
            "\"workloads\":[{}],\"baseline\":{},\"sweep\":[{}]}}"
        ),
        s.opts.scale,
        s.opts.opt,
        s.opts.shards,
        s.opts.queue_capacity,
        s.cpus,
        s.requests,
        s.all_match(),
        s.all_accounted(),
        fault_plan,
        names.join(","),
        json_service_report(&s.baseline),
        points.join(","),
    )
}

fn json_f64_array(vals: &[f64]) -> String {
    let rendered: Vec<String> = vals.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", rendered.join(","))
}

fn json_decile_run(d: &crate::serve::DecileRun) -> String {
    format!(
        concat!(
            "{{\"overall\":{},\"first_decile\":{},\"deciles\":{},",
            "\"stats\":{}}}"
        ),
        d.overall(),
        d.first_decile(),
        json_f64_array(&d.ratios),
        json_stats(&d.delta),
    )
}

/// Serialises a [`crate::serve::WarmRestartSummary`] — the snapshot /
/// warm-restart benchmark (`metrics --serve --assert-warm-restart`,
/// DESIGN.md §8i): cold/warm/restored decile curves, the snapshot size,
/// and the gate verdict.
pub fn warm_restart_json(s: &crate::serve::WarmRestartSummary) -> String {
    let names: Vec<String> = s
        .workload_names
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    format!(
        concat!(
            "{{\"bench\":\"warm_restart\",\"scale\":{},\"opt\":\"{:?}\",",
            "\"shards\":{},\"workers\":{},\"requests\":{},\"l1_slots\":{},",
            "\"admission\":{},\"snapshot_bytes\":{},\"restore_ok\":{},",
            "\"matches_baseline\":{},\"tolerance\":{},\"gate_holds\":{},",
            "\"workloads\":[{}],\"cold\":{},\"warm\":{},\"restored\":{}}}"
        ),
        s.opts.scale,
        s.opts.opt,
        s.opts.shards,
        s.workers,
        s.requests,
        s.opts.l1_slots,
        s.opts.admission,
        s.snapshot_bytes,
        s.restore_ok,
        s.matches_baseline,
        s.tolerance,
        s.gate_holds(),
        names.join(","),
        json_decile_run(&s.cold),
        json_decile_run(&s.warm),
        json_decile_run(&s.restored),
    )
}

fn json_admission_arm(a: &crate::admission::AdmissionArm) -> String {
    format!(
        concat!(
            "{{\"evictions\":{},\"admission_rejects\":{},\"insertions\":{},",
            "\"hot_survival\":{},\"stats\":{}}}"
        ),
        a.evictions,
        a.admission_rejects,
        a.insertions,
        a.hot_survival,
        json_stats(&a.stats),
    )
}

/// Serialises a [`crate::admission::AdmissionAb`] — the TinyLFU
/// admission A/B microbench (`metrics --serve --admission`): both arms'
/// eviction/rejection counts at equal memory plus the conclusiveness
/// verdict.
pub fn admission_ab_json(ab: &crate::admission::AdmissionAb) -> String {
    format!(
        concat!(
            "{{\"bench\":\"admission_ab\",\"slots\":{},\"shards\":{},",
            "\"hot_keys\":{},\"hot_rounds\":{},\"one_shots\":{},",
            "\"conclusive\":{},\"eviction_cut\":{},",
            "\"on\":{},\"off\":{}}}"
        ),
        ab.slots,
        ab.shards,
        ab.hot_keys,
        ab.hot_rounds,
        ab.one_shots,
        ab.conclusive(),
        ab.off.evictions.saturating_sub(ab.on.evictions),
        json_admission_arm(&ab.on),
        json_admission_arm(&ab.off),
    )
}

/// Serialises a [`crate::contend::ContendSummary`] — the shared-store
/// contention microbench (`metrics --contend`). Each point reports wall
/// time, aggregate throughput, the torn-read count (must be 0), and the
/// merged store statistics including `optimistic_hits` and
/// `optimistic_retries` (DESIGN.md §8h).
pub fn contend_report_json(s: &crate::contend::ContendSummary) -> String {
    let points: Vec<String> = s
        .points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{\"threads\":{},\"wall_seconds\":{:.6},\"ops\":{},",
                    "\"throughput_ops\":{:.1},\"hits\":{},\"misses\":{},",
                    "\"torn\":{},\"shard_merge_ok\":{},\"stats\":{}}}"
                ),
                p.threads,
                p.wall_seconds,
                p.ops,
                p.throughput_ops,
                p.hits,
                p.misses,
                p.torn,
                p.shard_merge_ok,
                json_stats(&p.stats),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"bench\":\"contend\",\"slots\":{},\"shards\":{},\"hot_keys\":{},",
            "\"ops_per_thread\":{},\"write_every\":{},\"cpus\":{},",
            "\"no_torn_reads\":{},\"sweep\":[{}]}}"
        ),
        s.opts.slots,
        s.opts.shards,
        s.opts.hot_keys,
        s.opts.ops_per_thread,
        s.opts.write_every,
        s.cpus,
        s.no_torn_reads(),
        points.join(","),
    )
}

/// Serialises a [`crate::serve::AbSummary`] — the perturbed-input A/B
/// benchmark (`metrics --serve --alt`). Each point reports both arms'
/// cold and warm rounds; `hit_lift` is arm B's warm hit ratio minus arm
/// A's (what try-mark-green validation buys over exact matching on the
/// same batch, DESIGN.md §8g).
pub fn serve_ab_json(s: &crate::serve::AbSummary) -> String {
    let names: Vec<String> = s
        .workload_names
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    let points: Vec<String> = s
        .points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{\"workers\":{},\"fingerprints_match\":{},\"accounting_ok\":{},",
                    "\"hit_lift\":{:.6},\"red_hit_ratio\":{:.6},\"green_hit_ratio\":{:.6},",
                    "\"green_hits\":{},\"stale_reds\":{},",
                    "\"red\":{{\"cold\":{},\"warm\":{}}},",
                    "\"green\":{{\"cold\":{},\"warm\":{}}}}}"
                ),
                p.workers,
                p.matches_baseline,
                p.accounting_ok,
                p.hit_lift(),
                p.red_warm.hit_ratio(),
                p.green_warm.hit_ratio(),
                p.green_warm.store_delta.green_hits + p.green_cold.store_delta.green_hits,
                p.green_warm.store_delta.stale_reds + p.green_cold.store_delta.stale_reds,
                json_service_report(&p.red_cold),
                json_service_report(&p.red_warm),
                json_service_report(&p.green_cold),
                json_service_report(&p.green_warm),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"bench\":\"serve_ab\",\"scale\":{},\"opt\":\"{:?}\",\"shards\":{},",
            "\"queue_capacity\":{},\"cpus\":{},\"requests\":{},\"all_match\":{},",
            "\"all_accounted\":{},\"lift_holds\":{},",
            "\"workloads\":[{}],\"baseline\":{},\"sweep\":[{}]}}"
        ),
        s.opts.scale,
        s.opts.opt,
        s.opts.shards,
        s.opts.queue_capacity,
        s.cpus,
        s.requests,
        s.all_match(),
        s.all_accounted(),
        s.lift_holds(),
        names.join(","),
        json_service_report(&s.baseline),
        points.join(","),
    )
}

/// Serialises one measured run into the JSON metrics report: per-table
/// accesses, hits, misses, collisions, evictions, guard state, the
/// transition journal, and the retained epoch windows.
pub fn metrics_report_json(p: &Prepared, m: &crate::runner::Measurement, adaptive: bool) -> String {
    let tables: Vec<String> = p
        .outcome
        .specs
        .iter()
        .zip(&m.tables)
        .enumerate()
        .map(|(i, (spec, t))| json_table(i, spec, t))
        .collect();
    let mut agg = memo_runtime::TableStats::default();
    for t in &m.tables {
        agg.merge(t.stats());
    }
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"opt\":\"{:?}\",\"adaptive\":{},",
            "\"output_match\":{},\"speedup\":{},\"orig_cycles\":{},\"memo_cycles\":{},",
            "\"totals\":{},\"tables\":[{}]}}"
        ),
        json_escape(p.name),
        p.opt,
        adaptive,
        m.output_match,
        m.speedup(),
        m.orig_cycles,
        m.memo_cycles,
        json_stats(&agg),
        tables.join(","),
    )
}
