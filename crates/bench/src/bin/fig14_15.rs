//! Regenerates the paper's Figure 14 (O0) / Figure 15 (O3): speedups with
//! different hash table sizes. Select with --opt o0|o3.

fn main() {
    let args = bench::Args::parse();
    let rows = bench::reports::fig14_15(args.opt, args.scale);
    let which = match args.opt {
        vm::OptLevel::O0 => "Figure 14: speedups vs hash table size (O0)",
        vm::OptLevel::O3 => "Figure 15: speedups vs hash table size (O3)",
    };
    bench::fmt::print_table(
        &format!("{which} (scale {})", args.scale),
        &bench::reports::FIG1415_HEADERS,
        &rows,
    );
}
