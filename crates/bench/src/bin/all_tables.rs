//! Regenerates every table and figure of the paper's evaluation in one
//! run. Expect several minutes at the default scale; use --scale to trade
//! fidelity for time.

fn main() {
    let args = bench::Args::parse();
    let s = args.scale;
    println!("compreuse evaluation harness — input scale {s}");

    let rows = bench::reports::table3(s);
    bench::fmt::print_table(
        "Table 3: factors which affect the optimization decision",
        &bench::reports::TABLE3_HEADERS,
        &rows,
    );

    let rows = bench::reports::table4(s);
    bench::fmt::print_table(
        "Table 4: number of code segments",
        &bench::reports::TABLE4_HEADERS,
        &rows,
    );

    let rows = bench::reports::table5(s);
    bench::fmt::print_table(
        "Table 5: hit ratios with limited buffers",
        &bench::reports::TABLE5_HEADERS,
        &rows,
    );

    let rows = bench::reports::table6_or_7(vm::OptLevel::O0, s);
    bench::fmt::print_table(
        "Table 6: performance improvement with O0",
        &bench::reports::TABLE67_HEADERS,
        &rows,
    );

    let rows = bench::reports::table6_or_7(vm::OptLevel::O3, s);
    bench::fmt::print_table(
        "Table 7: performance improvement with O3",
        &bench::reports::TABLE67_HEADERS,
        &rows,
    );

    let rows = bench::reports::table8_or_9(vm::OptLevel::O0, s);
    bench::fmt::print_table(
        "Table 8: energy saving with O0",
        &bench::reports::TABLE89_HEADERS,
        &rows,
    );

    let rows = bench::reports::table8_or_9(vm::OptLevel::O3, s);
    bench::fmt::print_table(
        "Table 9: energy saving with O3",
        &bench::reports::TABLE89_HEADERS,
        &rows,
    );

    let rows = bench::reports::table10(s);
    bench::fmt::print_table(
        "Table 10: performance for different input files (O3)",
        &bench::reports::TABLE10_HEADERS,
        &rows,
    );

    for n in [5u32, 6, 7, 8, 11, 12, 13] {
        bench::reports::print_figure(n, s);
    }

    let rows = bench::reports::fig14_15(vm::OptLevel::O0, s);
    bench::fmt::print_table(
        "Figure 14: speedups vs hash table size (O0)",
        &bench::reports::FIG1415_HEADERS,
        &rows,
    );

    let rows = bench::reports::fig14_15(vm::OptLevel::O3, s);
    bench::fmt::print_table(
        "Figure 15: speedups vs hash table size (O3)",
        &bench::reports::FIG1415_HEADERS,
        &rows,
    );
}
