//! Regenerates the paper's Table 6 (O0) or Table 7 (O3): performance
//! improvement. Select with --opt o0|o3 (default o0); --scale `<f>`.

fn main() {
    let args = bench::Args::parse();
    let rows = bench::reports::table6_or_7(args.opt, args.scale);
    let which = match args.opt {
        vm::OptLevel::O0 => "Table 6: performance improvement with O0",
        vm::OptLevel::O3 => "Table 7: performance improvement with O3",
    };
    bench::fmt::print_table(
        &format!("{which} (scale {})", args.scale),
        &bench::reports::TABLE67_HEADERS,
        &rows,
    );
}
