//! Regenerates the paper's Table 10: performance improvement for
//! different input files (profiled on defaults, run on alternates, O3).

fn main() {
    let args = bench::Args::parse();
    let rows = bench::reports::table10(args.scale);
    bench::fmt::print_table(
        &format!(
            "Table 10: performance improvement for different input files (O3, scale {})",
            args.scale
        ),
        &bench::reports::TABLE10_HEADERS,
        &rows,
    );
}
