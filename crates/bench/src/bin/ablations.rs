//! Ablation study over the scheme's design choices:
//!
//! - **no-spec** — §2.4 specialization off (the paper's G721 motivation:
//!   without it, the three-input `quan` is unanalyzable/unprofitable);
//! - **no-nest** — §2.3 nesting resolution off (every profitable segment
//!   transformed, including redundant outer/inner pairs);
//! - **no-merge** — §2.5 table merging off (per-segment tables; the GNU Go
//!   memory blow-up).
//!
//! ```sh
//! cargo run --release -p bench --bin ablations -- --scale 0.15
//! ```

use bench::fmt;
use bench::runner::{execute, prepare_with, InputKind, PrepareOpts};
use compreuse::{run_pipeline, PipelineConfig};
use vm::{CostModel, OptLevel, RunConfig};
use workloads::Workload;

fn main() {
    let args = bench::Args::parse();
    let scale = args.scale;
    let mut rows = Vec::new();
    for w in workloads::main_seven() {
        rows.push(ablate(&w, scale));
    }
    fmt::print_table(
        &format!("Ablations: speedup and table bytes per disabled feature (O0, scale {scale})"),
        &[
            "Program",
            "full",
            "no-spec",
            "no-nest",
            "no-merge",
            "bytes full",
            "bytes no-nest",
            "bytes no-merge",
        ],
        &rows,
    );
    println!(
        "\nReading guide: no-spec hurts exactly where specialization creates the candidate\n\
         (G721's quan); no-nest wastes tables on covered outer segments; no-merge\n\
         multiplies GNU Go's table memory (the paper's iPAQ OOM)."
    );
}

fn ablate(w: &Workload, scale: f64) -> Vec<String> {
    let input = (w.default_input)(scale);

    let run_with = |config: PipelineConfig| -> (f64, usize) {
        let program = minic::parse(&w.source).expect("parse");
        let outcome = run_pipeline(&program, &config).expect("pipeline");
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig {
                cost: CostModel::o0(),
                input: input.clone(),
                ..RunConfig::default()
            },
        )
        .expect("baseline");
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                cost: CostModel::o0(),
                input: input.clone(),
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .expect("memoized");
        assert_eq!(base.output_text(), memo.output_text(), "{}", w.name);
        (
            base.seconds / memo.seconds,
            outcome.report.total_table_bytes,
        )
    };
    let base_cfg = || PipelineConfig {
        cost: CostModel::o0(),
        profile_input: input.clone(),
        ..PipelineConfig::default()
    };

    let (full, bytes_full) = run_with(base_cfg());
    let (no_spec, _) = run_with(PipelineConfig {
        enable_specialization: false,
        ..base_cfg()
    });
    let (no_nest, bytes_no_nest) = run_with(PipelineConfig {
        enable_nesting: false,
        ..base_cfg()
    });
    let (no_merge, bytes_no_merge) = run_with(PipelineConfig {
        enable_merging: false,
        ..base_cfg()
    });
    // Keep the prepared-runner path exercised too (consistency check).
    let p = prepare_with(w, OptLevel::O0, scale, &PrepareOpts::default());
    let m = execute(&p, w, InputKind::Default, scale);
    assert!(m.output_match);

    vec![
        w.name.to_string(),
        fmt::f(full, 2),
        fmt::f(no_spec, 2),
        fmt::f(no_nest, 2),
        fmt::f(no_merge, 2),
        fmt::bytes(bytes_full),
        fmt::bytes(bytes_no_nest),
        fmt::bytes(bytes_no_merge),
    ]
}
