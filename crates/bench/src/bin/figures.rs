//! Regenerates the paper's histogram figures: 5/6 (quan input values),
//! 7/8 (accessed table entries), 11 (RASTA patterns), 12 (UNEPIC values),
//! 13 (GNU Go patterns). Select one with --fig N or omit for all.

fn main() {
    let args = bench::Args::parse();
    match args.fig {
        Some(n) => bench::reports::print_figure(n, args.scale),
        None => {
            for n in [5u32, 6, 7, 8, 11, 12, 13] {
                bench::reports::print_figure(n, args.scale);
            }
        }
    }
}
