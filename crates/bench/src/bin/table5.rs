//! Regenerates the paper's Table 5: hit ratios with limited buffers
//! (1/4/16/64-entry LRU), modelling the hardware reuse-buffer proposals.

fn main() {
    let args = bench::Args::parse();
    let rows = bench::reports::table5(args.scale);
    bench::fmt::print_table(
        &format!(
            "Table 5: hit ratios with limited buffers (scale {})",
            args.scale
        ),
        &bench::reports::TABLE5_HEADERS,
        &rows,
    );
}
