//! Regenerates the paper's Table 4: number of code segments analyzed,
//! profiled, and transformed.

fn main() {
    let args = bench::Args::parse();
    let rows = bench::reports::table4(args.scale);
    bench::fmt::print_table(
        &format!("Table 4: number of code segments (scale {})", args.scale),
        &bench::reports::TABLE4_HEADERS,
        &rows,
    );
}
