//! Regenerates the paper's Table 3: factors which affect the optimization
//! decision (granularity, overhead, DIP#, reuse rate, table size).

fn main() {
    let args = bench::Args::parse();
    let rows = bench::reports::table3(args.scale);
    bench::fmt::print_table(
        &format!(
            "Table 3: factors which affect the optimization decision (scale {})",
            args.scale
        ),
        &bench::reports::TABLE3_HEADERS,
        &rows,
    );
}
