//! Regenerates the paper's Table 8 (O0) or Table 9 (O3): energy saving.
//! Select with --opt o0|o3 (default o0); --scale `<f>`.

fn main() {
    let args = bench::Args::parse();
    let rows = bench::reports::table8_or_9(args.opt, args.scale);
    let which = match args.opt {
        vm::OptLevel::O0 => "Table 8: energy saving with O0",
        vm::OptLevel::O3 => "Table 9: energy saving with O3",
    };
    bench::fmt::print_table(
        &format!("{which} (scale {})", args.scale),
        &bench::reports::TABLE89_HEADERS,
        &rows,
    );
}
