//! Emits the JSON runtime-table metrics report for one workload: per-table
//! accesses, hits, misses, collisions, evictions, guard state, and the
//! adaptive-guard transition journal.
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- [workload] [--scale f]
//!     [--opt o0|o3] [--adaptive] [--alt]
//! ```
//!
//! `--alt` executes on the Table 10 alternate inputs (profiling always
//! uses the defaults), the scenario where live rates diverge from the
//! profile's predictions.
//!
//! Defaults: `G721_encode`, scale 0.25, O0, guard disabled (telemetry
//! only).
//! `--adaptive` instantiates the tables through
//! `ReuseOutcome::make_adaptive_tables`, letting the guard resize or
//! bypass tables whose live collision rate exceeds the profile's
//! prediction.

use bench::runner::{execute_with_tables, prepare, InputKind};

fn main() {
    let mut name = "G721_encode".to_string();
    let mut scale = 0.25f64;
    let mut opt = vm::OptLevel::O0;
    let mut adaptive = false;
    let mut input = InputKind::Default;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a number"));
            }
            "--opt" => {
                i += 1;
                opt = match argv.get(i).map(String::as_str) {
                    Some("o0") | Some("O0") => vm::OptLevel::O0,
                    Some("o3") | Some("O3") => vm::OptLevel::O3,
                    other => panic!("--opt needs o0 or o3, got {other:?}"),
                };
            }
            "--adaptive" => adaptive = true,
            "--alt" => input = InputKind::Alt,
            w if !w.starts_with('-') => name = w.to_string(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let w = workloads::by_name(&name).unwrap_or_else(|| {
        let names: Vec<&str> = workloads::all_eleven().iter().map(|w| w.name).collect();
        panic!("unknown workload {name}; one of: {}", names.join(", "))
    });
    let p = prepare(&w, opt, scale);
    let tables = if adaptive {
        p.outcome.make_adaptive_tables()
    } else {
        p.outcome.make_tables()
    };
    let m = execute_with_tables(&p, &w, input, scale, tables);
    assert!(m.output_match, "{name}: outputs diverged");
    println!("{}", bench::reports::metrics_report_json(&p, &m, adaptive));
}
