//! Emits the JSON runtime-table metrics report for one workload: per-table
//! accesses, hits, misses, collisions, evictions, guard state, and the
//! adaptive-guard transition journal.
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- [workload] [--scale f]
//!     [--opt o0|o3] [--adaptive] [--alt] [--engine tree|bytecode]
//!     [--bench-engines] [--assert-faster]
//! ```
//!
//! `--alt` executes on the Table 10 alternate inputs (profiling always
//! uses the defaults), the scenario where live rates diverge from the
//! profile's predictions.
//!
//! Defaults: `G721_encode`, scale 0.25, O0, guard disabled (telemetry
//! only), bytecode engine.
//! `--adaptive` instantiates the tables through
//! `ReuseOutcome::make_adaptive_tables`, letting the guard resize or
//! bypass tables whose live collision rate exceeds the profile's
//! prediction.
//!
//! `--bench-engines` replaces the metrics report with a host wall-clock
//! comparison of the two execution engines: the full `run_pipeline` +
//! measurement cycle is timed per workload under each engine (workload
//! name `all` sweeps the seven main programs). Modelled cycles and
//! energy are engine-independent — only host speed differs. With
//! `--assert-faster` the process exits nonzero if the bytecode engine is
//! not faster overall, which CI runs on `G721_encode`.
//!
//! `--serve` replaces the report with the request-serving benchmark: a
//! `service::ReuseService` over the seven main workloads (or the named
//! one), swept over `--sweep-workers` worker counts (default: just
//! `--workers N`), each from a cold shared store with a warm second
//! round. Extra flags: `--shards S` (lock shards per table),
//! `--requests R` (requests per workload per batch),
//! `--assert-serve-speedup` (exit nonzero unless the sweep's highest
//! worker count beats its lowest on warm wall-clock, or any fingerprint
//! diverges from the sequential baseline). A parallel speedup is only
//! measurable when the host grants at least as many CPUs as the highest
//! swept worker count; with fewer, the gate exits with the distinct
//! *inconclusive* status 3 — not success — so CI can tell "proved" from
//! "could not be measured here".
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- --serve --workers 4
//! cargo run --release -p bench --bin metrics -- --serve \
//!     --sweep-workers 1,2,4 --shards 8 --assert-serve-speedup
//! ```
//!
//! `--contend` replaces the report with the shared-store contention
//! microbench (DESIGN.md §8h): per `--sweep-workers` point, reader
//! threads hammer a hot key set on one `ShardedTable` while interleaved
//! writers re-record and evict, and every hit payload is verified
//! against the recorded value (a mismatch is a torn read and fails the
//! run). The JSON report carries `optimistic_hits` /
//! `optimistic_retries` per point. `--shards` and `--requests` (ops per
//! thread, in thousands) apply; with `--assert-serve-speedup` the gate
//! requires monotone throughput across the sweep — or exits 3
//! (inconclusive) when the host has fewer CPUs than the highest thread
//! count.
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- --contend \
//!     --sweep-workers 1,2,4 --shards 8 --assert-serve-speedup
//! ```
//!
//! Chaos flags (with `--serve`): `--fault-plan <seed>` installs a
//! deterministic fault plan firing every fail point at `--fault-rate`
//! (default 0.1); `--deadline-cycles N` and `--high-watermark N` set the
//! per-request cycle budget and the load-shedding queue depth.
//! `--assert-fault-equivalence` is the CI gate for DESIGN.md §8f: it
//! requires a fault plan, checks that every *executed* request
//! fingerprinted identically to the fault-free sequential baseline, that
//! the four terminal statuses account for the whole batch, that the plan
//! actually bit (faults fired, retries happened), and that the emitted
//! report round-trips through the `bench::json` parser; any failure
//! exits nonzero.
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- --serve --fault-plan 42 \
//!     --fault-rate 0.15 --sweep-workers 1,4 --assert-fault-equivalence
//! ```
//!
//! `--serve --alt` switches to the perturbed-input A/B benchmark
//! (DESIGN.md §8g): per sweep point the same mixed default/alternate
//! batch is served cold+warm with dependency validation off (arm A —
//! dependency-keyed entries are forced red, exact matching only) and
//! again from a fresh store with validation on (arm B — recorded
//! fingerprints that still hold promote entries green). The report's
//! `hit_lift` is arm B's warm hit ratio minus arm A's.
//! `--assert-hit-lift` is the CI gate: exit nonzero unless every point
//! lifts, at least one green promotion happened, and every executed
//! request fingerprints identically to the sequential baseline.
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- --serve --alt \
//!     --sweep-workers 1,2,4 --assert-hit-lift
//! ```
//!
//! Persistence flags (with `--serve`, DESIGN.md §8i): `--snapshot-out
//! <path>` writes the warm store snapshot there; `--snapshot-in <path>`
//! restores the restarted service from that file instead of the one just
//! written; either flag (or `--assert-warm-restart`) switches to the
//! warm-restart suite — a cold round, a warm round, a snapshot, a
//! simulated restart + restore, and a restored round, each reported as a
//! decile hit-ratio curve alongside the deterministic TinyLFU admission
//! A/B microbench. `--admission` enables sketch-gated L2 admission in the
//! service itself; `--l1-slots N` sizes the per-worker L1 front (0
//! disables tiering). `--assert-warm-restart` is the CI gate: exit
//! nonzero unless the snapshot restored, every request fingerprinted
//! identically to the sequential baseline, the restored service reached
//! the warm first-decile hit ratio within its first 10% of requests, the
//! admission A/B was conclusive, and the report round-trips through the
//! `bench::json` parser.
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- --serve \
//!     --snapshot-out store.snap --assert-warm-restart --admission
//! ```

use std::path::PathBuf;

use bench::contend::{run_contend, ContendOpts};
use bench::reports::EngineBenchRow;
use bench::runner::{execute, execute_with_tables, prepare_with, InputKind, PrepareOpts};
use bench::serve::{run_serve, run_serve_ab, run_warm_restart, ServeOpts};
use workloads::Workload;

/// Exit status for a speedup gate that could not be measured on this
/// host (fewer CPUs than the highest swept worker count). Distinct from
/// success (0) and failure (1) so CI treats "unproven here" differently
/// from "disproven".
const EXIT_INCONCLUSIVE: i32 = 3;

/// Times one full prepare + execute cycle on `engine`, in milliseconds.
fn time_workload(w: &Workload, opt: vm::OptLevel, scale: f64, engine: vm::Engine) -> f64 {
    let opts = PrepareOpts {
        engine,
        ..PrepareOpts::default()
    };
    let start = std::time::Instant::now();
    let p = prepare_with(w, opt, scale, &opts);
    let m = execute(&p, w, InputKind::Default, scale);
    assert!(m.output_match, "{}: outputs diverged", w.name);
    start.elapsed().as_secs_f64() * 1e3
}

/// The wall-clock bar the specialized tier must clear over the
/// tree-walker: the bytecode tier's recorded seven-workload sweep
/// (BENCH_pr3.json, `speedup_wall`). The third tier starts from the
/// bytecode dispatch loop, so beating this bar means the mined
/// superinstructions and clones paid for themselves.
const SPEC_SPEEDUP_BAR: f64 = 1.541;

fn bench_engines(
    ws: &[Workload],
    opt: vm::OptLevel,
    scale: f64,
    assert_faster: bool,
    gate_engine: vm::Engine,
) {
    let engines = [
        vm::Engine::Tree,
        vm::Engine::Bytecode,
        vm::Engine::Specialized,
    ];
    let rows: Vec<EngineBenchRow> = ws
        .iter()
        .map(|w| EngineBenchRow {
            name: w.name,
            engine_ms: engines
                .iter()
                .map(|&e| (e, time_workload(w, opt, scale, e)))
                .collect(),
        })
        .collect();
    println!("{}", bench::reports::engine_bench_json(scale, opt, &rows));
    if !assert_faster {
        return;
    }
    let totals = bench::reports::engine_totals(&rows);
    let total = |e: vm::Engine| -> f64 {
        totals
            .iter()
            .find(|(t, _)| *t == e)
            .map(|&(_, ms)| ms)
            .expect("engine measured")
    };
    let tree = total(vm::Engine::Tree);
    let bc = total(vm::Engine::Bytecode);
    if gate_engine == vm::Engine::Specialized {
        // The specialized gate holds the tier above the *recorded*
        // bytecode bar, not merely above this host's bytecode run. A
        // host that cannot even reproduce the recorded bytecode speedup
        // is starved (CI noise, shared runners) — then a spec-behind-bar
        // result is inconclusive, never a silent pass.
        let spec = total(vm::Engine::Specialized);
        let spec_speedup = tree / spec;
        if spec_speedup > SPEC_SPEEDUP_BAR {
            return;
        }
        let host_bc_speedup = tree / bc;
        if host_bc_speedup <= SPEC_SPEEDUP_BAR {
            // The host's own bytecode run is below the recorded bar, so
            // this run cannot distinguish a regressed tier from a
            // degraded host. (When the host *does* clear the bar, a
            // spec run at least as fast as bytecode clears it too —
            // tree/spec >= tree/bc — so this branch never hides a
            // genuinely healthy tier behind an exit 3.)
            eprintln!(
                "specialized gate inconclusive: host does not reproduce the recorded \
                 bytecode bar (tree/spec {spec_speedup:.3}, tree/bytecode \
                 {host_bc_speedup:.3}, bar {SPEC_SPEEDUP_BAR})"
            );
            std::process::exit(EXIT_INCONCLUSIVE);
        }
        eprintln!(
            "specialized engine below the bytecode bar: tree/spec {spec_speedup:.3} \
             <= {SPEC_SPEEDUP_BAR} while this host reproduces tree/bytecode \
             {host_bc_speedup:.3} (tree {tree:.1} ms, bytecode {bc:.1} ms, spec {spec:.1} ms)"
        );
        std::process::exit(1);
    }
    if bc >= tree {
        eprintln!("bytecode engine not faster: {bc:.1} ms vs tree {tree:.1} ms");
        std::process::exit(1);
    }
}

/// The `--assert-fault-equivalence` gate: executed-fingerprint
/// equivalence under an active fault plan, whole-batch status
/// accounting, proof the plan actually bit, and a JSON round-trip of the
/// emitted report.
fn assert_fault_equivalence(summary: &bench::serve::ServeSummary, report: &str) {
    let fail = |msg: &str| -> ! {
        eprintln!("serve: fault-equivalence gate failed: {msg}");
        std::process::exit(1);
    };
    if summary.opts.fault_seed.is_none() {
        fail("--assert-fault-equivalence requires --fault-plan <seed>");
    }
    if !summary.all_accounted() {
        fail("status counts do not sum to the submitted batch");
    }
    let mut retries = 0u64;
    let mut unserved = 0u64;
    let mut probe_misses = 0u64;
    let mut total_fired = 0u64;
    for p in &summary.points {
        for r in [&p.cold, &p.warm] {
            let [_, shed, _, exhausted] = r.status_counts();
            retries += r.retries;
            unserved += shed + exhausted;
            let c = r.faults.as_ref().unwrap_or_else(|| {
                fail("a sweep point ran without fault counters despite the plan")
            });
            probe_misses += c.fired_at(memo_runtime::FailPoint::ProbeMiss);
            total_fired += c.total_fired();
        }
    }
    if total_fired == 0 {
        fail("the fault plan never fired — rate too low for this batch");
    }
    if probe_misses == 0 {
        fail("no probe-miss faults fired on the shared stores");
    }
    if retries == 0 {
        fail("no request ever retried — queue/poison faults never bit");
    }
    // Without a watermark nothing is ever shed (retries absorb the queue
    // faults), so only hold the shed/exhausted counter to nonzero when
    // the degradation ladder is actually configured.
    if summary.opts.high_watermark.is_some() && unserved == 0 {
        fail("a high watermark was set but nothing was shed or exhausted");
    }
    let parsed = bench::json::parse(report)
        .unwrap_or_else(|e| fail(&format!("emitted report is not valid JSON: {e}")));
    let round_trip_ok = parsed.get("all_match").and_then(|v| v.as_bool()) == Some(true)
        && parsed.get("all_accounted").and_then(|v| v.as_bool()) == Some(true)
        && parsed
            .get("fault_plan")
            .and_then(|v| v.get("seed"))
            .and_then(|v| v.as_u64())
            == summary.opts.fault_seed
        && parsed
            .get("sweep")
            .and_then(|v| v.as_array())
            .map(<[_]>::len)
            == Some(summary.points.len());
    if !round_trip_ok {
        fail("round-tripped report disagrees with the in-memory summary");
    }
}

/// The `--serve --alt` perturbed-input A/B mode: the same batch served
/// with validation off (arm A, exact-match probing only) and on (arm B,
/// try-mark-green), measuring the warm hit-ratio lift. With
/// `--assert-hit-lift`, exits nonzero unless every sweep point shows a
/// positive lift with at least one green promotion, every executed
/// request fingerprints identically to the sequential baseline, and the
/// emitted report round-trips through the JSON parser.
fn serve_ab_mode(ws: &[Workload], opts: &ServeOpts, sweep: &[usize], assert_lift: bool) {
    let summary = run_serve_ab(ws, opts, sweep);
    let report = bench::reports::serve_ab_json(&summary);
    println!("{report}");
    if !summary.all_match() {
        eprintln!("serve-ab: fingerprints diverged from the sequential baseline");
        std::process::exit(1);
    }
    if !summary.all_accounted() {
        eprintln!("serve-ab: status counts do not sum to the submitted batch");
        std::process::exit(1);
    }
    if assert_lift {
        let fail = |msg: &str| -> ! {
            eprintln!("serve-ab: hit-lift gate failed: {msg}");
            std::process::exit(1);
        };
        if !summary.lift_holds() {
            for p in &summary.points {
                eprintln!(
                    "  workers {}: warm hit ratio {:.4} (red) -> {:.4} (green), lift {:+.4}, \
                     green hits {}",
                    p.workers,
                    p.red_warm.hit_ratio(),
                    p.green_warm.hit_ratio(),
                    p.hit_lift(),
                    p.green_cold.store_delta.green_hits + p.green_warm.store_delta.green_hits,
                );
            }
            fail("validation did not lift the warm hit ratio at every sweep point");
        }
        let parsed = bench::json::parse(&report)
            .unwrap_or_else(|e| fail(&format!("emitted report is not valid JSON: {e}")));
        let round_trip_ok = parsed.get("all_match").and_then(|v| v.as_bool()) == Some(true)
            && parsed.get("lift_holds").and_then(|v| v.as_bool()) == Some(true)
            && parsed
                .get("sweep")
                .and_then(|v| v.as_array())
                .map(<[_]>::len)
                == Some(summary.points.len());
        if !round_trip_ok {
            fail("round-tripped report disagrees with the in-memory summary");
        }
    }
}

/// The `--serve` warm-restart mode (triggered by `--assert-warm-restart`,
/// `--snapshot-out`, or `--snapshot-in`): cold and warm decile rounds, a
/// snapshot, a simulated restart + restore, and a restored round —
/// bundled with the deterministic TinyLFU admission A/B microbench into
/// one JSON report (DESIGN.md §8i). With `--assert-warm-restart` the
/// process exits nonzero unless the snapshot restored, every answer
/// matched the sequential baseline, the restored service reached the
/// warm first-decile hit ratio within its first 10% of requests, the
/// admission A/B was conclusive (fewer evictions at equal memory), and
/// the emitted report round-trips through the JSON parser.
fn warm_restart_mode(
    ws: &[Workload],
    opts: &ServeOpts,
    workers: usize,
    snapshot_out: Option<&PathBuf>,
    snapshot_in: Option<&PathBuf>,
    assert_gate: bool,
) {
    let summary = run_warm_restart(
        ws,
        opts,
        workers,
        snapshot_out.map(PathBuf::as_path),
        snapshot_in.map(PathBuf::as_path),
    );
    let ab = bench::admission::default_admission_ab();
    let report = format!(
        "{{\"bench\":\"warm_restart_suite\",\"warm_restart\":{},\"admission\":{}}}",
        bench::reports::warm_restart_json(&summary),
        bench::reports::admission_ab_json(&ab),
    );
    println!("{report}");
    if !summary.matches_baseline {
        eprintln!("warm-restart: fingerprints diverged from the sequential baseline");
        std::process::exit(1);
    }
    if assert_gate {
        let fail = |msg: &str| -> ! {
            eprintln!("warm-restart: gate failed: {msg}");
            std::process::exit(1);
        };
        if !summary.restore_ok {
            fail("the snapshot did not restore (service cold-started)");
        }
        if !summary.gate_holds() {
            fail(&format!(
                "restored first decile {:.4} below warm first decile {:.4} (tolerance {})",
                summary.restored.first_decile(),
                summary.warm.first_decile(),
                summary.tolerance
            ));
        }
        if !ab.conclusive() {
            fail(&format!(
                "admission A/B inconclusive: on {} evictions / {} rejects, off {} evictions",
                ab.on.evictions, ab.on.admission_rejects, ab.off.evictions
            ));
        }
        let parsed = bench::json::parse(&report)
            .unwrap_or_else(|e| fail(&format!("emitted report is not valid JSON: {e}")));
        let round_trip_ok = parsed
            .get("warm_restart")
            .and_then(|v| v.get("gate_holds"))
            .and_then(|v| v.as_bool())
            == Some(true)
            && parsed
                .get("admission")
                .and_then(|v| v.get("conclusive"))
                .and_then(|v| v.as_bool())
                == Some(true);
        if !round_trip_ok {
            fail("round-tripped report disagrees with the in-memory summary");
        }
    }
}

/// Runs the serving benchmark and applies the optional CI gates.
fn serve_mode(
    ws: &[Workload],
    opts: &ServeOpts,
    sweep: &[usize],
    assert_speedup: bool,
    assert_faults: bool,
) {
    let summary = run_serve(ws, opts, sweep);
    let report = bench::reports::serve_report_json(&summary);
    println!("{report}");
    if !summary.all_match() {
        eprintln!("serve: fingerprints diverged from the sequential baseline");
        std::process::exit(1);
    }
    if assert_faults {
        assert_fault_equivalence(&summary, &report);
    }
    if assert_speedup {
        let lo = summary
            .points
            .iter()
            .min_by_key(|p| p.workers)
            .expect("at least one sweep point");
        let hi = summary
            .points
            .iter()
            .max_by_key(|p| p.workers)
            .expect("at least one sweep point");
        if hi.workers == lo.workers {
            eprintln!("--assert-serve-speedup needs a sweep with at least two worker counts");
            std::process::exit(1);
        }
        if summary.cpus < hi.workers {
            // The host cannot run hi.workers threads in parallel, so the
            // comparison proves nothing either way (determinism was still
            // checked above). Report the distinct inconclusive status.
            eprintln!(
                "serve: speedup gate inconclusive: {} cpus < {} workers",
                summary.cpus, hi.workers
            );
            std::process::exit(EXIT_INCONCLUSIVE);
        }
        if hi.warm.wall_seconds >= lo.warm.wall_seconds {
            eprintln!(
                "serve: {} workers not faster than {}: {:.4}s vs {:.4}s ({} cpus)",
                hi.workers, lo.workers, hi.warm.wall_seconds, lo.warm.wall_seconds, summary.cpus
            );
            std::process::exit(1);
        }
    }
}

/// Runs the contention microbench (`--contend`) and applies the optional
/// monotone-throughput gate. Torn reads or a lossy shard-stats merge fail
/// the run unconditionally; the throughput gate additionally requires
/// every sweep step to keep at least 95% of the previous point's
/// throughput (absorbing scheduler jitter) and the last point to beat
/// the first outright — or exits 3 (inconclusive) when the host has
/// fewer CPUs than the highest thread count.
fn contend_mode(opts: &ContendOpts, sweep: &[usize], assert_speedup: bool) {
    let summary = run_contend(opts, sweep);
    println!("{}", bench::reports::contend_report_json(&summary));
    if !summary.no_torn_reads() {
        eprintln!("contend: a hit returned a torn payload");
        std::process::exit(1);
    }
    if summary.points.iter().any(|p| !p.shard_merge_ok) {
        eprintln!("contend: per-shard statistics did not merge losslessly");
        std::process::exit(1);
    }
    if assert_speedup {
        let max_threads = sweep.iter().copied().max().unwrap_or(1);
        if sweep.len() < 2 {
            eprintln!("--assert-serve-speedup needs a sweep with at least two thread counts");
            std::process::exit(1);
        }
        if summary.cpus < max_threads {
            eprintln!(
                "contend: throughput gate inconclusive: {} cpus < {} threads",
                summary.cpus, max_threads
            );
            std::process::exit(EXIT_INCONCLUSIVE);
        }
        for pair in summary.points.windows(2) {
            if pair[1].throughput_ops < pair[0].throughput_ops * 0.95 {
                eprintln!(
                    "contend: throughput fell {} -> {} threads: {:.0} -> {:.0} ops/s",
                    pair[0].threads,
                    pair[1].threads,
                    pair[0].throughput_ops,
                    pair[1].throughput_ops
                );
                std::process::exit(1);
            }
        }
        let (first, last) = (
            &summary.points[0],
            &summary.points[summary.points.len() - 1],
        );
        if last.throughput_ops <= first.throughput_ops {
            eprintln!(
                "contend: {} threads not faster than {}: {:.0} vs {:.0} ops/s ({} cpus)",
                last.threads,
                first.threads,
                last.throughput_ops,
                first.throughput_ops,
                summary.cpus
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut name = "G721_encode".to_string();
    let mut name_set = false;
    let mut scale = 0.25f64;
    let mut opt = vm::OptLevel::O0;
    let mut adaptive = false;
    let mut input = InputKind::Default;
    let mut engine = vm::Engine::default();
    let mut bench_mode = false;
    let mut assert_faster = false;
    let mut serve = false;
    let mut contend = false;
    let mut workers = 4usize;
    let mut shards = 8usize;
    let mut requests_per_workload = 4usize;
    let mut sweep_workers: Option<Vec<usize>> = None;
    let mut assert_serve_speedup = false;
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate = 0.1f64;
    let mut deadline_cycles: Option<u64> = None;
    let mut high_watermark: Option<usize> = None;
    let mut assert_fault_equiv = false;
    let mut assert_hit_lift = false;
    let mut snapshot_out: Option<PathBuf> = None;
    let mut snapshot_in: Option<PathBuf> = None;
    let mut assert_warm_restart = false;
    let mut admission = false;
    let mut l1_slots: Option<usize> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--serve" => serve = true,
            "--contend" => contend = true,
            "--workers" => {
                i += 1;
                workers = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--workers needs a positive integer"));
            }
            "--shards" => {
                i += 1;
                shards = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--shards needs a positive integer"));
            }
            "--requests" => {
                i += 1;
                requests_per_workload = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--requests needs a positive integer"));
            }
            "--sweep-workers" => {
                i += 1;
                let list = argv
                    .get(i)
                    .map(|s| {
                        s.split(',')
                            .map(|t| {
                                t.trim()
                                    .parse::<usize>()
                                    .unwrap_or_else(|_| panic!("--sweep-workers: bad count {t:?}"))
                            })
                            .collect::<Vec<usize>>()
                    })
                    .filter(|l| !l.is_empty())
                    .unwrap_or_else(|| panic!("--sweep-workers needs a comma-separated list"));
                sweep_workers = Some(list);
            }
            "--assert-serve-speedup" => assert_serve_speedup = true,
            "--fault-plan" => {
                i += 1;
                fault_seed = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--fault-plan needs a seed (u64)")),
                );
            }
            "--fault-rate" => {
                i += 1;
                fault_rate = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| panic!("--fault-rate needs a number in [0, 1]"));
            }
            "--deadline-cycles" => {
                i += 1;
                deadline_cycles = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--deadline-cycles needs a positive integer")),
                );
            }
            "--high-watermark" => {
                i += 1;
                high_watermark = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--high-watermark needs a positive integer")),
                );
            }
            "--assert-fault-equivalence" => assert_fault_equiv = true,
            "--assert-hit-lift" => assert_hit_lift = true,
            "--snapshot-out" => {
                i += 1;
                snapshot_out = Some(PathBuf::from(
                    argv.get(i)
                        .unwrap_or_else(|| panic!("--snapshot-out needs a path")),
                ));
            }
            "--snapshot-in" => {
                i += 1;
                snapshot_in = Some(PathBuf::from(
                    argv.get(i)
                        .unwrap_or_else(|| panic!("--snapshot-in needs a path")),
                ));
            }
            "--assert-warm-restart" => assert_warm_restart = true,
            "--admission" => admission = true,
            "--l1-slots" => {
                i += 1;
                l1_slots = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--l1-slots needs an integer (0 disables L1)")),
                );
            }
            "--scale" => {
                i += 1;
                scale = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a number"));
            }
            "--opt" => {
                i += 1;
                opt = match argv.get(i).map(String::as_str) {
                    Some("o0") | Some("O0") => vm::OptLevel::O0,
                    Some("o3") | Some("O3") => vm::OptLevel::O3,
                    other => panic!("--opt needs o0 or o3, got {other:?}"),
                };
            }
            "--engine" => {
                i += 1;
                engine = match argv.get(i).map(String::as_str) {
                    Some("tree") => vm::Engine::Tree,
                    Some("bytecode") => vm::Engine::Bytecode,
                    Some("specialized") => vm::Engine::Specialized,
                    other => panic!("--engine needs tree, bytecode, or specialized, got {other:?}"),
                };
            }
            "--adaptive" => adaptive = true,
            "--alt" => input = InputKind::Alt,
            "--bench-engines" => bench_mode = true,
            "--assert-faster" => assert_faster = true,
            w if !w.starts_with('-') => {
                name = w.to_string();
                name_set = true;
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    if contend {
        let opts = ContendOpts {
            shards,
            // --requests rides along as thousands of ops per thread, so
            // the serve and contend sweeps share a CLI vocabulary.
            ops_per_thread: requests_per_workload.max(1) * 25_000,
            ..ContendOpts::default()
        };
        let sweep = sweep_workers.unwrap_or_else(|| vec![workers]);
        contend_mode(&opts, &sweep, assert_serve_speedup);
        return;
    }

    if serve {
        let ws = if !name_set || name == "all" {
            // --serve defaults to the full seven-workload mix; a named
            // workload restricts the batch to it.
            workloads::main_seven()
        } else {
            vec![workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload {name}"))]
        };
        let mut opts = ServeOpts {
            scale,
            opt,
            shards,
            requests_per_workload,
            fault_seed,
            fault_rate,
            deadline_cycles,
            high_watermark,
            admission,
            ..ServeOpts::default()
        };
        if let Some(slots) = l1_slots {
            opts.l1_slots = slots;
        }
        let sweep = sweep_workers.unwrap_or_else(|| vec![workers]);
        if assert_warm_restart || snapshot_out.is_some() || snapshot_in.is_some() {
            // --serve with snapshot flags: the warm-restart suite — cold
            // vs warm vs snapshot-restored decile curves plus the TinyLFU
            // admission A/B, with the CI gate behind --assert-warm-restart.
            warm_restart_mode(
                &ws,
                &opts,
                workers,
                snapshot_out.as_ref(),
                snapshot_in.as_ref(),
                assert_warm_restart,
            );
        } else if input == InputKind::Alt {
            // --serve --alt: the perturbed-input A/B mode. The batch
            // already mixes default and alternate inputs; --alt here
            // selects the red-vs-green arm comparison over it.
            serve_ab_mode(&ws, &opts, &sweep, assert_hit_lift);
        } else {
            serve_mode(&ws, &opts, &sweep, assert_serve_speedup, assert_fault_equiv);
        }
        return;
    }

    if bench_mode {
        let ws = if name == "all" {
            workloads::main_seven()
        } else {
            vec![workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload {name}"))]
        };
        bench_engines(&ws, opt, scale, assert_faster, engine);
        return;
    }

    let w = workloads::by_name(&name).unwrap_or_else(|| {
        let names: Vec<&str> = workloads::all_eleven().iter().map(|w| w.name).collect();
        panic!("unknown workload {name}; one of: {}", names.join(", "))
    });
    let p = prepare_with(
        &w,
        opt,
        scale,
        &PrepareOpts {
            engine,
            ..PrepareOpts::default()
        },
    );
    let tables = if adaptive {
        p.outcome.try_make_adaptive_tables()
    } else {
        p.outcome.try_make_tables()
    };
    let tables = tables.unwrap_or_else(|e| {
        eprintln!("metrics: invalid table spec: {e}");
        std::process::exit(1);
    });
    let m = execute_with_tables(&p, &w, input, scale, tables);
    assert!(m.output_match, "{name}: outputs diverged");
    println!("{}", bench::reports::metrics_report_json(&p, &m, adaptive));
}
