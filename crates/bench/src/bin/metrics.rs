//! Emits the JSON runtime-table metrics report for one workload: per-table
//! accesses, hits, misses, collisions, evictions, guard state, and the
//! adaptive-guard transition journal.
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- [workload] [--scale f]
//!     [--opt o0|o3] [--adaptive] [--alt] [--engine tree|bytecode]
//!     [--bench-engines] [--assert-faster]
//! ```
//!
//! `--alt` executes on the Table 10 alternate inputs (profiling always
//! uses the defaults), the scenario where live rates diverge from the
//! profile's predictions.
//!
//! Defaults: `G721_encode`, scale 0.25, O0, guard disabled (telemetry
//! only), bytecode engine.
//! `--adaptive` instantiates the tables through
//! `ReuseOutcome::make_adaptive_tables`, letting the guard resize or
//! bypass tables whose live collision rate exceeds the profile's
//! prediction.
//!
//! `--bench-engines` replaces the metrics report with a host wall-clock
//! comparison of the two execution engines: the full `run_pipeline` +
//! measurement cycle is timed per workload under each engine (workload
//! name `all` sweeps the seven main programs). Modelled cycles and
//! energy are engine-independent — only host speed differs. With
//! `--assert-faster` the process exits nonzero if the bytecode engine is
//! not faster overall, which CI runs on `G721_encode`.
//!
//! `--serve` replaces the report with the request-serving benchmark: a
//! `service::ReuseService` over the seven main workloads (or the named
//! one), swept over `--sweep-workers` worker counts (default: just
//! `--workers N`), each from a cold shared store with a warm second
//! round. Extra flags: `--shards S` (lock shards per table),
//! `--requests R` (requests per workload per batch),
//! `--assert-serve-speedup` (exit nonzero unless the sweep's highest
//! worker count beats its lowest on warm wall-clock — meaningful only on
//! a multi-CPU host — or any fingerprint diverges from the sequential
//! baseline).
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- --serve --workers 4
//! cargo run --release -p bench --bin metrics -- --serve \
//!     --sweep-workers 1,2,4 --shards 8 --assert-serve-speedup
//! ```

use bench::reports::EngineBenchRow;
use bench::runner::{execute, execute_with_tables, prepare_with, InputKind, PrepareOpts};
use bench::serve::{run_serve, ServeOpts};
use workloads::Workload;

/// Times one full prepare + execute cycle on `engine`, in milliseconds.
fn time_workload(w: &Workload, opt: vm::OptLevel, scale: f64, engine: vm::Engine) -> f64 {
    let opts = PrepareOpts {
        engine,
        ..PrepareOpts::default()
    };
    let start = std::time::Instant::now();
    let p = prepare_with(w, opt, scale, &opts);
    let m = execute(&p, w, InputKind::Default, scale);
    assert!(m.output_match, "{}: outputs diverged", w.name);
    start.elapsed().as_secs_f64() * 1e3
}

fn bench_engines(ws: &[Workload], opt: vm::OptLevel, scale: f64, assert_faster: bool) {
    let rows: Vec<EngineBenchRow> = ws
        .iter()
        .map(|w| EngineBenchRow {
            name: w.name,
            tree_ms: time_workload(w, opt, scale, vm::Engine::Tree),
            bytecode_ms: time_workload(w, opt, scale, vm::Engine::Bytecode),
        })
        .collect();
    println!("{}", bench::reports::engine_bench_json(scale, opt, &rows));
    if assert_faster {
        let tree: f64 = rows.iter().map(|r| r.tree_ms).sum();
        let bc: f64 = rows.iter().map(|r| r.bytecode_ms).sum();
        if bc >= tree {
            eprintln!("bytecode engine not faster: {bc:.1} ms vs tree {tree:.1} ms");
            std::process::exit(1);
        }
    }
}

/// Runs the serving benchmark and applies the optional CI gate.
fn serve_mode(ws: &[Workload], opts: &ServeOpts, sweep: &[usize], assert_speedup: bool) {
    let summary = run_serve(ws, opts, sweep);
    println!("{}", bench::reports::serve_report_json(&summary));
    if !summary.all_match() {
        eprintln!("serve: fingerprints diverged from the sequential baseline");
        std::process::exit(1);
    }
    if assert_speedup {
        let lo = summary
            .points
            .iter()
            .min_by_key(|p| p.workers)
            .expect("at least one sweep point");
        let hi = summary
            .points
            .iter()
            .max_by_key(|p| p.workers)
            .expect("at least one sweep point");
        if hi.workers == lo.workers {
            eprintln!("--assert-serve-speedup needs a sweep with at least two worker counts");
            std::process::exit(1);
        }
        if hi.warm.wall_seconds >= lo.warm.wall_seconds {
            eprintln!(
                "serve: {} workers not faster than {}: {:.4}s vs {:.4}s ({} cpus)",
                hi.workers, lo.workers, hi.warm.wall_seconds, lo.warm.wall_seconds, summary.cpus
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut name = "G721_encode".to_string();
    let mut name_set = false;
    let mut scale = 0.25f64;
    let mut opt = vm::OptLevel::O0;
    let mut adaptive = false;
    let mut input = InputKind::Default;
    let mut engine = vm::Engine::default();
    let mut bench_mode = false;
    let mut assert_faster = false;
    let mut serve = false;
    let mut workers = 4usize;
    let mut shards = 8usize;
    let mut requests_per_workload = 4usize;
    let mut sweep_workers: Option<Vec<usize>> = None;
    let mut assert_serve_speedup = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--serve" => serve = true,
            "--workers" => {
                i += 1;
                workers = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--workers needs a positive integer"));
            }
            "--shards" => {
                i += 1;
                shards = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--shards needs a positive integer"));
            }
            "--requests" => {
                i += 1;
                requests_per_workload = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--requests needs a positive integer"));
            }
            "--sweep-workers" => {
                i += 1;
                let list = argv
                    .get(i)
                    .map(|s| {
                        s.split(',')
                            .map(|t| {
                                t.trim()
                                    .parse::<usize>()
                                    .unwrap_or_else(|_| panic!("--sweep-workers: bad count {t:?}"))
                            })
                            .collect::<Vec<usize>>()
                    })
                    .filter(|l| !l.is_empty())
                    .unwrap_or_else(|| panic!("--sweep-workers needs a comma-separated list"));
                sweep_workers = Some(list);
            }
            "--assert-serve-speedup" => assert_serve_speedup = true,
            "--scale" => {
                i += 1;
                scale = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a number"));
            }
            "--opt" => {
                i += 1;
                opt = match argv.get(i).map(String::as_str) {
                    Some("o0") | Some("O0") => vm::OptLevel::O0,
                    Some("o3") | Some("O3") => vm::OptLevel::O3,
                    other => panic!("--opt needs o0 or o3, got {other:?}"),
                };
            }
            "--engine" => {
                i += 1;
                engine = match argv.get(i).map(String::as_str) {
                    Some("tree") => vm::Engine::Tree,
                    Some("bytecode") => vm::Engine::Bytecode,
                    other => panic!("--engine needs tree or bytecode, got {other:?}"),
                };
            }
            "--adaptive" => adaptive = true,
            "--alt" => input = InputKind::Alt,
            "--bench-engines" => bench_mode = true,
            "--assert-faster" => assert_faster = true,
            w if !w.starts_with('-') => {
                name = w.to_string();
                name_set = true;
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    if serve {
        let ws = if !name_set || name == "all" {
            // --serve defaults to the full seven-workload mix; a named
            // workload restricts the batch to it.
            workloads::main_seven()
        } else {
            vec![workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload {name}"))]
        };
        let opts = ServeOpts {
            scale,
            opt,
            shards,
            requests_per_workload,
            ..ServeOpts::default()
        };
        let sweep = sweep_workers.unwrap_or_else(|| vec![workers]);
        serve_mode(&ws, &opts, &sweep, assert_serve_speedup);
        return;
    }

    if bench_mode {
        let ws = if name == "all" {
            workloads::main_seven()
        } else {
            vec![workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload {name}"))]
        };
        bench_engines(&ws, opt, scale, assert_faster);
        return;
    }

    let w = workloads::by_name(&name).unwrap_or_else(|| {
        let names: Vec<&str> = workloads::all_eleven().iter().map(|w| w.name).collect();
        panic!("unknown workload {name}; one of: {}", names.join(", "))
    });
    let p = prepare_with(
        &w,
        opt,
        scale,
        &PrepareOpts {
            engine,
            ..PrepareOpts::default()
        },
    );
    let tables = if adaptive {
        p.outcome.try_make_adaptive_tables()
    } else {
        p.outcome.try_make_tables()
    };
    let tables = tables.unwrap_or_else(|e| {
        eprintln!("metrics: invalid table spec: {e}");
        std::process::exit(1);
    });
    let m = execute_with_tables(&p, &w, input, scale, tables);
    assert!(m.output_match, "{name}: outputs diverged");
    println!("{}", bench::reports::metrics_report_json(&p, &m, adaptive));
}
