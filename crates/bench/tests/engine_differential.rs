//! Engine equivalence contract: the flat bytecode engine must be
//! observationally identical to the tree-walker — same output text, same
//! return value, same modelled cycles/energy, same table statistics, and
//! same profiler counts — on every workload, at both opt levels, on both
//! input families. Host wall-clock is the only permitted difference.

use bench::runner::{prepare_with, InputKind, PrepareOpts, Prepared};
use vm::{CostModel, Engine, OptLevel, RunConfig};
use workloads::Workload;

const SCALE: f64 = 0.05;

/// Deterministic fingerprint of a profiler state (hash maps are sorted
/// so iteration order cannot leak in).
fn profile_fingerprint(p: &vm::ProfileData) -> String {
    let mut s = String::new();
    for seg in &p.segs {
        let mut distinct: Vec<(&[u64], u64)> =
            seg.distinct.iter().map(|(k, &c)| (&**k, c)).collect();
        distinct.sort();
        let mut within: Vec<(u32, u64)> = seg.within.iter().map(|(&k, &c)| (k, c)).collect();
        within.sort();
        s.push_str(&format!(
            "{} n={} dip={} body_cycles={} distinct={distinct:?} within={within:?}\n",
            seg.name,
            seg.n,
            seg.dip(),
            seg.body_cycles
        ));
    }
    s
}

/// Deterministic fingerprint of everything a run observes.
fn outcome_fingerprint(o: &vm::Outcome) -> String {
    let stats: Vec<_> = o.tables.iter().map(|t| *t.stats()).collect();
    format!(
        "out={:?} ret={} cycles={} seconds={} energy={} table_words={} \
         calls={:?} loops={:?} branches={:?} tables={stats:?} profile={}",
        o.output_text(),
        o.ret,
        o.cycles,
        o.seconds.to_bits(),
        o.energy_joules.to_bits(),
        o.table_words,
        o.func_calls,
        o.loop_counts,
        o.branch_counts,
        o.profile
            .as_ref()
            .map(profile_fingerprint)
            .unwrap_or_default()
    )
}

fn run_engine(p: &Prepared, module: &vm::Module, input: &[i64], engine: Engine) -> vm::Outcome {
    vm::run(
        module,
        RunConfig {
            cost: CostModel::for_level(p.opt),
            input: input.to_vec(),
            tables: p.outcome.make_tables(),
            engine,
            ..RunConfig::default()
        },
    )
    .unwrap_or_else(|t| panic!("{} ({engine}): trapped: {t}", p.name))
}

/// Pipeline + baseline + memoized runs for one (workload, opt): both
/// engines must agree at every observation point.
fn check_workload(w: &Workload, opt: OptLevel) {
    let prep = |engine| {
        prepare_with(
            w,
            opt,
            SCALE,
            &PrepareOpts {
                engine,
                ..PrepareOpts::default()
            },
        )
    };
    let pt = prep(Engine::Tree);
    let pb = prep(Engine::Bytecode);

    // The profiling runs inside the pipeline must have produced the same
    // value-set profiles, hence the same decisions and table plan.
    assert_eq!(
        profile_fingerprint(&pt.outcome.profile),
        profile_fingerprint(&pb.outcome.profile),
        "{} {opt:?}: pipeline profiles diverged across engines",
        w.name
    );
    assert_eq!(
        pt.outcome.report.transformed, pb.outcome.report.transformed,
        "{} {opt:?}: decision counts diverged",
        w.name
    );

    for kind in [InputKind::Default, InputKind::Alt] {
        let input = match kind {
            InputKind::Default => (w.default_input)(SCALE),
            InputKind::Alt => (w.alt_input)(SCALE),
        };
        for (label, module) in [("base", &pb.base_module), ("memo", &pb.memo_module)] {
            let tree = run_engine(&pb, module, &input, Engine::Tree);
            let bc = run_engine(&pb, module, &input, Engine::Bytecode);
            assert_eq!(
                outcome_fingerprint(&tree),
                outcome_fingerprint(&bc),
                "{} {opt:?} {kind:?} {label}: engines diverged",
                w.name
            );
        }
    }
}

/// Green-promotion parity (§8g): plan with dependency validation, then
/// chain a cold run (default inputs, fresh tables) into a warm run
/// (alternate inputs, reusing the populated tables). The warm run probes
/// dependency-fingerprinted entries recorded cold — the configuration
/// where try-mark-green promotes entries — and both engines must agree
/// on every observable of both runs, green/stale statistics included.
#[test]
fn engines_agree_on_green_promoted_hits() {
    let ws = [
        workloads::gnugo::gnugo(),
        workloads::unepic::unepic(),
        workloads::g721::encode(),
    ];
    let green_total = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in &ws {
            let green_total = &green_total;
            s.spawn(move || {
                let p = prepare_with(
                    w,
                    OptLevel::O0,
                    SCALE,
                    &PrepareOpts {
                        validate: true,
                        ..PrepareOpts::default()
                    },
                );
                let cold_input = (w.default_input)(SCALE);
                let warm_input = (w.alt_input)(SCALE);
                let chain = |engine| {
                    let cold = run_engine(&p, &p.memo_module, &cold_input, engine);
                    let warm = vm::run(
                        &p.memo_module,
                        RunConfig {
                            cost: CostModel::for_level(p.opt),
                            input: warm_input.clone(),
                            tables: cold.tables.clone(),
                            engine,
                            ..RunConfig::default()
                        },
                    )
                    .unwrap_or_else(|t| panic!("{} ({engine}): warm trapped: {t}", p.name));
                    (cold, warm)
                };
                let (tree_cold, tree_warm) = chain(Engine::Tree);
                let (bc_cold, bc_warm) = chain(Engine::Bytecode);
                assert_eq!(
                    outcome_fingerprint(&tree_cold),
                    outcome_fingerprint(&bc_cold),
                    "{}: engines diverged on the cold validated run",
                    w.name
                );
                assert_eq!(
                    outcome_fingerprint(&tree_warm),
                    outcome_fingerprint(&bc_warm),
                    "{}: engines diverged on the green-promoted warm run",
                    w.name
                );
                let green: u64 = tree_cold
                    .tables
                    .iter()
                    .chain(&tree_warm.tables)
                    .map(|t| t.stats().green_hits)
                    .sum();
                green_total.fetch_add(green, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    assert!(
        green_total.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "no workload promoted a single entry green"
    );
}

#[test]
fn engines_agree_on_all_workloads_both_opt_levels() {
    let ws = [
        workloads::g721::encode(),
        workloads::g721::decode(),
        workloads::mpeg2::encode(),
        workloads::rasta::rasta(),
        workloads::unepic::unepic(),
        workloads::gnugo::gnugo(),
    ];
    std::thread::scope(|s| {
        for w in &ws {
            s.spawn(move || {
                for opt in [OptLevel::O0, OptLevel::O3] {
                    check_workload(w, opt);
                }
            });
        }
    });
}
