//! Engine equivalence contract: every execution tier — the tree-walker
//! (the executable spec), the flat bytecode engine, and the
//! profile-guided specialized tier — must be observationally identical:
//! same output text, same return value, same modelled cycles/energy,
//! same table statistics, and same profiler counts. Host wall-clock is
//! the only permitted difference. The matrix covers all seven main
//! workloads × both opt levels × both input families × validation
//! on/off × every engine pair.

use bench::runner::{prepare_with, InputKind, PrepareOpts, Prepared};
use vm::{CostModel, Engine, OptLevel, RunConfig};
use workloads::Workload;

const SCALE: f64 = 0.05;

const ENGINES: [Engine; 3] = [Engine::Tree, Engine::Bytecode, Engine::Specialized];

/// Deterministic fingerprint of a profiler state (hash maps are sorted
/// so iteration order cannot leak in).
fn profile_fingerprint(p: &vm::ProfileData) -> String {
    let mut s = String::new();
    for seg in &p.segs {
        let mut distinct: Vec<(&[u64], u64)> =
            seg.distinct.iter().map(|(k, &c)| (&**k, c)).collect();
        distinct.sort();
        let mut within: Vec<(u32, u64)> = seg.within.iter().map(|(&k, &c)| (k, c)).collect();
        within.sort();
        s.push_str(&format!(
            "{} n={} dip={} body_cycles={} distinct={distinct:?} within={within:?}\n",
            seg.name,
            seg.n,
            seg.dip(),
            seg.body_cycles
        ));
    }
    s
}

/// Deterministic fingerprint of everything a run observes. The
/// host-side observability fields (`Outcome::trace`, `Outcome::spec`)
/// are deliberately excluded: they name the engine, not the program.
fn outcome_fingerprint(o: &vm::Outcome) -> String {
    let stats: Vec<_> = o.tables.iter().map(|t| *t.stats()).collect();
    format!(
        "out={:?} ret={} cycles={} seconds={} energy={} table_words={} \
         calls={:?} loops={:?} branches={:?} tables={stats:?} profile={}",
        o.output_text(),
        o.ret,
        o.cycles,
        o.seconds.to_bits(),
        o.energy_joules.to_bits(),
        o.table_words,
        o.func_calls,
        o.loop_counts,
        o.branch_counts,
        o.profile
            .as_ref()
            .map(profile_fingerprint)
            .unwrap_or_default()
    )
}

fn run_engine(p: &Prepared, module: &vm::Module, input: &[i64], engine: Engine) -> vm::Outcome {
    vm::run(
        module,
        RunConfig {
            cost: CostModel::for_level(p.opt),
            input: input.to_vec(),
            tables: p.outcome.make_tables(),
            engine,
            spec_plan: p.spec_plan.clone(),
            ..RunConfig::default()
        },
    )
    .unwrap_or_else(|t| panic!("{} ({engine}): trapped: {t}", p.name))
}

/// Pipeline + baseline + memoized runs for one (workload, opt, validate)
/// cell: all three engines must agree pairwise at every observation
/// point. Returns the specialized guard probes observed, so the caller
/// can assert the tier actually specialized something somewhere.
fn check_workload(w: &Workload, opt: OptLevel, validate: bool) -> u64 {
    let prep = |engine| {
        prepare_with(
            w,
            opt,
            SCALE,
            &PrepareOpts {
                engine,
                validate,
                ..PrepareOpts::default()
            },
        )
    };
    let preps: Vec<Prepared> = ENGINES.iter().map(|&e| prep(e)).collect();

    // The profiling runs inside the pipeline must have produced the same
    // value-set profiles, hence the same decisions and table plan —
    // pairwise across every engine.
    for pair in preps.windows(2) {
        assert_eq!(
            profile_fingerprint(&pair[0].outcome.profile),
            profile_fingerprint(&pair[1].outcome.profile),
            "{} {opt:?} validate={validate} ({}/{}): pipeline profiles diverged",
            w.name,
            pair[0].engine,
            pair[1].engine,
        );
        assert_eq!(
            pair[0].outcome.report.transformed, pair[1].outcome.report.transformed,
            "{} {opt:?} validate={validate}: decision counts diverged",
            w.name
        );
    }

    // The specialized prepare carries the mined plan; all engines run
    // the same modules with it (non-specialized engines ignore it).
    let ps = &preps[2];
    let mut guard_probes = 0u64;
    for kind in [InputKind::Default, InputKind::Alt] {
        let input = match kind {
            InputKind::Default => (w.default_input)(SCALE),
            InputKind::Alt => (w.alt_input)(SCALE),
        };
        for (label, module) in [("base", &ps.base_module), ("memo", &ps.memo_module)] {
            let outs: Vec<vm::Outcome> = ENGINES
                .iter()
                .map(|&e| run_engine(ps, module, &input, e))
                .collect();
            for (i, a) in outs.iter().enumerate() {
                for b in &outs[i + 1..] {
                    assert_eq!(
                        outcome_fingerprint(a),
                        outcome_fingerprint(b),
                        "{} {opt:?} {kind:?} validate={validate} {label}: engines diverged",
                        w.name
                    );
                }
            }
            guard_probes += outs[2].spec.map(|s| s.guard_probes).unwrap_or(0);
        }
    }
    guard_probes
}

/// Green-promotion parity (§8g): plan with dependency validation, then
/// chain a cold run (default inputs, fresh tables) into a warm run
/// (alternate inputs, reusing the populated tables). The warm run probes
/// dependency-fingerprinted entries recorded cold — the configuration
/// where try-mark-green promotes entries — and all three engines must
/// agree on every observable of both runs, green/stale statistics
/// included.
#[test]
fn engines_agree_on_green_promoted_hits() {
    let ws = [
        workloads::gnugo::gnugo(),
        workloads::unepic::unepic(),
        workloads::g721::encode(),
    ];
    let green_total = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in &ws {
            let green_total = &green_total;
            s.spawn(move || {
                let p = prepare_with(
                    w,
                    OptLevel::O0,
                    SCALE,
                    &PrepareOpts {
                        validate: true,
                        engine: Engine::Specialized,
                        ..PrepareOpts::default()
                    },
                );
                let cold_input = (w.default_input)(SCALE);
                let warm_input = (w.alt_input)(SCALE);
                let chain = |engine| {
                    let cold = run_engine(&p, &p.memo_module, &cold_input, engine);
                    let warm = vm::run(
                        &p.memo_module,
                        RunConfig {
                            cost: CostModel::for_level(p.opt),
                            input: warm_input.clone(),
                            tables: cold.tables.clone(),
                            engine,
                            spec_plan: p.spec_plan.clone(),
                            ..RunConfig::default()
                        },
                    )
                    .unwrap_or_else(|t| panic!("{} ({engine}): warm trapped: {t}", p.name));
                    (cold, warm)
                };
                let chains: Vec<(vm::Outcome, vm::Outcome)> =
                    ENGINES.iter().map(|&e| chain(e)).collect();
                for pair in chains.windows(2) {
                    assert_eq!(
                        outcome_fingerprint(&pair[0].0),
                        outcome_fingerprint(&pair[1].0),
                        "{}: engines diverged on the cold validated run",
                        w.name
                    );
                    assert_eq!(
                        outcome_fingerprint(&pair[0].1),
                        outcome_fingerprint(&pair[1].1),
                        "{}: engines diverged on the green-promoted warm run",
                        w.name
                    );
                }
                let (tree_cold, tree_warm) = &chains[0];
                let green: u64 = tree_cold
                    .tables
                    .iter()
                    .chain(&tree_warm.tables)
                    .map(|t| t.stats().green_hits)
                    .sum();
                green_total.fetch_add(green, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    assert!(
        green_total.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "no workload promoted a single entry green"
    );
}

#[test]
fn engines_agree_on_all_workloads_both_opt_levels() {
    let ws = [
        workloads::g721::encode(),
        workloads::g721::decode(),
        workloads::mpeg2::encode(),
        workloads::mpeg2::decode(),
        workloads::rasta::rasta(),
        workloads::unepic::unepic(),
        workloads::gnugo::gnugo(),
    ];
    let guard_probes = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in &ws {
            let guard_probes = &guard_probes;
            s.spawn(move || {
                for opt in [OptLevel::O0, OptLevel::O3] {
                    for validate in [false, true] {
                        let probes = check_workload(w, opt, validate);
                        guard_probes.fetch_add(probes, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    // The matrix must exercise the specialized tier for real: somewhere
    // a guard was actually evaluated (otherwise every specialized run
    // degenerated to generic bytecode and the equivalence above proved
    // nothing about clones or deopts).
    assert!(
        guard_probes.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "no specialized run ever probed a guard — plans never mined a dominant key"
    );
}
