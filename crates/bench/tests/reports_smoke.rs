//! Smoke tests for the table generators at tiny scale: rows must be
//! well-formed and the headline structural result — transformed-segment
//! counts matching the paper — must hold. (Full-scale fidelity lives in
//! EXPERIMENTS.md; the expensive sweeps are exercised by the binaries.)

use bench::reports;

const SCALE: f64 = 0.02;

#[test]
fn table4_transformed_counts_match_paper() {
    let rows = reports::table4(SCALE);
    assert_eq!(rows.len(), 7);
    for row in &rows {
        assert_eq!(row.len(), reports::TABLE4_HEADERS.len(), "{row:?}");
        // Our transformed count (col 6) equals the paper's (col 7) for
        // every program — the reproduction's headline structural match.
        assert_eq!(row[6], row[7], "{row:?}");
    }
}

#[test]
fn table6_has_eleven_rows_plus_mean() {
    let rows = reports::table6_or_7(vm::OptLevel::O0, SCALE);
    assert_eq!(rows.len(), 12);
    assert_eq!(rows[11][0], "Harmonic Mean");
    for row in &rows[..11] {
        let speedup: f64 = row[3].parse().expect("speedup");
        assert!(speedup > 0.5 && speedup < 30.0, "{row:?}");
    }
    let hm: f64 = rows[11][3].parse().expect("harmonic mean");
    assert!(hm > 1.0, "the scheme wins overall: {hm}");
}

/// The N-engine `--bench-engines` report round-trips through the strict
/// `bench::json` parser: the `engine_ms`/`speedup_vs_tree` objects carry
/// one key per measured engine, and the legacy two-engine keys
/// (`tree_ms`, `bytecode_ms`, `speedup`, `total_*`, `speedup_wall`)
/// survive verbatim whenever both of those engines were measured.
#[test]
fn engine_bench_json_round_trips_n_engines() {
    use reports::EngineBenchRow;
    let rows = vec![
        EngineBenchRow {
            name: "G721_encode",
            engine_ms: vec![
                (vm::Engine::Tree, 300.0),
                (vm::Engine::Bytecode, 200.0),
                (vm::Engine::Specialized, 150.0),
            ],
        },
        EngineBenchRow {
            name: "RASTA",
            engine_ms: vec![
                (vm::Engine::Tree, 90.0),
                (vm::Engine::Bytecode, 60.0),
                (vm::Engine::Specialized, 45.0),
            ],
        },
    ];
    let report = reports::engine_bench_json(0.25, vm::OptLevel::O0, &rows);
    let parsed = bench::json::parse(&report).expect("strict parse");

    // N-engine totals: one key per engine, summed across workloads.
    let totals = parsed.get("total_engine_ms").expect("total_engine_ms");
    assert_eq!(totals.get("tree").and_then(|v| v.as_f64()), Some(390.0));
    assert_eq!(totals.get("bytecode").and_then(|v| v.as_f64()), Some(260.0));
    assert_eq!(
        totals.get("specialized").and_then(|v| v.as_f64()),
        Some(195.0)
    );
    let wall = parsed.get("speedup_wall_vs_tree").expect("wall speedups");
    assert_eq!(wall.get("bytecode").and_then(|v| v.as_f64()), Some(1.5));
    assert_eq!(wall.get("specialized").and_then(|v| v.as_f64()), Some(2.0));

    // Legacy two-engine schema preserved verbatim.
    assert_eq!(
        parsed.get("total_tree_ms").and_then(|v| v.as_f64()),
        Some(390.0)
    );
    assert_eq!(
        parsed.get("total_bytecode_ms").and_then(|v| v.as_f64()),
        Some(260.0)
    );
    assert_eq!(
        parsed.get("speedup_wall").and_then(|v| v.as_f64()),
        Some(1.5)
    );

    // Per-workload rows carry both shapes too.
    let ws = parsed
        .get("workloads")
        .and_then(|v| v.as_array())
        .expect("workloads");
    assert_eq!(ws.len(), 2);
    let first = &ws[0];
    assert_eq!(
        first.get("name").and_then(|v| v.as_str()),
        Some("G721_encode")
    );
    assert_eq!(first.get("tree_ms").and_then(|v| v.as_f64()), Some(300.0));
    assert_eq!(first.get("speedup").and_then(|v| v.as_f64()), Some(1.5));
    assert_eq!(
        first
            .get("engine_ms")
            .and_then(|v| v.get("specialized"))
            .and_then(|v| v.as_f64()),
        Some(150.0)
    );
    assert_eq!(
        first
            .get("speedup_vs_tree")
            .and_then(|v| v.get("specialized"))
            .and_then(|v| v.as_f64()),
        Some(2.0)
    );
}

/// A tree-only measurement still renders parseable JSON: the legacy
/// two-engine keys are simply absent rather than invalid.
#[test]
fn engine_bench_json_single_engine_is_valid() {
    use reports::EngineBenchRow;
    let rows = vec![EngineBenchRow {
        name: "UNEPIC",
        engine_ms: vec![(vm::Engine::Tree, 42.0)],
    }];
    let report = reports::engine_bench_json(0.1, vm::OptLevel::O3, &rows);
    let parsed = bench::json::parse(&report).expect("strict parse");
    assert!(parsed.get("speedup_wall").is_none());
    assert!(parsed.get("total_bytecode_ms").is_none());
    let totals = parsed.get("total_engine_ms").expect("total_engine_ms");
    assert_eq!(totals.get("tree").and_then(|v| v.as_f64()), Some(42.0));
    let row = &parsed.get("workloads").and_then(|v| v.as_array()).unwrap()[0];
    assert!(row.get("tree_ms").is_none() || row.get("bytecode_ms").is_none());
    assert_eq!(
        row.get("engine_ms")
            .and_then(|v| v.get("tree"))
            .and_then(|v| v.as_f64()),
        Some(42.0)
    );
}
