//! Smoke tests for the table generators at tiny scale: rows must be
//! well-formed and the headline structural result — transformed-segment
//! counts matching the paper — must hold. (Full-scale fidelity lives in
//! EXPERIMENTS.md; the expensive sweeps are exercised by the binaries.)

use bench::reports;

const SCALE: f64 = 0.02;

#[test]
fn table4_transformed_counts_match_paper() {
    let rows = reports::table4(SCALE);
    assert_eq!(rows.len(), 7);
    for row in &rows {
        assert_eq!(row.len(), reports::TABLE4_HEADERS.len(), "{row:?}");
        // Our transformed count (col 6) equals the paper's (col 7) for
        // every program — the reproduction's headline structural match.
        assert_eq!(row[6], row[7], "{row:?}");
    }
}

#[test]
fn table6_has_eleven_rows_plus_mean() {
    let rows = reports::table6_or_7(vm::OptLevel::O0, SCALE);
    assert_eq!(rows.len(), 12);
    assert_eq!(rows[11][0], "Harmonic Mean");
    for row in &rows[..11] {
        let speedup: f64 = row[3].parse().expect("speedup");
        assert!(speedup > 0.5 && speedup < 30.0, "{row:?}");
    }
    let hm: f64 = rows[11][3].parse().expect("harmonic mean");
    assert!(hm > 1.0, "the scheme wins overall: {hm}");
}
