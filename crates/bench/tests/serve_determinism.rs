//! Determinism of the concurrent reuse service (DESIGN.md §8e).
//!
//! Runs the seven-workload request mix through the service at 1, 2 and 4
//! workers — cold and warm store each — and asserts every request's
//! outcome fingerprint equals the sequential private-table baseline's.
//! Program results must be store-independent; only throughput, cycles
//! and hit rates may differ. CI runs this in release alongside the
//! engine differential test (debug runs use a smaller scale).

use bench::serve::{run_serve, ServeOpts};

fn scale() -> f64 {
    if cfg!(debug_assertions) {
        0.03
    } else {
        0.1
    }
}

#[test]
fn seven_workload_mix_fingerprints_match_sequential_baseline() {
    let ws = workloads::main_seven();
    let opts = ServeOpts {
        scale: scale(),
        requests_per_workload: 2,
        ..ServeOpts::default()
    };
    let summary = run_serve(&ws, &opts, &[1, 2, 4]);
    assert_eq!(summary.requests, 14);
    let expected = summary.baseline.fingerprints();
    for p in &summary.points {
        assert_eq!(
            p.cold.fingerprints(),
            expected,
            "cold round diverged at {} workers",
            p.workers
        );
        assert_eq!(
            p.warm.fingerprints(),
            expected,
            "warm round diverged at {} workers",
            p.workers
        );
        assert!(p.matches_baseline);
        // Every request was served exactly once, by some worker.
        assert_eq!(p.cold.per_worker.iter().sum::<u64>(), 14);
        assert_eq!(p.warm.latency.count(), 14);
    }
}

#[test]
fn warm_shared_store_beats_private_tables_on_hit_rate() {
    let ws = workloads::main_seven();
    let opts = ServeOpts {
        scale: scale(),
        requests_per_workload: 2,
        ..ServeOpts::default()
    };
    let summary = run_serve(&ws, &opts, &[2]);
    assert!(summary.all_match());
    let point = &summary.points[0];
    // The baseline gives every request fresh private tables, so nothing
    // carries over between requests. The warm shared store has already
    // seen this exact batch once: every probe the cold round recorded is
    // now a hit, on top of the within-request reuse the baseline gets.
    assert!(
        point.warm.hit_ratio() > summary.baseline.hit_ratio(),
        "warm shared store {} <= private baseline {}",
        point.warm.hit_ratio(),
        summary.baseline.hit_ratio()
    );
    // And warming never lowers the hit rate relative to the same store
    // cold.
    assert!(point.warm.hit_ratio() >= point.cold.hit_ratio());
}
