//! Chaos/soak layer for the reuse service (DESIGN.md §8f).
//!
//! Sweeps seeded fault plans × worker counts over the seven-workload
//! request mix and holds the service to the §8f contract under every
//! plan: no panic escapes, the four terminal statuses account for the
//! whole batch, and every request that *executes* — even one that blew
//! its deadline or retried through poisoned shards and queue rejections
//! — fingerprints identically to the fault-free sequential baseline.
//! Faults may cost latency and hit ratio; they may never change an
//! answer.
//!
//! CI runs this in release (debug runs shrink the scale and the plan
//! sweep, like `serve_determinism`).

use std::sync::Arc;

use bench::serve::{build_service, executed_matches, run_serve, ServeOpts};
use memo_runtime::{FailPoint, FaultPlan};

fn scale() -> f64 {
    if cfg!(debug_assertions) {
        0.03
    } else {
        0.1
    }
}

/// Seeds for the plan sweep; each drives an independent SplitMix64
/// stream, so the batch meets a different fault interleaving per seed.
fn seeds() -> &'static [u64] {
    if cfg!(debug_assertions) {
        &[3, 77]
    } else {
        &[3, 13, 42, 77, 1001, 0xC0FFEE]
    }
}

#[test]
fn seeded_fault_plans_never_change_an_executed_answer() {
    let ws = workloads::main_seven();
    for &seed in seeds() {
        let opts = ServeOpts {
            scale: scale(),
            requests_per_workload: 2,
            fault_seed: Some(seed),
            fault_rate: 0.15,
            ..ServeOpts::default()
        };
        let summary = run_serve(&ws, &opts, &[1, 2, 4]);
        let expected = summary.baseline.fingerprints();
        for p in &summary.points {
            for (round, r) in [("cold", &p.cold), ("warm", &p.warm)] {
                assert!(
                    executed_matches(r, &expected),
                    "seed {seed}: {round} round at {} workers served a wrong answer",
                    p.workers
                );
                assert!(
                    r.accounting_holds(summary.requests),
                    "seed {seed}: {round} round at {} workers lost a request: \
                     statuses {:?} vs {} submitted",
                    p.workers,
                    r.status_counts(),
                    summary.requests
                );
                let faults = r.faults.as_ref().expect("plan installed");
                assert!(
                    faults.total_fired() > 0,
                    "seed {seed}: a 15% plan fired nothing over {} requests",
                    summary.requests
                );
            }
            assert!(p.matches_baseline && p.accounting_ok);
        }
    }
}

#[test]
fn deadlines_mark_requests_without_changing_their_outputs() {
    let ws = workloads::main_seven();
    let opts = ServeOpts {
        scale: scale(),
        requests_per_workload: 2,
        // Every workload costs far more than one modelled cycle, so the
        // whole batch blows this deadline — and must still compute the
        // baseline answers.
        deadline_cycles: Some(1),
        ..ServeOpts::default()
    };
    let summary = run_serve(&ws, &opts, &[2]);
    let expected = summary.baseline.fingerprints();
    let p = &summary.points[0];
    for r in [&p.cold, &p.warm] {
        let [ok, shed, deadline, exhausted] = r.status_counts();
        assert_eq!(ok, 0, "a one-cycle deadline let a request finish Ok");
        assert_eq!(shed + exhausted, 0, "no faults were installed");
        assert_eq!(deadline as usize, summary.requests);
        assert!(executed_matches(r, &expected));
        // The whole batch appears in the deadline-exceeded histogram.
        assert_eq!(
            r.latency_by_status[service::RequestStatus::DeadlineExceeded.index()].count(),
            summary.requests as u64
        );
    }
}

#[test]
fn watermark_shedding_accounts_for_every_request() {
    // One slow worker behind a tiny queue with a low high-watermark: the
    // producer must shed part of the batch, flip the stores to bypass,
    // and re-arm them once the queue drains — without touching any
    // executed answer.
    let ws = vec![workloads::unepic::unepic(), workloads::rasta::rasta()];
    let opts = ServeOpts {
        scale: scale(),
        requests_per_workload: 24,
        queue_capacity: 4,
        high_watermark: Some(2),
        ..ServeOpts::default()
    };
    let summary = run_serve(&ws, &opts, &[1]);
    let expected = summary.baseline.fingerprints();
    let p = &summary.points[0];
    let mut shed_total = 0;
    for r in [&p.cold, &p.warm] {
        assert!(executed_matches(r, &expected));
        assert!(r.accounting_holds(summary.requests));
        let [_, shed, _, _] = r.status_counts();
        shed_total += shed;
        assert_eq!(
            r.latency_by_status[service::RequestStatus::Shed.index()].count(),
            shed,
            "shed histogram disagrees with the shed count"
        );
    }
    assert!(
        shed_total > 0,
        "a 2-deep watermark over {} requests never shed",
        summary.requests
    );
    assert!(
        p.cold.degraded_flips + p.warm.degraded_flips > 0,
        "shedding never degraded the stores"
    );
}

#[test]
fn probe_miss_storm_only_costs_hit_ratio() {
    // Forcing *every* shared-store probe to miss makes the service
    // recompute everything — the worst cache weather possible. Outcomes
    // must not move. The plan is probe-only (rate 1.0 on the other fail
    // points would poison or reject the whole batch instead).
    let ws = workloads::main_seven();
    let opts = ServeOpts {
        scale: scale(),
        requests_per_workload: 2,
        ..ServeOpts::default()
    };
    let (mut svc, requests) = build_service(&ws, &opts, 2);
    let expected = svc.run_private_sequential(&requests).fingerprints();
    let plan = Arc::new(FaultPlan::new(9).with_rate(FailPoint::ProbeMiss, 1.0));
    svc.set_fault_plan(Some(plan.clone()));
    svc.reset_stores().expect("specs already built once");
    let cold = svc.run(&requests);
    let warm = svc.run(&requests);
    for r in [&cold, &warm] {
        assert!(executed_matches(r, &expected));
        assert!(r.accounting_holds(requests.len()));
        let [ok, ..] = r.status_counts();
        assert_eq!(ok as usize, requests.len(), "probe misses are not failures");
    }
    assert!(plan.fired(FailPoint::ProbeMiss) > 0);
    // With every probe skipped before it touches a shard, the warm round
    // cannot have registered a single store hit.
    assert_eq!(
        warm.store_delta.hits, 0,
        "a skipped probe still recorded a store hit"
    );
}
