//! Criterion benchmarks of the VM: raw interpretation throughput and the
//! real-time (host) cost of memoized vs. recomputed execution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memo_runtime::{MemoTable, TableSpec};
use minic::ast::{MemoOperand, MemoStmt, ScalarKind, Stmt, StmtKind};
use vm::RunConfig;

const QUAN: &str = "
    int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
    int quan(int val) {
        int i;
        for (i = 0; i < 15; i++)
            if (val < power2[i])
                break;
        return (i);
    }
    int main() {
        int s = 0;
        for (int k = 0; k < 2000; k++)
            s += quan(k % 50 * 11);
        print(s);
        return 0;
    }";

fn bench_interpret(c: &mut Criterion) {
    let checked = minic::compile(QUAN).unwrap();
    let module = vm::lower(&checked);
    c.bench_function("interpret_quan_2000_calls", |b| {
        b.iter(|| {
            let out = vm::run(&module, RunConfig::default()).unwrap();
            black_box(out.cycles)
        })
    });
}

fn bench_memoized(c: &mut Criterion) {
    // Same program with quan's body memoized by hand.
    let mut prog = minic::parse(QUAN).unwrap();
    let f = prog.func_mut("quan").unwrap();
    let body = std::mem::take(&mut f.body);
    f.body = minic::ast::Block::new(vec![Stmt::synth(StmtKind::Memo(MemoStmt {
        segment: "quan:body".into(),
        table: 0,
        slot: 0,
        inputs: vec![MemoOperand::scalar("val", ScalarKind::Int)],
        outputs: vec![],
        deps: vec![],
        ret: Some(ScalarKind::Int),
        body,
    }))]);
    let checked = minic::check(prog).unwrap();
    let module = vm::lower(&checked);
    let spec = TableSpec {
        slots: 1024,
        key_words: 1,
        out_words: vec![1],
    };
    c.bench_function("interpret_quan_memoized_2000_calls", |b| {
        b.iter(|| {
            let cfg = RunConfig {
                tables: vec![MemoTable::try_direct(&spec).expect("valid spec")],
                ..RunConfig::default()
            };
            let out = vm::run(&module, cfg).unwrap();
            black_box(out.cycles)
        })
    });
}

fn bench_lowering(c: &mut Criterion) {
    let w = workloads::gnugo::gnugo();
    let checked = w.checked();
    c.bench_function("lower_gnugo", |b| {
        b.iter(|| black_box(vm::lower(&checked).funcs.len()))
    });
}

fn bench_frontend(c: &mut Criterion) {
    let w = workloads::gnugo::gnugo();
    c.bench_function("parse_and_check_gnugo", |b| {
        b.iter(|| {
            let checked = minic::compile(black_box(&w.source)).unwrap();
            black_box(checked.info.next_node_id)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_interpret, bench_memoized, bench_lowering, bench_frontend
}
criterion_main!(benches);
