//! Criterion microbenchmarks of the memo-table runtime — the per-probe
//! costs that the paper's hashing-overhead analysis (`O`) models.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use memo_runtime::hash::jenkins_one_at_a_time;
use memo_runtime::{DirectTable, LruTable, MemoTable, MergedTable, TableSpec};

fn bench_direct(c: &mut Criterion) {
    let mut g = c.benchmark_group("direct_table");
    for &key_words in &[1usize, 4, 64] {
        let mut table = DirectTable::new(16_384, key_words, key_words);
        let keys: Vec<Vec<u64>> = (0..1024u64)
            .map(|i| (0..key_words as u64).map(|w| i * 31 + w).collect())
            .collect();
        let out: Vec<u64> = vec![7; key_words];
        for k in &keys {
            table.record(k, &out);
        }
        let mut buf = Vec::new();
        g.bench_with_input(BenchmarkId::new("hit", key_words), &key_words, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let k = &keys[i & 1023];
                i += 1;
                black_box(table.lookup(k, &mut buf))
            })
        });
        g.bench_with_input(BenchmarkId::new("record", key_words), &key_words, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                let k: Vec<u64> = (0..key_words as u64).map(|w| i * 131 + w).collect();
                i += 1;
                table.record(black_box(&k), &out);
            })
        });
    }
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_buffer");
    for &cap in &[1usize, 4, 16, 64] {
        let mut table = LruTable::new(cap, 1, 1);
        for i in 0..cap as u64 {
            table.record(&[i], &[i]);
        }
        let mut buf = Vec::new();
        g.bench_with_input(BenchmarkId::new("lookup", cap), &cap, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(table.lookup(&[i % cap as u64], &mut buf))
            })
        });
    }
    g.finish();
}

fn bench_merged(c: &mut Criterion) {
    let mut g = c.benchmark_group("merged_table");
    let mut table = MergedTable::new(8_192, 4, &[1; 8]);
    for i in 0..1024u64 {
        for slot in 0..8 {
            table.record(slot, &[i, i + 1, i + 2, i + 3], &[i]);
        }
    }
    let mut buf = Vec::new();
    g.bench_function("hit_8_slots", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let k = [i % 1024, i % 1024 + 1, i % 1024 + 2, i % 1024 + 3];
            let slot = (i % 8) as usize;
            i += 1;
            black_box(table.lookup(slot, &k, &mut buf))
        })
    });
    g.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("jenkins");
    for &len in &[8usize, 64, 512] {
        let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
        g.bench_with_input(BenchmarkId::new("one_at_a_time", len), &len, |b, _| {
            b.iter(|| black_box(jenkins_one_at_a_time(black_box(&data))))
        });
    }
    g.finish();
}

fn bench_uniform_handle(c: &mut Criterion) {
    // The enum dispatch the VM pays per probe.
    let spec = TableSpec {
        slots: 4096,
        key_words: 1,
        out_words: vec![1],
    };
    let mut table = MemoTable::try_direct(&spec).expect("valid spec");
    table.record(0, &[7], &[70]);
    let mut buf = Vec::new();
    c.bench_function("memo_table_enum_dispatch", |b| {
        b.iter(|| black_box(table.lookup(0, &[7], &mut buf)))
    });
}

criterion_group!(
    benches,
    bench_direct,
    bench_lru,
    bench_merged,
    bench_hash,
    bench_uniform_handle
);
criterion_main!(benches);
