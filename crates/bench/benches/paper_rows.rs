//! Criterion benches over the paper's headline comparisons, one group per
//! evaluation table: each measures the *host-time* cost of producing one
//! representative row, while the modelled (deterministic) numbers that
//! populate the tables come from the `table*`/`fig*` binaries.

use bench::runner::{execute, prepare, InputKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vm::OptLevel;

const SCALE: f64 = 0.02;

/// Table 6/7 row: baseline vs. memoized execution of UNEPIC.
fn bench_table6_row(c: &mut Criterion) {
    let w = workloads::unepic::unepic();
    let p = prepare(&w, OptLevel::O0, SCALE);
    let mut g = c.benchmark_group("table6_unepic");
    g.bench_function("baseline_and_memoized", |b| {
        b.iter(|| {
            let m = execute(&p, &w, InputKind::Default, SCALE);
            assert!(m.output_match);
            black_box(m.speedup())
        })
    });
    g.finish();
}

/// Table 5 row: hit ratio replay with a 64-entry LRU buffer.
fn bench_table5_row(c: &mut Criterion) {
    use bench::runner::{execute_with_tables, prepare_with, PrepareOpts};
    let w = workloads::rasta::rasta();
    let p = prepare_with(
        &w,
        OptLevel::O0,
        SCALE,
        &PrepareOpts {
            disable_merging: true,
            ..PrepareOpts::default()
        },
    );
    c.bench_function("table5_rasta_lru64_replay", |b| {
        b.iter(|| {
            let tables: Vec<memo_runtime::MemoTable> = p
                .outcome
                .specs
                .iter()
                .map(|s| {
                    memo_runtime::MemoTable::from(memo_runtime::LruTable::new(
                        64,
                        s.key_words,
                        s.out_words[0],
                    ))
                })
                .collect();
            let m = execute_with_tables(&p, &w, InputKind::Default, SCALE, tables);
            black_box(m.tables[0].stats().hit_ratio())
        })
    });
}

/// Table 10 row: alternate-input execution against the default-input
/// transformation.
fn bench_table10_row(c: &mut Criterion) {
    let w = workloads::g721::encode();
    let p = prepare(&w, OptLevel::O3, SCALE);
    c.bench_function("table10_g721_alt_inputs", |b| {
        b.iter(|| {
            let m = execute(&p, &w, InputKind::Alt, SCALE);
            assert!(m.output_match);
            black_box(m.speedup())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table6_row, bench_table5_row, bench_table10_row
}
criterion_main!(benches);
