//! Criterion benchmarks of the compiler scheme itself: whole-program
//! analyses and the full pipeline (the compile-time cost a user pays).

use analysis::Analyses;
use compreuse::{run_pipeline, PipelineConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_analyses(c: &mut Criterion) {
    let w = workloads::gnugo::gnugo();
    let checked = w.checked();
    c.bench_function("whole_program_analyses_gnugo", |b| {
        b.iter(|| {
            let an = Analyses::build(black_box(&checked));
            black_box(an.cg.callees.len())
        })
    });
}

fn bench_segment_analysis(c: &mut Criterion) {
    let w = workloads::g721::encode();
    let checked = w.checked();
    let an = Analyses::build(&checked);
    let segs = analysis::segments::enumerate(&checked);
    c.bench_function("seg_io_all_g721_segments", |b| {
        b.iter(|| {
            let mut ok = 0;
            for seg in &segs {
                if analysis::inout::seg_io(&checked, &an, seg).is_ok() {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let w = workloads::unepic::unepic();
    let program = minic::parse(&w.source).unwrap();
    let input = (w.default_input)(0.02);
    c.bench_function("full_pipeline_unepic_small", |b| {
        b.iter(|| {
            let outcome = run_pipeline(
                black_box(&program),
                &PipelineConfig {
                    profile_input: input.clone(),
                    ..PipelineConfig::default()
                },
            )
            .unwrap();
            black_box(outcome.report.transformed)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analyses, bench_segment_analysis, bench_full_pipeline
}
criterion_main!(benches);
