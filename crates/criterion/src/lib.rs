//! A minimal, dependency-free micro-benchmark harness exposing the subset
//! of the `criterion` crate API this workspace's `benches/` use, so
//! `cargo bench` works fully offline.
//!
//! Compared to upstream criterion there is no warm-up calibration, no
//! outlier analysis, and no HTML report: each benchmark runs its closure
//! `sample_size` times and prints the mean wall-clock time per iteration.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (ids print as `group/name/param`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.criterion.sample_size, f);
        self
    }

    /// Runs a parameterised benchmark; the closure receives `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalises reports here; a no-op for us).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut s = function.into();
        let _ = write!(s, "/{parameter}");
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code to
/// time.
#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    total_nanos: u128,
    timed: bool,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total_nanos = start.elapsed().as_nanos();
        self.timed = true;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters: usize, mut f: F) {
    let mut b = Bencher {
        iters,
        total_nanos: 0,
        timed: false,
    };
    f(&mut b);
    if b.timed {
        let per_iter = b.total_nanos / iters.max(1) as u128;
        println!("{name}: {per_iter} ns/iter ({iters} iterations)");
    } else {
        println!("{name}: no timing loop executed");
    }
}

/// Declares a benchmark group function. Supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the configured form
/// `criterion_group! { name = benches; config = ...; targets = f1, f2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
