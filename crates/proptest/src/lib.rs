//! A minimal, dependency-free property-testing harness exposing the subset
//! of the `proptest` crate API this workspace uses. It exists so the
//! workspace builds and tests fully offline: same `proptest::prelude::*`
//! imports, same `proptest!` / `prop_assert!` macros, same `Strategy`
//! combinators — backed by a deterministic SplitMix64 generator instead of
//! a shrinking runner.
//!
//! Differences from upstream proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case index and the seed,
//!   which is enough to reproduce deterministically (the seed is fixed).
//! - **No persistence.** `*.proptest-regressions` files are ignored.
//! - **Uniform `prop_oneof!`.** Arms are picked uniformly (upstream
//!   supports weights; this workspace never uses them).

#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration, RNG, and failure type.

    use std::fmt;

    /// Deterministic SplitMix64 generator; every test case derives its own
    /// stream from a fixed seed plus the case index.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// A generator for case `case` of a run seeded with `seed`.
        pub fn for_case(seed: u64, case: u32) -> Self {
            let mut rng = TestRng(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            // Warm up so adjacent case indices diverge immediately.
            rng.next_u64();
            rng
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (n > 0; modulo bias is irrelevant at
        /// test-generation quality).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// A failed property check (carried by `prop_assert!` early returns).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The fixed base seed for all properties (deterministic runs).
    pub const BASE_SEED: u64 = 0x5EED_CC04_D1D6_1B04;
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy simply produces a value from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps an inner strategy into a deeper one. Nesting is
        /// bounded by `depth` by construction (`_desired_size` and
        /// `_expected_branch_size` are accepted for API compatibility and
        /// ignored).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(level).boxed();
                level = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            level
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, reference-counted strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    #[derive(Debug)]
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let span = self.end as i128 - lo;
                    assert!(span > 0, "empty range strategy");
                    (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let span = *self.end() as i128 - lo + 1;
                    assert!(span > 0, "empty range strategy");
                    (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/a, B/b)
        (A/a, B/b, C/c)
        (A/a, B/b, C/c, D/d)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s of values from `elem` with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.max_excl.saturating_sub(self.len.min).max(1);
            let n = self.len.min + rng.below(span as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform boolean strategy (see [`ANY`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Uniformly picks one of the listed strategies each case. All arms must
/// share a value type; weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("{} (`{:?}` != `{:?}`)", format!($($fmt)+), l, r),
                ),
            );
        }
    }};
}

/// Fails the current test case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Declares property tests. Mirrors upstream's surface for the forms used
/// in this workspace: an optional `#![proptest_config(...)]` header and
/// `fn name(pat in strategy, ...) { body }` items with outer attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    $crate::test_runner::BASE_SEED,
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {} of {} failed (seed {:#x}): {}",
                        case, config.cases, $crate::test_runner::BASE_SEED, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
