//! Property tests: pretty-printing is a fixed point and preserves structure.
//!
//! Strategy: generate random well-formed expressions/programs over a fixed
//! set of integer variables, print them, re-parse, and require the second
//! print to be byte-identical (print∘parse∘print = print). On checked
//! programs we additionally require sema to accept the reprinted program
//! with identical frame sizes.

use minic::ast::{BinOp, Expr, ExprKind, IncDec, UnOp};
use minic::pretty::{print_expr, print_program};
use minic::{check, parse};
use proptest::prelude::*;

/// Random expression over variables a, b, c (int-typed, all lvalues).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| Expr::synth(ExprKind::IntLit(v))),
        prop_oneof![Just("a"), Just("b"), Just("c")]
            .prop_map(|n| Expr::synth(ExprKind::Var(n.to_string()))),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        let bin_op = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Rem),
            Just(BinOp::Shl),
            Just(BinOp::Shr),
            Just(BinOp::BitAnd),
            Just(BinOp::BitOr),
            Just(BinOp::BitXor),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::LogAnd),
            Just(BinOp::LogOr),
        ];
        let un_op = prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)];
        prop_oneof![
            (bin_op, inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Expr::synth(ExprKind::Binary(op, Box::new(a), Box::new(b)))),
            (un_op, inner.clone())
                .prop_map(|(op, a)| Expr::synth(ExprKind::Unary(op, Box::new(a)))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::synth(
                ExprKind::Ternary(Box::new(c), Box::new(t), Box::new(f))
            )),
            prop_oneof![
                Just(IncDec::PreInc),
                Just(IncDec::PreDec),
                Just(IncDec::PostInc),
                Just(IncDec::PostDec)
            ]
            .prop_map(|op| {
                Expr::synth(ExprKind::IncDec(
                    op,
                    Box::new(Expr::synth(ExprKind::Var("a".into()))),
                ))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print(e) must re-parse, and printing the re-parsed expression must
    /// reproduce the same text (associativity/precedence round-trip).
    #[test]
    fn expr_print_parse_print_is_identity(e in arb_expr()) {
        let text1 = print_expr(&e);
        let src = format!("int main() {{ int a; int b; int c; return {text1}; }}");
        let prog = parse(&src).expect("printed expression must re-parse");
        let reparsed = match &prog.funcs[0].body.stmts[3].kind {
            minic::ast::StmtKind::Return(Some(e)) => e.clone(),
            other => panic!("expected return, got {other:?}"),
        };
        let text2 = print_expr(&reparsed);
        prop_assert_eq!(text1, text2);
    }

    /// Checked programs survive a full print → parse → check cycle with the
    /// same layout.
    #[test]
    fn program_roundtrip_preserves_check(e in arb_expr()) {
        let src = format!(
            "int g = 7;\nint main() {{ int a = 1; int b = 2; int c = 3; return {}; }}",
            print_expr(&e)
        );
        // Some generated expressions divide by zero only at runtime; sema
        // accepts them. Every generated expression must type-check.
        let prog = parse(&src).expect("parse");
        let checked = check(prog).expect("generated expressions are well-typed");
        let printed = print_program(&checked.program);
        let prog2 = parse(&printed).expect("printed program re-parses");
        let checked2 = check(prog2).expect("printed program re-checks");
        prop_assert_eq!(checked.info.frames[0].size, checked2.info.frames[0].size);
        prop_assert_eq!(checked.info.global_region, checked2.info.global_region);
    }
}
