//! Semantic-checker integration tests.

use minic::ast::{NodeId, Type};
use minic::sema::{Builtin, Res};
use minic::{check, compile, parse};

fn compile_err(src: &str) -> String {
    match compile(src) {
        Ok(_) => panic!("expected a sema error for:\n{src}"),
        Err(e) => e,
    }
}

#[test]
fn checks_quan() {
    let checked = compile(
        "int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
         int quan(int val) {
             int i;
             for (i = 0; i < 15; i++)
                 if (val < power2[i])
                     break;
             return i;
         }",
    )
    .expect("quan is well-typed");
    assert_eq!(checked.info.globals.len(), 1);
    let g = &checked.info.globals[0];
    assert_eq!(g.size, 15);
    assert_eq!(g.addr, 1, "cell 0 is reserved");
    let init = g.init.as_ref().expect("initializer");
    assert_eq!(init.len(), 15);
    assert_eq!(checked.info.global_region, 16);
}

#[test]
fn node_ids_are_unique_after_check() {
    let checked = compile(
        "int f(int a) { return a + a * a; }
         int main() { return f(3) + f(4); }",
    )
    .unwrap();
    let mut seen = std::collections::HashSet::new();
    for f in &checked.program.funcs {
        minic::visit::for_each_stmt(&f.body, |s| {
            assert_ne!(s.id, NodeId::DUMMY);
            assert!(seen.insert(s.id), "duplicate stmt id {}", s.id);
        });
        minic::visit::for_each_expr(&f.body, |e| {
            assert_ne!(e.id, NodeId::DUMMY);
            assert!(seen.insert(e.id), "duplicate expr id {}", e.id);
        });
    }
}

#[test]
fn every_expr_has_a_type() {
    let checked = compile(
        "struct pt { int x; float y; };
         struct pt p;
         int main() {
             float f = 1.5;
             p.x = 3;
             p.y = f + p.x;
             return (int)p.y;
         }",
    )
    .unwrap();
    for f in &checked.program.funcs {
        minic::visit::for_each_expr(&f.body, |e| {
            assert!(
                checked.info.expr_types.contains_key(&e.id),
                "missing type for {:?}",
                e.kind
            );
        });
    }
}

#[test]
fn frame_layout_covers_params_and_locals() {
    let checked = compile(
        "int f(int a, float b) {
             int x;
             int buf[4];
             float y = b;
             return a + x + (int)y + buf[0];
         }",
    )
    .unwrap();
    let frame = &checked.info.frames[0];
    assert_eq!(frame.param_offsets, vec![0, 1]);
    // a, b, x, buf[4], y = 2 + 1 + 4 + 1 = 8 cells.
    assert_eq!(frame.size, 8);
    assert_eq!(frame.decl_offsets.len(), 3);
}

#[test]
fn struct_layout_offsets() {
    let checked = compile(
        "struct inner { int a; int b; };
         struct outer { int x; struct inner mid; float z; };
         struct outer o;
         int main() { return o.mid.b; }",
    )
    .unwrap();
    let outer = &checked.info.structs["outer"];
    assert_eq!(outer.size, 4);
    assert_eq!(outer.field("x").unwrap().2, 0);
    assert_eq!(outer.field("mid").unwrap().2, 1);
    assert_eq!(outer.field("z").unwrap().2, 3);
}

#[test]
fn shadowing_resolves_to_innermost() {
    let checked = compile(
        "int x = 10;
         int main() {
             int x = 1;
             { int x = 2; x = 3; }
             return x;
         }",
    )
    .unwrap();
    // Count distinct slot resolutions; innermost assignment must hit the
    // innermost slot.
    let slots: Vec<_> = checked
        .info
        .res
        .values()
        .filter_map(|r| match r {
            Res::Slot(s) => Some(*s),
            _ => None,
        })
        .collect();
    assert!(slots.contains(&0) && slots.contains(&1));
}

#[test]
fn builtins_resolve() {
    let checked = compile(
        "int main() {
             int v = input();
             while (!eof()) { v = input(); }
             print(v);
             assert(v >= 0 || v < 0);
             return 0;
         }",
    )
    .unwrap();
    let builtins: std::collections::HashSet<_> = checked
        .info
        .res
        .values()
        .filter_map(|r| match r {
            Res::Builtin(b) => Some(*b),
            _ => None,
        })
        .collect();
    assert!(builtins.contains(&Builtin::Input));
    assert!(builtins.contains(&Builtin::Eof));
    assert!(builtins.contains(&Builtin::Print));
    assert!(builtins.contains(&Builtin::Assert));
}

#[test]
fn user_function_shadows_builtin() {
    let checked = compile(
        "int print(int x) { return x; }
         int main() { return print(3); }",
    )
    .unwrap();
    assert!(checked.info.res.values().any(|r| matches!(r, Res::Func(_))));
}

#[test]
fn function_pointer_assignment_and_call() {
    let checked = compile(
        "int add(int a, int b) { return a + b; }
         int sub(int a, int b) { return a - b; }
         int main() {
             int (*op)(int, int);
             op = add;
             op = sub;
             return op(5, 2) + (*op)(1, 1);
         }",
    )
    .unwrap();
    assert_eq!(checked.program.funcs.len(), 3);
}

#[test]
fn rejects_unknown_identifier() {
    let e = compile_err("int main() { return nope; }");
    assert!(e.contains("unknown identifier"), "{e}");
}

#[test]
fn rejects_type_mismatches() {
    let e = compile_err("int main() { int *p; p = 1.5; return 0; }");
    assert!(e.contains("cannot assign"), "{e}");
    let e = compile_err("int main() { float *q; int *p; p = q; return 0; }");
    assert!(e.contains("cannot assign"), "{e}");
    let e = compile_err("int main() { float f = 1.0; return f % 2.0; }");
    assert!(e.contains("requires integers"), "{e}");
    let e = compile_err("int main() { int x; return x(3); }");
    assert!(e.contains("cannot call"), "{e}");
}

#[test]
fn rejects_bad_arity() {
    let e = compile_err("int f(int a) { return a; } int main() { return f(1, 2); }");
    assert!(e.contains("expected 1 arguments"), "{e}");
}

#[test]
fn rejects_break_outside_loop() {
    let e = compile_err("int main() { break; return 0; }");
    assert!(e.contains("outside of a loop"), "{e}");
}

#[test]
fn rejects_non_lvalue_assignment() {
    let e = compile_err("int main() { 3 = 4; return 0; }");
    assert!(e.contains("lvalue"), "{e}");
    let e = compile_err("int f() { return 0; } int main() { f = 3; return 0; }");
    assert!(e.contains("lvalue") || e.contains("cannot assign"), "{e}");
}

#[test]
fn rejects_struct_by_value() {
    let e = compile_err(
        "struct s { int a; };
         struct s f(struct s x) { return x; }",
    );
    assert!(e.contains("struct"), "{e}");
}

#[test]
fn rejects_duplicate_definitions() {
    let e = compile_err("int f() { return 0; } int f() { return 1; }");
    assert!(e.contains("duplicate function"), "{e}");
    let e = compile_err("int g; float g;");
    assert!(e.contains("duplicate global"), "{e}");
}

#[test]
fn rejects_non_constant_global_init() {
    let e = compile_err("int f() { return 1; } int g = f();");
    assert!(e.contains("constant"), "{e}");
}

#[test]
fn rejects_return_type_mismatch() {
    let e = compile_err("void f() { return 3; }");
    assert!(e.contains("void function"), "{e}");
    let e = compile_err("int f() { int *p; return p; }");
    assert!(e.contains("cannot assign"), "{e}");
}

#[test]
fn rejects_unknown_struct_and_field() {
    let e = compile_err("struct nope x;");
    assert!(e.contains("unknown struct"), "{e}");
    let e = compile_err(
        "struct s { int a; };
         struct s v;
         int main() { return v.b; }",
    );
    assert!(e.contains("no field named"), "{e}");
}

#[test]
fn pointer_arithmetic_types() {
    let checked = compile(
        "int arr[8];
         int main() {
             int *p = arr;
             int *q = p + 3;
             p++;
             return q - p;
         }",
    )
    .unwrap();
    // q - p yields int.
    let _ = checked;
}

#[test]
fn array_initializer_zero_fills() {
    let checked = compile("int t[5] = {1, 2};").unwrap();
    let init = checked.info.globals[0].init.as_ref().unwrap();
    assert_eq!(init.len(), 5);
    assert!(matches!(init[1], minic::sema::ConstVal::Int(2)));
    assert!(matches!(init[4], minic::sema::ConstVal::Int(0)));
}

#[test]
fn too_many_initializers_rejected() {
    let e = compile_err("int t[2] = {1, 2, 3};");
    assert!(e.contains("too many initializers"), "{e}");
}

#[test]
fn const_exprs_in_global_init() {
    let checked = compile("int a = 1 << 10; float b = -2.5; int c = (3 + 4) * 2;").unwrap();
    let vals: Vec<_> = checked
        .info
        .globals
        .iter()
        .map(|g| g.init.as_ref().unwrap()[0])
        .collect();
    assert!(matches!(vals[0], minic::sema::ConstVal::Int(1024)));
    assert!(matches!(vals[1], minic::sema::ConstVal::Float(v) if v == -2.5));
    assert!(matches!(vals[2], minic::sema::ConstVal::Int(14)));
}

#[test]
fn check_is_idempotent_on_renumbered_ast() {
    // Running check twice on the same parsed AST must succeed and agree on
    // the number of nodes (renumber is deterministic).
    let prog =
        parse("int main() { int s = 0; for (int i = 0; i < 4; i++) s += i; return s; }").unwrap();
    let c1 = check(prog.clone()).unwrap();
    let c2 = check(c1.program.clone()).unwrap();
    assert_eq!(c1.info.next_node_id, c2.info.next_node_id);
    assert_eq!(c1.info.frames[0].size, c2.info.frames[0].size);
}

#[test]
fn mixed_arith_promotes_to_float() {
    let checked = compile("int main() { float f = 2 * 1.5; return (int)f; }").unwrap();
    // find the Binary Mul expr type
    let mut found = false;
    minic::visit::for_each_expr(&checked.program.funcs[0].body, |e| {
        if let minic::ast::ExprKind::Binary(minic::ast::BinOp::Mul, _, _) = e.kind {
            assert_eq!(checked.info.expr_types[&e.id], Type::Float);
            found = true;
        }
    });
    assert!(found);
}

#[test]
fn comparison_always_int() {
    let checked = compile("int main() { float f = 1.5; return f < 2.5; }").unwrap();
    minic::visit::for_each_expr(&checked.program.funcs[0].body, |e| {
        if let minic::ast::ExprKind::Binary(minic::ast::BinOp::Lt, _, _) = e.kind {
            assert_eq!(checked.info.expr_types[&e.id], Type::Int);
        }
    });
}

#[test]
fn rejects_cast_to_undeclared_struct() {
    // Used to pass checking and panic later, when lowering asked for the
    // size of `struct S` during the pointer arithmetic.
    let e = compile_err("int main() { int x; x = 0; return (int)((struct S*)&x + 1); }");
    assert!(e.contains("unknown struct"), "{e}");
}

#[test]
fn rejects_function_returning_undeclared_struct_pointer() {
    let e = compile_err("struct S *f() { return 0; } int main() { return 0; }");
    assert!(e.contains("unknown struct"), "{e}");
}

#[test]
fn cast_to_declared_struct_pointer_still_allowed() {
    compile(
        "struct p { int a; int b; };
         struct p cell;
         int main() {
             struct p *q;
             q = (struct p *)&cell;
             q->a = 3;
             return q->a;
         }",
    )
    .expect("declared struct casts stay legal");
}
