//! AST visitors.
//!
//! [`Visit`] walks an immutable AST; [`VisitMut`] walks a mutable one.
//! Default method implementations recurse, so implementors override only the
//! hooks they need and call the corresponding `walk_*` function to continue
//! recursion.

use crate::ast::*;

/// Immutable AST visitor.
pub trait Visit {
    /// Visits a statement. Override and call [`walk_stmt`] to recurse.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }

    /// Visits an expression. Override and call [`walk_expr`] to recurse.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }

    /// Visits a block. Override and call [`walk_block`] to recurse.
    fn visit_block(&mut self, b: &Block) {
        walk_block(self, b);
    }
}

/// Recurses into every statement of `b`.
pub fn walk_block<V: Visit + ?Sized>(v: &mut V, b: &Block) {
    for s in &b.stmts {
        v.visit_stmt(s);
    }
}

/// Recurses into the children of `s`.
pub fn walk_stmt<V: Visit + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                v.visit_expr(e);
            }
        }
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            v.visit_expr(cond);
            v.visit_block(then_blk);
            if let Some(b) = else_blk {
                v.visit_block(b);
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_block(body);
        }
        StmtKind::DoWhile { body, cond } => {
            v.visit_block(body);
            v.visit_expr(cond);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                v.visit_stmt(s);
            }
            if let Some(e) = cond {
                v.visit_expr(e);
            }
            if let Some(e) = step {
                v.visit_expr(e);
            }
            v.visit_block(body);
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        StmtKind::Block(b) => v.visit_block(b),
        StmtKind::Profile(p) => v.visit_block(&p.body),
        StmtKind::Memo(m) => v.visit_block(&m.body),
    }
}

/// Recurses into the children of `e`.
pub fn walk_expr<V: Visit + ?Sized>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Var(_) => {}
        ExprKind::Unary(_, a) | ExprKind::IncDec(_, a) | ExprKind::Cast(_, a) => v.visit_expr(a),
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(a, b)
        | ExprKind::AssignOp(_, a, b)
        | ExprKind::Index(a, b) => {
            v.visit_expr(a);
            v.visit_expr(b);
        }
        ExprKind::Ternary(c, t, f) => {
            v.visit_expr(c);
            v.visit_expr(t);
            v.visit_expr(f);
        }
        ExprKind::Call(callee, args) => {
            v.visit_expr(callee);
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Member(a, _) | ExprKind::Arrow(a, _) => v.visit_expr(a),
    }
}

/// Mutable AST visitor.
pub trait VisitMut {
    /// Visits a statement mutably.
    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        walk_stmt_mut(self, s);
    }

    /// Visits an expression mutably.
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
    }

    /// Visits a block mutably.
    fn visit_block_mut(&mut self, b: &mut Block) {
        walk_block_mut(self, b);
    }
}

/// Recurses into every statement of `b`, mutably.
pub fn walk_block_mut<V: VisitMut + ?Sized>(v: &mut V, b: &mut Block) {
    for s in &mut b.stmts {
        v.visit_stmt_mut(s);
    }
}

/// Recurses into the children of `s`, mutably.
pub fn walk_stmt_mut<V: VisitMut + ?Sized>(v: &mut V, s: &mut Stmt) {
    match &mut s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                v.visit_expr_mut(e);
            }
        }
        StmtKind::Expr(e) => v.visit_expr_mut(e),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            v.visit_expr_mut(cond);
            v.visit_block_mut(then_blk);
            if let Some(b) = else_blk {
                v.visit_block_mut(b);
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr_mut(cond);
            v.visit_block_mut(body);
        }
        StmtKind::DoWhile { body, cond } => {
            v.visit_block_mut(body);
            v.visit_expr_mut(cond);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                v.visit_stmt_mut(s);
            }
            if let Some(e) = cond {
                v.visit_expr_mut(e);
            }
            if let Some(e) = step {
                v.visit_expr_mut(e);
            }
            v.visit_block_mut(body);
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr_mut(e);
            }
        }
        StmtKind::Block(b) => v.visit_block_mut(b),
        StmtKind::Profile(p) => v.visit_block_mut(&mut p.body),
        StmtKind::Memo(m) => v.visit_block_mut(&mut m.body),
    }
}

/// Recurses into the children of `e`, mutably.
pub fn walk_expr_mut<V: VisitMut + ?Sized>(v: &mut V, e: &mut Expr) {
    match &mut e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Var(_) => {}
        ExprKind::Unary(_, a) | ExprKind::IncDec(_, a) | ExprKind::Cast(_, a) => {
            v.visit_expr_mut(a)
        }
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(a, b)
        | ExprKind::AssignOp(_, a, b)
        | ExprKind::Index(a, b) => {
            v.visit_expr_mut(a);
            v.visit_expr_mut(b);
        }
        ExprKind::Ternary(c, t, f) => {
            v.visit_expr_mut(c);
            v.visit_expr_mut(t);
            v.visit_expr_mut(f);
        }
        ExprKind::Call(callee, args) => {
            v.visit_expr_mut(callee);
            for a in args {
                v.visit_expr_mut(a);
            }
        }
        ExprKind::Member(a, _) | ExprKind::Arrow(a, _) => v.visit_expr_mut(a),
    }
}

/// Calls `f` on every expression in `block`, recursively (including
/// expressions nested inside statements and sub-blocks).
pub fn for_each_expr(block: &Block, mut f: impl FnMut(&Expr)) {
    struct V<F>(F);
    impl<F: FnMut(&Expr)> Visit for V<F> {
        fn visit_expr(&mut self, e: &Expr) {
            (self.0)(e);
            walk_expr(self, e);
        }
    }
    let mut v = V(&mut f);
    v.visit_block(block);
}

/// Calls `f` on every statement in `block`, recursively.
pub fn for_each_stmt(block: &Block, mut f: impl FnMut(&Stmt)) {
    struct V<F>(F);
    impl<F: FnMut(&Stmt)> Visit for V<F> {
        fn visit_stmt(&mut self, s: &Stmt) {
            (self.0)(s);
            walk_stmt(self, s);
        }
    }
    let mut v = V(&mut f);
    v.visit_block(block);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn sample_block() -> Block {
        // { int i = 0; while (i < 3) { i = i + 1; } return i; }
        let var = |n: &str| Expr::synth(ExprKind::Var(n.into()));
        let lit = |v: i64| Expr::synth(ExprKind::IntLit(v));
        Block::new(vec![
            Stmt::synth(StmtKind::Decl {
                name: "i".into(),
                ty: Type::Int,
                init: Some(lit(0)),
            }),
            Stmt::synth(StmtKind::While {
                cond: Expr::synth(ExprKind::Binary(
                    BinOp::Lt,
                    Box::new(var("i")),
                    Box::new(lit(3)),
                )),
                body: Block::new(vec![Stmt::synth(StmtKind::Expr(Expr::synth(
                    ExprKind::Assign(
                        Box::new(var("i")),
                        Box::new(Expr::synth(ExprKind::Binary(
                            BinOp::Add,
                            Box::new(var("i")),
                            Box::new(lit(1)),
                        ))),
                    ),
                )))]),
            }),
            Stmt::synth(StmtKind::Return(Some(var("i")))),
        ])
    }

    #[test]
    fn for_each_expr_sees_nested() {
        let block = sample_block();
        let mut vars = Vec::new();
        for_each_expr(&block, |e| {
            if let Some(name) = e.as_var() {
                vars.push(name.to_string());
            }
        });
        assert_eq!(vars, vec!["i", "i", "i", "i"]);
    }

    #[test]
    fn for_each_stmt_counts_all() {
        let block = sample_block();
        let mut count = 0;
        for_each_stmt(&block, |_| count += 1);
        // decl, while, inner expr stmt, return.
        assert_eq!(count, 4);
    }

    #[test]
    fn mut_visitor_rewrites_literals() {
        struct AddOne;
        impl VisitMut for AddOne {
            fn visit_expr_mut(&mut self, e: &mut Expr) {
                if let ExprKind::IntLit(v) = &mut e.kind {
                    *v += 1;
                }
                walk_expr_mut(self, e);
            }
        }
        let mut block = sample_block();
        AddOne.visit_block_mut(&mut block);
        let mut lits = Vec::new();
        for_each_expr(&block, |e| {
            if let Some(v) = e.as_int_lit() {
                lits.push(v);
            }
        });
        assert_eq!(lits, vec![1, 4, 2]);
    }

    #[test]
    fn visitor_descends_into_memo_bodies() {
        let memo = Stmt::synth(StmtKind::Memo(MemoStmt {
            segment: "s".into(),
            table: 0,
            slot: 0,
            inputs: vec![],
            outputs: vec![],
            deps: vec![],
            ret: None,
            body: sample_block(),
        }));
        let block = Block::new(vec![memo]);
        let mut count = 0;
        for_each_stmt(&block, |_| count += 1);
        // memo + 4 inner statements.
        assert_eq!(count, 5);
        let _ = Span::DUMMY;
    }
}
