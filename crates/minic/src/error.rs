//! Diagnostics shared by the lexer, parser, and semantic checker.

use crate::span::{LineMap, Span};
use std::error::Error;
use std::fmt;

/// Which front-end phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic checking (name resolution + type checking).
    Sema,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Sema => write!(f, "sema"),
        }
    }
}

/// A single front-end diagnostic with a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diag {
    /// Which phase reported the problem.
    pub phase: Phase,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
}

impl Diag {
    /// Creates a diagnostic.
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        Diag {
            phase,
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic with line/column information from `map`.
    ///
    /// ```
    /// use minic::error::{Diag, Phase};
    /// use minic::span::{LineMap, Span};
    /// let d = Diag::new(Phase::Parse, Span::new(3, 4), "expected `;`");
    /// let map = LineMap::new("abc def");
    /// assert_eq!(d.render(&map), "parse error at 1:4: expected `;`");
    /// ```
    pub fn render(&self, map: &LineMap) -> String {
        let lc = map.line_col(self.span.lo);
        format!("{} error at {}: {}", self.phase, lc, self.message)
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at byte {}: {}",
            self.phase, self.span.lo, self.message
        )
    }
}

impl Error for Diag {}

/// A non-empty batch of diagnostics, returned when a phase fails.
#[derive(Debug, Clone, PartialEq)]
pub struct Diags(pub Vec<Diag>);

impl Diags {
    /// Renders all diagnostics, one per line, using `map` for positions.
    pub fn render(&self, map: &LineMap) -> String {
        self.0
            .iter()
            .map(|d| d.render(map))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Diags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for Diags {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_line_and_col() {
        let src = "int main() {\n  retur 0;\n}\n";
        let map = LineMap::new(src);
        let off = src.find("retur").unwrap() as u32;
        let d = Diag::new(Phase::Parse, Span::new(off, off + 5), "unknown statement");
        assert_eq!(d.render(&map), "parse error at 2:3: unknown statement");
    }

    #[test]
    fn diags_display_joins_lines() {
        let ds = Diags(vec![
            Diag::new(Phase::Sema, Span::new(0, 1), "first"),
            Diag::new(Phase::Sema, Span::new(5, 6), "second"),
        ]);
        let text = ds.to_string();
        assert!(text.contains("first"));
        assert!(text.contains("second"));
        assert_eq!(text.lines().count(), 2);
    }
}
