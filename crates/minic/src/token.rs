//! Token definitions for the MiniC lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token: a [`TokenKind`] plus the [`Span`] it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it appeared.
    pub span: Span,
}

/// The kinds of tokens MiniC recognises.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An integer literal, e.g. `42` or `0x2a`.
    Int(i64),
    /// A floating-point literal, e.g. `3.14` or `1e-3`.
    Float(f64),
    /// An identifier, e.g. `quan`.
    Ident(String),

    // Keywords.
    /// `int`
    KwInt,
    /// `float`
    KwFloat,
    /// `void`
    KwVoid,
    /// `struct`
    KwStruct,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `do`
    KwDo,
    /// `for`
    KwFor,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `return`
    KwReturn,
    /// `const`
    KwConst,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `?`
    Question,
    /// `:`
    Colon,

    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// `=`
    Eq,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `%=`
    PercentEq,
    /// `&=`
    AmpEq,
    /// `|=`
    PipeEq,
    /// `^=`
    CaretEq,
    /// `<<=`
    ShlEq,
    /// `>>=`
    ShrEq,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `word`, if it is a keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "int" => TokenKind::KwInt,
            "float" => TokenKind::KwFloat,
            "void" => TokenKind::KwVoid,
            "struct" => TokenKind::KwStruct,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "do" => TokenKind::KwDo,
            "for" => TokenKind::KwFor,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "return" => TokenKind::KwReturn,
            "const" => TokenKind::KwConst,
            _ => return None,
        })
    }

    /// A short human-readable description, used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.glyph()),
        }
    }

    /// The literal spelling of punctuation/keyword tokens.
    fn glyph(&self) -> &'static str {
        use TokenKind::*;
        match self {
            KwInt => "int",
            KwFloat => "float",
            KwVoid => "void",
            KwStruct => "struct",
            KwIf => "if",
            KwElse => "else",
            KwWhile => "while",
            KwDo => "do",
            KwFor => "for",
            KwBreak => "break",
            KwContinue => "continue",
            KwReturn => "return",
            KwConst => "const",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Question => "?",
            Colon => ":",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            PlusPlus => "++",
            MinusMinus => "--",
            Eq => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            Int(_) | Float(_) | Ident(_) | Eof => unreachable!("glyph called on non-glyph token"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for word in [
            "int", "float", "void", "struct", "if", "else", "while", "do", "for", "break",
            "continue", "return", "const",
        ] {
            let kind = TokenKind::keyword(word).expect("keyword");
            assert_eq!(kind.describe(), format!("`{word}`"));
        }
    }

    #[test]
    fn non_keyword_returns_none() {
        assert_eq!(TokenKind::keyword("quan"), None);
        assert_eq!(TokenKind::keyword(""), None);
        assert_eq!(TokenKind::keyword("If"), None);
    }

    #[test]
    fn describe_literals() {
        assert_eq!(TokenKind::Int(42).describe(), "integer `42`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
