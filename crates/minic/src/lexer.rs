//! Hand-written lexer for MiniC.
//!
//! Converts source text into a [`Token`] stream. Supports `//` and `/* */`
//! comments, decimal and hexadecimal integer literals, and floating-point
//! literals with optional exponents.

use crate::error::{Diag, Phase};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenises `source` into a vector ending with an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`Diag`] for the first unrecognised character, malformed
/// number, or unterminated block comment.
///
/// # Examples
///
/// ```
/// use minic::lexer::lex;
/// use minic::token::TokenKind;
/// let toks = lex("int x = 0x1f;")?;
/// assert_eq!(toks[3].kind, TokenKind::Int(31));
/// # Ok::<(), minic::error::Diag>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, Diag> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Diag> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'0'..=b'9' => self.number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'.' => {
                    // `.5` style float literal vs member access.
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        self.number(start)?;
                    } else {
                        self.pos += 1;
                        self.push(TokenKind::Dot, start);
                    }
                }
                _ => self.operator(start)?,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<u8> {
        self.src.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn err(&self, start: usize, msg: impl Into<String>) -> Diag {
        Diag::new(
            Phase::Lex,
            Span::new(start as u32, self.pos.max(start + 1) as u32),
            msg,
        )
    }

    /// Skips whitespace and comments.
    fn skip_trivia(&mut self) -> Result<(), Diag> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(self.err(start, "unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self, start: usize) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        let kind = TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()));
        self.push(kind, start);
    }

    fn number(&mut self, start: usize) -> Result<(), Diag> {
        // Hexadecimal.
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x' | b'X')) {
            self.pos += 2;
            let digits_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(self.err(start, "hexadecimal literal needs at least one digit"));
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).expect("hex digits");
            let value = i64::from_str_radix(text, 16)
                .map_err(|_| self.err(start, "hexadecimal literal out of range"))?;
            self.push(TokenKind::Int(value), start);
            return Ok(());
        }

        let mut is_float = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && self.peek_at(1) != Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut ahead = 1;
            if matches!(self.peek_at(1), Some(b'+' | b'-')) {
                ahead = 2;
            }
            if self.peek_at(ahead).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos += ahead;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("number text");
        if is_float {
            let value: f64 = text
                .parse()
                .map_err(|_| self.err(start, "malformed float literal"))?;
            self.push(TokenKind::Float(value), start);
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| self.err(start, "integer literal out of range"))?;
            self.push(TokenKind::Int(value), start);
        }
        Ok(())
    }

    fn operator(&mut self, start: usize) -> Result<(), Diag> {
        use TokenKind::*;
        let c = self.bump().expect("operator char");
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'+' => {
                if self.eat(b'+') {
                    PlusPlus
                } else if self.eat(b'=') {
                    PlusEq
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.eat(b'-') {
                    MinusMinus
                } else if self.eat(b'=') {
                    MinusEq
                } else if self.eat(b'>') {
                    Arrow
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.eat(b'=') {
                    StarEq
                } else {
                    Star
                }
            }
            b'/' => {
                if self.eat(b'=') {
                    SlashEq
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.eat(b'=') {
                    PercentEq
                } else {
                    Percent
                }
            }
            b'&' => {
                if self.eat(b'&') {
                    AmpAmp
                } else if self.eat(b'=') {
                    AmpEq
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.eat(b'|') {
                    PipePipe
                } else if self.eat(b'=') {
                    PipeEq
                } else {
                    Pipe
                }
            }
            b'^' => {
                if self.eat(b'=') {
                    CaretEq
                } else {
                    Caret
                }
            }
            b'!' => {
                if self.eat(b'=') {
                    Ne
                } else {
                    Bang
                }
            }
            b'<' => {
                if self.eat(b'<') {
                    if self.eat(b'=') {
                        ShlEq
                    } else {
                        Shl
                    }
                } else if self.eat(b'=') {
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.eat(b'>') {
                    if self.eat(b'=') {
                        ShrEq
                    } else {
                        Shr
                    }
                } else if self.eat(b'=') {
                    Ge
                } else {
                    Gt
                }
            }
            b'=' => {
                if self.eat(b'=') {
                    EqEq
                } else {
                    Eq
                }
            }
            other => {
                return Err(self.err(start, format!("unrecognised character `{}`", other as char)));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn empty_input_gives_eof() {
        assert_eq!(kinds(""), vec![Eof]);
        assert_eq!(kinds("   \n\t "), vec![Eof]);
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("int quan while whilex"),
            vec![
                KwInt,
                Ident("quan".into()),
                KwWhile,
                Ident("whilex".into()),
                Eof
            ]
        );
    }

    #[test]
    fn integer_literals() {
        assert_eq!(
            kinds("0 42 0x2A 0xff"),
            vec![Int(0), Int(42), Int(42), Int(255), Eof]
        );
    }

    #[test]
    fn float_literals() {
        assert_eq!(
            kinds("1.5 0.25 3e2 1.5e-1 .5"),
            vec![
                Float(1.5),
                Float(0.25),
                Float(300.0),
                Float(0.15),
                Float(0.5),
                Eof
            ]
        );
    }

    #[test]
    fn dot_vs_float() {
        assert_eq!(
            kinds("s.f"),
            vec![Ident("s".into()), Dot, Ident("f".into()), Eof]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("<<= >>= << >> <= >= == != && || ++ -- -> += <<"),
            vec![
                ShlEq, ShrEq, Shl, Shr, Le, Ge, EqEq, Ne, AmpAmp, PipePipe, PlusPlus, MinusMinus,
                Arrow, PlusEq, Shl, Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line comment\nb /* block\n comment */ c"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into()), Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        let err = lex("x /* oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unrecognised_char_is_error() {
        let err = lex("int $x;").unwrap_err();
        assert!(err.message.contains("unrecognised"));
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn hex_without_digits_is_error() {
        let err = lex("0x;").unwrap_err();
        assert!(err.message.contains("hexadecimal"));
    }

    #[test]
    fn quan_example_lexes() {
        // The paper's Figure 2(a) example.
        let src = r#"
            int quan(int val) {
                int i;
                for (i = 0; i < 15; i++)
                    if (val < power2[i])
                        break;
                return (i);
            }
        "#;
        let toks = lex(src).unwrap();
        assert!(toks.len() > 30);
        assert_eq!(toks.last().unwrap().kind, Eof);
    }
}
