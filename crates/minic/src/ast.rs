//! Abstract syntax tree for MiniC.
//!
//! The AST is produced by the [parser](crate::parser), checked and annotated
//! by [sema](crate::sema), and consumed by the flow/analysis crates and the
//! VM. Two statement forms — [`StmtKind::Profile`] and [`StmtKind::Memo`] —
//! never come from source text: they are inserted by the computation-reuse
//! transformation (the paper's instrumentation and `check_hash` rewrite,
//! Fig. 2(b)) and are executed natively by the VM.

use crate::span::Span;
use std::fmt;

/// Identifies an AST node uniquely within a checked [`Program`].
///
/// Freshly synthesized nodes carry [`NodeId::DUMMY`]; running
/// [`sema::check`](crate::sema::check) renumbers every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Placeholder id for nodes not yet numbered by sema.
    pub const DUMMY: NodeId = NodeId(u32::MAX);
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A MiniC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer (`int`).
    Int,
    /// 64-bit IEEE float (`float`).
    Float,
    /// No value; only valid as a function return type.
    Void,
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// Named struct type.
    Struct(String),
    /// Function type (used for function pointers).
    Func(Box<FuncSig>),
}

impl Type {
    /// Shorthand for `Ptr(Box::new(inner))`.
    pub fn ptr(inner: Type) -> Type {
        Type::Ptr(Box::new(inner))
    }

    /// Shorthand for `Array(Box::new(elem), len)`.
    pub fn array(elem: Type, len: usize) -> Type {
        Type::Array(Box::new(elem), len)
    }

    /// Whether this is a scalar (int, float, pointer, or function pointer).
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Float | Type::Ptr(_) | Type::Func(_))
    }

    /// Whether this is an arithmetic type (int or float).
    pub fn is_arith(&self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Void => write!(f, "void"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(name) => write!(f, "struct {name}"),
            Type::Func(sig) => {
                write!(f, "{}(*)(", sig.ret)?;
                for (i, p) in sig.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parameter and return types of a function (pointer) type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncSig {
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e` (yields 0 or 1).
    Not,
    /// Bitwise complement `~e`.
    BitNot,
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&e`.
    Addr,
}

impl UnOp {
    /// The operator's C spelling.
    pub fn glyph(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Deref => "*",
            UnOp::Addr => "&",
        }
    }
}

/// Binary operators (also used by compound assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl BinOp {
    /// The operator's C spelling.
    pub fn glyph(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            LogAnd => "&&",
            LogOr => "||",
        }
    }

    /// Whether the result is always `int` 0/1.
    pub fn is_comparison(self) -> bool {
        use BinOp::*;
        matches!(self, Lt | Le | Gt | Ge | Eq | Ne | LogAnd | LogOr)
    }

    /// Whether the operator only accepts integer operands.
    pub fn int_only(self) -> bool {
        use BinOp::*;
        matches!(self, Rem | Shl | Shr | BitAnd | BitOr | BitXor)
    }
}

/// Increment/decrement operators (`++`/`--`, prefix and postfix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncDec {
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
    /// `e++`
    PostInc,
    /// `e--`
    PostDec,
}

impl IncDec {
    /// True for `++e`/`--e`.
    pub fn is_prefix(self) -> bool {
        matches!(self, IncDec::PreInc | IncDec::PreDec)
    }

    /// +1 or -1.
    pub fn delta(self) -> i64 {
        match self {
            IncDec::PreInc | IncDec::PostInc => 1,
            IncDec::PreDec | IncDec::PostDec => -1,
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique id assigned by sema.
    pub id: NodeId,
    /// Source location.
    pub span: Span,
    /// The expression itself.
    pub kind: ExprKind,
}

impl Expr {
    /// Creates an expression with a dummy id (renumbered by sema).
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr {
            id: NodeId::DUMMY,
            span,
            kind,
        }
    }

    /// Creates a synthesized expression with no real source location.
    pub fn synth(kind: ExprKind) -> Self {
        Expr::new(kind, Span::DUMMY)
    }

    /// If this is an integer literal, returns its value.
    pub fn as_int_lit(&self) -> Option<i64> {
        match self.kind {
            ExprKind::IntLit(v) => Some(v),
            _ => None,
        }
    }

    /// If this is a plain variable reference, returns the name.
    pub fn as_var(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Var(name) => Some(name),
            _ => None,
        }
    }
}

/// The kinds of MiniC expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable (or function name in call/address position).
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Increment or decrement of an lvalue.
    IncDec(IncDec, Box<Expr>),
    /// Simple assignment `lhs = rhs`.
    Assign(Box<Expr>, Box<Expr>),
    /// Compound assignment `lhs op= rhs`.
    AssignOp(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call; callee is a function name or function-pointer value.
    Call(Box<Expr>, Vec<Expr>),
    /// Array/pointer indexing `base[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// Struct member access `base.field`.
    Member(Box<Expr>, String),
    /// Struct member access through a pointer `base->field`.
    Arrow(Box<Expr>, String),
    /// Explicit cast `(type) e` (only int<->float casts are allowed).
    Cast(Type, Box<Expr>),
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Unique id assigned by sema.
    pub id: NodeId,
    /// Source location.
    pub span: Span,
    /// The statement itself.
    pub kind: StmtKind,
}

impl Stmt {
    /// Creates a statement with a dummy id (renumbered by sema).
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt {
            id: NodeId::DUMMY,
            span,
            kind,
        }
    }

    /// Creates a synthesized statement with no real source location.
    pub fn synth(kind: StmtKind) -> Self {
        Stmt::new(kind, Span::DUMMY)
    }
}

/// The kinds of MiniC statements.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local declaration, e.g. `int i = 0;` or `int buf[8];`.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer (scalars only).
        init: Option<Expr>,
    },
    /// Expression evaluated for its side effects.
    Expr(Expr),
    /// Conditional.
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: Block,
        /// Loop condition (tested after the body).
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init statement (decl or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition; absent means "always true".
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;` or `return e;`
    Return(Option<Expr>),
    /// A nested block `{ ... }`.
    Block(Block),
    /// Value-set profiling probe inserted by the reuse pipeline.
    ///
    /// Executes `body` while recording the tuple of input values on every
    /// entry, so the profiler can compute `N`, `N_ds`, and the reuse rate.
    Profile(ProfileStmt),
    /// Memoized segment inserted by the reuse transformation.
    ///
    /// Semantically equivalent to the paper's Fig. 2(b): look the inputs up
    /// in a hash table; on a hit, write the recorded outputs and skip
    /// `body`; on a miss, run `body` and record the outputs.
    Memo(MemoStmt),
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }
}

/// Scalar element type of a memoized operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
}

/// How a memo operand's value is located and how many words it spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandShape {
    /// A scalar variable (one word).
    Scalar,
    /// A whole array variable of `len` elements.
    Array(usize),
    /// `len` elements read through a pointer variable.
    Deref(usize),
}

impl OperandShape {
    /// Number of 64-bit words the operand spans.
    pub fn words(self) -> usize {
        match self {
            OperandShape::Scalar => 1,
            OperandShape::Array(n) | OperandShape::Deref(n) => n,
        }
    }
}

/// One input or output of a profiled/memoized segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoOperand {
    /// Variable name (local, parameter, or global) in the enclosing scope.
    pub name: String,
    /// How the value is located.
    pub shape: OperandShape,
    /// Element type (needed to decode raw table words).
    pub elem: ScalarKind,
}

impl MemoOperand {
    /// A one-word scalar operand.
    pub fn scalar(name: impl Into<String>, elem: ScalarKind) -> Self {
        MemoOperand {
            name: name.into(),
            shape: OperandShape::Scalar,
            elem,
        }
    }

    /// Number of 64-bit words this operand contributes to the key/entry.
    pub fn words(&self) -> usize {
        self.shape.words()
    }
}

/// A value-set profiling probe (inserted, never parsed).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStmt {
    /// Human-readable segment name (e.g. `quan:body`).
    pub segment: String,
    /// Dense index of the segment in the profiling plan.
    pub seg_index: usize,
    /// Input operands whose value tuple is recorded on entry.
    pub inputs: Vec<MemoOperand>,
    /// The original segment body.
    pub body: Block,
}

/// A global memory region a memoized segment's result depends on without
/// the region being part of the hash key (inserted, never parsed).
///
/// Mutable dependency regions carry the red/green scheme: entries record a
/// chunked epoch fingerprint over the region and are promoted to hits only
/// while validation proves the fingerprinted chunks unchanged. Invariant
/// regions (profile-classified read-only tables) get the same fingerprint
/// as a cheap guard closing the stale-invariant hole.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoDep {
    /// Global variable naming the region.
    pub name: String,
    /// Region size in 64-bit words (1 for scalars).
    pub words: usize,
    /// Whether the program writes the region after initialization; mutable
    /// dependencies make the segment's entries "green-candidates".
    pub mutable: bool,
}

impl MemoDep {
    /// Chunk granularity: the smallest power-of-two chunk size (in words)
    /// that covers the region with at most 64 chunks, so a region's
    /// read-set fits one `u64` mask word.
    pub fn chunk_shift(&self) -> u32 {
        let mut shift = 0u32;
        while (self.words + (1usize << shift) - 1) >> shift > 64 {
            shift += 1;
        }
        shift
    }

    /// Number of chunks the region divides into (1..=64).
    pub fn chunk_count(&self) -> usize {
        let shift = self.chunk_shift();
        (self.words + (1usize << shift) - 1) >> shift
    }
}

/// A memoized segment (inserted, never parsed).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoStmt {
    /// Human-readable segment name.
    pub segment: String,
    /// Runtime table id; merged segments share one id.
    pub table: usize,
    /// Output slot within the (possibly merged) table's bit vector.
    pub slot: usize,
    /// Input operands forming the hash key.
    pub inputs: Vec<MemoOperand>,
    /// Output operands recorded/restored.
    pub outputs: Vec<MemoOperand>,
    /// Validated dependency regions (not hashed into the key).
    pub deps: Vec<MemoDep>,
    /// If the segment is a whole function body that returns a value, the
    /// return value is memoized too and restored on a hit.
    pub ret: Option<ScalarKind>,
    /// The original segment body.
    pub body: Block,
}

/// A named, typed parameter or struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Source location of the declaration.
    pub span: Span,
}

/// A struct type definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Param>,
    /// Source location.
    pub span: Span,
}

/// A global variable initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// Scalar initializer expression (must be a constant expression).
    Scalar(Expr),
    /// Brace-enclosed list for arrays (and nested arrays).
    List(Vec<Init>),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Optional initializer.
    pub init: Option<Init>,
    /// Whether declared `const`.
    pub is_const: bool,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// Body.
    pub body: Block,
    /// Source location of the signature.
    pub span: Span,
}

impl FuncDef {
    /// The function's type signature.
    pub fn sig(&self) -> FuncSig {
        FuncSig {
            params: self.params.iter().map(|p| p.ty.clone()).collect(),
            ret: self.ret.clone(),
        }
    }
}

/// A complete MiniC translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Functions; execution starts at `main`.
    pub funcs: Vec<FuncDef>,
}

impl Program {
    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Finds a function by name, mutably.
    pub fn func_mut(&mut self, name: &str) -> Option<&mut FuncDef> {
        self.funcs.iter_mut().find(|f| f.name == name)
    }

    /// Finds a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::ptr(Type::Float).to_string(), "float*");
        assert_eq!(Type::array(Type::Int, 8).to_string(), "int[8]");
        assert_eq!(Type::Struct("pt".into()).to_string(), "struct pt");
        let sig = FuncSig {
            params: vec![Type::Int, Type::Int],
            ret: Type::Int,
        };
        assert_eq!(Type::Func(Box::new(sig)).to_string(), "int(*)(int, int)");
    }

    #[test]
    fn scalar_and_arith_predicates() {
        assert!(Type::Int.is_scalar());
        assert!(Type::ptr(Type::Int).is_scalar());
        assert!(!Type::array(Type::Int, 4).is_scalar());
        assert!(Type::Float.is_arith());
        assert!(!Type::ptr(Type::Int).is_arith());
        assert!(!Type::Void.is_scalar());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::LogAnd.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Shl.int_only());
        assert!(!BinOp::Div.int_only());
    }

    #[test]
    fn incdec_delta_and_prefix() {
        assert_eq!(IncDec::PostInc.delta(), 1);
        assert_eq!(IncDec::PreDec.delta(), -1);
        assert!(IncDec::PreInc.is_prefix());
        assert!(!IncDec::PostDec.is_prefix());
    }

    #[test]
    fn operand_words() {
        assert_eq!(OperandShape::Scalar.words(), 1);
        assert_eq!(OperandShape::Array(64).words(), 64);
        assert_eq!(OperandShape::Deref(3).words(), 3);
        let op = MemoOperand::scalar("val", ScalarKind::Int);
        assert_eq!(op.words(), 1);
        assert_eq!(op.name, "val");
    }

    #[test]
    fn expr_helpers() {
        let lit = Expr::synth(ExprKind::IntLit(15));
        assert_eq!(lit.as_int_lit(), Some(15));
        assert_eq!(lit.as_var(), None);
        let var = Expr::synth(ExprKind::Var("val".into()));
        assert_eq!(var.as_var(), Some("val"));
        assert_eq!(var.id, NodeId::DUMMY);
    }

    #[test]
    fn program_lookup() {
        let prog = Program {
            structs: vec![],
            globals: vec![GlobalDef {
                name: "power2".into(),
                ty: Type::array(Type::Int, 15),
                init: None,
                is_const: false,
                span: Span::DUMMY,
            }],
            funcs: vec![FuncDef {
                name: "quan".into(),
                params: vec![],
                ret: Type::Int,
                body: Block::default(),
                span: Span::DUMMY,
            }],
        };
        assert!(prog.func("quan").is_some());
        assert!(prog.func("missing").is_none());
        assert!(prog.global("power2").is_some());
        assert_eq!(prog.func("quan").unwrap().sig().ret, Type::Int);
    }
}
