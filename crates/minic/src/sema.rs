//! Semantic analysis: name resolution, type checking, and layout.
//!
//! [`check`] renumbers every AST node, resolves variable references to
//! frame slots / globals / functions / builtins, computes struct and frame
//! layouts in *cells* (one cell = one scalar machine word), type-checks all
//! expressions, and returns a [`Checked`] program whose [`SemaInfo`] side
//! tables drive the flow/analysis crates and the VM's lowering step.

use crate::ast::*;
use crate::error::{Diag, Diags, Phase};
use crate::span::Span;
use crate::visit::{self, VisitMut};
use std::collections::HashMap;

/// Built-in functions provided by the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `print(x)` — append an int/float to the program's output stream.
    Print,
    /// `input()` — read the next value from the host-provided input stream
    /// (returns 0 at end of input).
    Input,
    /// `eof()` — 1 if the input stream is exhausted, else 0.
    Eof,
    /// `assert(c)` — trap if `c` is zero.
    Assert,
}

impl Builtin {
    /// Looks up a builtin by source name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print" => Builtin::Print,
            "input" => Builtin::Input,
            "eof" => Builtin::Eof,
            "assert" => Builtin::Assert,
            _ => return None,
        })
    }
}

/// What a variable reference resolves to.
#[derive(Debug, Clone, PartialEq)]
pub enum Res {
    /// A local or parameter at the given frame offset (in cells).
    Slot(usize),
    /// A global, by index into [`SemaInfo::globals`].
    Global(usize),
    /// A function, by index into `Program::funcs`.
    Func(usize),
    /// A VM builtin.
    Builtin(Builtin),
}

/// Layout of a struct type.
#[derive(Debug, Clone, PartialEq)]
pub struct StructLayout {
    /// Field name, type, and offset in cells, in declaration order.
    pub fields: Vec<(String, Type, usize)>,
    /// Total size in cells.
    pub size: usize,
}

impl StructLayout {
    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&(String, Type, usize)> {
        self.fields.iter().find(|(n, _, _)| n == name)
    }
}

/// Layout of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalLayout {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Base address in the global region (cells; address 0 is reserved).
    pub addr: usize,
    /// Size in cells.
    pub size: usize,
    /// Whether declared `const`.
    pub is_const: bool,
    /// Constant initializer values, flattened in memory order (one entry
    /// per cell), if an initializer was given. Cells beyond the initializer
    /// are zero.
    pub init: Option<Vec<ConstVal>>,
}

/// A compile-time constant value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstVal {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
}

/// Per-function frame layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrameLayout {
    /// Total frame size in cells.
    pub size: usize,
    /// Frame offset of each parameter, in order.
    pub param_offsets: Vec<usize>,
    /// Frame offset assigned to each local declaration, keyed by the
    /// `StmtKind::Decl` statement's node id.
    pub decl_offsets: HashMap<NodeId, usize>,
}

/// Side tables produced by [`check`].
#[derive(Debug, Clone, Default)]
pub struct SemaInfo {
    /// Struct layouts by name.
    pub structs: HashMap<String, StructLayout>,
    /// Global layouts; index is the global id used by [`Res::Global`].
    pub globals: Vec<GlobalLayout>,
    /// Global name → id.
    pub global_index: HashMap<String, usize>,
    /// Total size of the global region in cells (including reserved cell 0).
    pub global_region: usize,
    /// Function name → index into `Program::funcs`.
    pub func_index: HashMap<String, usize>,
    /// Frame layouts, parallel to `Program::funcs`.
    pub frames: Vec<FrameLayout>,
    /// Static type of every expression (arrays kept un-decayed).
    pub expr_types: HashMap<NodeId, Type>,
    /// Resolution of every `Var` expression.
    pub res: HashMap<NodeId, Res>,
    /// Cell offset of the accessed field for every `Member`/`Arrow`.
    pub field_offsets: HashMap<NodeId, usize>,
    /// Resolution of memo/profile operands, keyed by
    /// `(statement id, operand index)` with inputs numbered before outputs.
    pub operand_res: HashMap<(NodeId, usize), Res>,
    /// One past the largest node id in the program.
    pub next_node_id: u32,
}

impl SemaInfo {
    /// Size of `ty` in cells.
    ///
    /// # Panics
    ///
    /// Panics if `ty` mentions an unknown struct (checked programs never do).
    pub fn size_of(&self, ty: &Type) -> usize {
        match ty {
            Type::Int | Type::Float | Type::Ptr(_) | Type::Func(_) => 1,
            Type::Void => 0,
            Type::Array(elem, n) => self.size_of(elem) * n,
            Type::Struct(name) => {
                self.structs
                    .get(name)
                    .unwrap_or_else(|| panic!("unknown struct `{name}`"))
                    .size
            }
        }
    }

    /// The type of expression `e` as recorded during checking.
    ///
    /// # Panics
    ///
    /// Panics if `e` was not part of the checked program.
    pub fn type_of(&self, e: &Expr) -> &Type {
        self.expr_types
            .get(&e.id)
            .unwrap_or_else(|| panic!("no type recorded for expr {}", e.id))
    }
}

/// A checked program: renumbered AST plus sema side tables.
#[derive(Debug, Clone)]
pub struct Checked {
    /// The program, with every node id unique.
    pub program: Program,
    /// Resolution, typing, and layout information.
    pub info: SemaInfo,
}

/// Checks `program`, renumbering all node ids and building [`SemaInfo`].
///
/// # Errors
///
/// Returns all diagnostics found (at least one) if the program is invalid.
///
/// # Examples
///
/// ```
/// let prog = minic::parse("int main() { return 1 + 2; }")?;
/// let checked = minic::check(prog).map_err(|e| e.0.into_iter().next().unwrap())?;
/// assert!(checked.info.func_index.contains_key("main"));
/// # Ok::<(), minic::error::Diag>(())
/// ```
pub fn check(mut program: Program) -> Result<Checked, Diags> {
    let next_node_id = renumber(&mut program);
    let mut checker = Checker {
        info: SemaInfo {
            next_node_id,
            ..SemaInfo::default()
        },
        diags: Vec::new(),
        scopes: Vec::new(),
        frame: FrameLayout::default(),
        current_ret: Type::Void,
        loop_depth: 0,
        func_sigs: Vec::new(),
    };
    checker.check_program(&program);
    if checker.diags.is_empty() {
        Ok(Checked {
            program,
            info: checker.info,
        })
    } else {
        Err(Diags(checker.diags))
    }
}

/// Assigns fresh sequential ids to every node; returns one past the last id.
pub fn renumber(program: &mut Program) -> u32 {
    struct Renumber {
        next: u32,
    }
    impl Renumber {
        fn next_id(&mut self) -> NodeId {
            let id = NodeId(self.next);
            self.next += 1;
            id
        }
    }
    impl VisitMut for Renumber {
        fn visit_stmt_mut(&mut self, s: &mut Stmt) {
            s.id = self.next_id();
            visit::walk_stmt_mut(self, s);
        }
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            e.id = self.next_id();
            visit::walk_expr_mut(self, e);
        }
    }
    let mut r = Renumber { next: 0 };
    for g in &mut program.globals {
        if let Some(init) = &mut g.init {
            renumber_init(&mut r, init);
        }
    }
    for f in &mut program.funcs {
        r.visit_block_mut(&mut f.body);
    }
    return r.next;

    fn renumber_init(r: &mut Renumber, init: &mut Init) {
        match init {
            Init::Scalar(e) => r.visit_expr_mut(e),
            Init::List(items) => {
                for i in items {
                    renumber_init(r, i);
                }
            }
        }
    }
}

struct Checker {
    info: SemaInfo,
    diags: Vec<Diag>,
    /// Lexical scopes: name → (frame offset, type).
    scopes: Vec<HashMap<String, (usize, Type)>>,
    frame: FrameLayout,
    current_ret: Type,
    loop_depth: u32,
    /// Signatures of all registered functions, parallel to `Program::funcs`.
    func_sigs: Vec<FuncSig>,
}

impl Checker {
    fn err(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.push(Diag::new(Phase::Sema, span, msg));
    }

    fn check_program(&mut self, program: &Program) {
        self.collect_structs(program);
        self.collect_globals(program);

        // Register function names first so calls can be forward.
        for (i, f) in program.funcs.iter().enumerate() {
            self.func_sigs.push(f.sig());
            if self.info.func_index.insert(f.name.clone(), i).is_some() {
                self.err(f.span, format!("duplicate function `{}`", f.name));
            }
            if self.info.global_index.contains_key(&f.name) {
                self.err(
                    f.span,
                    format!("`{}` is defined as both a global and a function", f.name),
                );
            }
            if let Type::Struct(_) = f.ret {
                self.err(f.span, "functions cannot return structs by value");
            } else if !self.type_is_known_shallow(&f.ret) {
                self.err(
                    f.span,
                    format!(
                        "function `{}` returns unknown struct type {}",
                        f.name, f.ret
                    ),
                );
            }
            for p in &f.params {
                if let Type::Struct(_) = p.ty {
                    self.err(p.span, "struct parameters must be passed by pointer");
                }
            }
        }

        for f in program.funcs.iter() {
            self.check_func(f);
        }
    }

    fn collect_structs(&mut self, program: &Program) {
        for s in &program.structs {
            if self.info.structs.contains_key(&s.name) {
                self.err(s.span, format!("duplicate struct `{}`", s.name));
                continue;
            }
            let mut fields = Vec::new();
            let mut offset = 0usize;
            let mut ok = true;
            for field in &s.fields {
                if !self.type_is_known(&field.ty) {
                    self.err(
                        field.span,
                        format!("field `{}` has unknown struct type", field.name),
                    );
                    ok = false;
                    continue;
                }
                if fields.iter().any(|(n, _, _)| n == &field.name) {
                    self.err(field.span, format!("duplicate field `{}`", field.name));
                    ok = false;
                    continue;
                }
                let size = self.info.size_of(&field.ty);
                fields.push((field.name.clone(), field.ty.clone(), offset));
                offset += size;
            }
            if ok {
                self.info.structs.insert(
                    s.name.clone(),
                    StructLayout {
                        fields,
                        size: offset,
                    },
                );
            }
        }
    }

    /// Whether all struct names in `ty` have known layouts (pointers to
    /// structs only require the name to exist eventually, but MiniC keeps
    /// the simpler definition-before-use rule).
    fn type_is_known(&self, ty: &Type) -> bool {
        match ty {
            Type::Int | Type::Float | Type::Void => true,
            Type::Ptr(t) => self.type_is_known_shallow(t),
            Type::Array(t, _) => self.type_is_known(t),
            Type::Struct(name) => self.info.structs.contains_key(name),
            Type::Func(sig) => {
                sig.params.iter().all(|t| self.type_is_known_shallow(t))
                    && self.type_is_known_shallow(&sig.ret)
            }
        }
    }

    fn type_is_known_shallow(&self, ty: &Type) -> bool {
        match ty {
            Type::Struct(name) => self.info.structs.contains_key(name),
            Type::Ptr(t) => self.type_is_known_shallow(t),
            Type::Array(t, _) => self.type_is_known_shallow(t),
            _ => true,
        }
    }

    fn collect_globals(&mut self, program: &Program) {
        let mut addr = 1usize; // cell 0 is a reserved null address
        for g in &program.globals {
            if self.info.global_index.contains_key(&g.name) {
                self.err(g.span, format!("duplicate global `{}`", g.name));
                continue;
            }
            if !self.type_is_known(&g.ty) {
                self.err(
                    g.span,
                    format!("global `{}` has unknown struct type", g.name),
                );
                continue;
            }
            if g.ty == Type::Void {
                self.err(g.span, "globals cannot have type void");
                continue;
            }
            let size = self.info.size_of(&g.ty);
            let init = match &g.init {
                None => None,
                Some(init) => self.flatten_init(&g.ty, init, g.span).ok(),
            };
            let id = self.info.globals.len();
            self.info.global_index.insert(g.name.clone(), id);
            self.info.globals.push(GlobalLayout {
                name: g.name.clone(),
                ty: g.ty.clone(),
                addr,
                size,
                is_const: g.is_const,
                init,
            });
            addr += size;
        }
        self.info.global_region = addr;
    }

    /// Flattens a (possibly nested) initializer into one value per cell.
    fn flatten_init(&mut self, ty: &Type, init: &Init, span: Span) -> Result<Vec<ConstVal>, ()> {
        match (ty, init) {
            (Type::Int, Init::Scalar(e)) => {
                let v = self.const_eval(e)?;
                Ok(vec![ConstVal::Int(as_int(v))])
            }
            (Type::Float, Init::Scalar(e)) => {
                let v = self.const_eval(e)?;
                Ok(vec![ConstVal::Float(as_float(v))])
            }
            (Type::Array(elem, n), Init::List(items)) => {
                if items.len() > *n {
                    self.err(
                        span,
                        format!("too many initializers ({} > {n})", items.len()),
                    );
                    return Err(());
                }
                let elem_size = self.info.size_of(elem);
                let mut cells = Vec::with_capacity(n * elem_size);
                for item in items {
                    cells.extend(self.flatten_init(elem, item, span)?);
                }
                // Zero-fill the remainder, as C does.
                let zero = if matches!(**elem, Type::Float) {
                    ConstVal::Float(0.0)
                } else {
                    ConstVal::Int(0)
                };
                while cells.len() < n * elem_size {
                    cells.push(zero);
                }
                Ok(cells)
            }
            (Type::Array(..), Init::Scalar(e)) => {
                self.err(e.span, "array initializer must be a brace list");
                Err(())
            }
            (_, Init::List(_)) => {
                self.err(span, "brace list initializer on a scalar global");
                Err(())
            }
            (Type::Ptr(_) | Type::Func(_) | Type::Struct(_) | Type::Void, Init::Scalar(e)) => {
                self.err(
                    e.span,
                    "only int/float globals and arrays can be initialized",
                );
                Err(())
            }
        }
    }

    /// Evaluates a constant expression (for global initializers).
    fn const_eval(&mut self, e: &Expr) -> Result<ConstVal, ()> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(ConstVal::Int(*v)),
            ExprKind::FloatLit(v) => Ok(ConstVal::Float(*v)),
            ExprKind::Unary(UnOp::Neg, a) => match self.const_eval(a)? {
                ConstVal::Int(v) => Ok(ConstVal::Int(v.wrapping_neg())),
                ConstVal::Float(v) => Ok(ConstVal::Float(-v)),
            },
            ExprKind::Unary(UnOp::BitNot, a) => {
                let v = as_int(self.const_eval(a)?);
                Ok(ConstVal::Int(!v))
            }
            ExprKind::Cast(Type::Int, a) => Ok(ConstVal::Int(as_int(self.const_eval(a)?))),
            ExprKind::Cast(Type::Float, a) => Ok(ConstVal::Float(as_float(self.const_eval(a)?))),
            ExprKind::Binary(op, a, b) => {
                let a = self.const_eval(a)?;
                let b = self.const_eval(b)?;
                const_binary(*op, a, b).ok_or_else(|| {
                    self.err(e.span, "unsupported operator in constant expression");
                })
            }
            _ => {
                self.err(e.span, "global initializers must be constant expressions");
                Err(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Functions and statements
    // ------------------------------------------------------------------

    fn check_func(&mut self, f: &FuncDef) {
        self.frame = FrameLayout::default();
        self.scopes = vec![HashMap::new()];
        self.current_ret = f.ret.clone();
        self.loop_depth = 0;

        let mut offset = 0usize;
        for p in &f.params {
            if !self.type_is_known(&p.ty) {
                self.err(p.span, format!("parameter `{}` has unknown type", p.name));
                continue;
            }
            let size = self.info.size_of(&p.ty);
            self.frame.param_offsets.push(offset);
            if self
                .scopes
                .last_mut()
                .expect("scope")
                .insert(p.name.clone(), (offset, p.ty.clone()))
                .is_some()
            {
                self.err(p.span, format!("duplicate parameter `{}`", p.name));
            }
            offset += size;
        }
        self.frame.size = offset;

        self.check_block(&f.body, false);

        self.info.frames.push(std::mem::take(&mut self.frame));
    }

    fn check_block(&mut self, b: &Block, new_scope: bool) {
        if new_scope {
            self.scopes.push(HashMap::new());
        }
        for s in &b.stmts {
            self.check_stmt(s);
        }
        if new_scope {
            self.scopes.pop();
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                if !self.type_is_known(ty) {
                    self.err(s.span, format!("local `{name}` has unknown struct type"));
                    return;
                }
                if *ty == Type::Void {
                    self.err(s.span, format!("local `{name}` cannot have type void"));
                    return;
                }
                if let Some(e) = init {
                    if !ty.is_scalar() {
                        self.err(s.span, "only scalar locals can have initializers");
                    }
                    if let Some(got) = self.type_expr(e) {
                        self.require_assignable(ty, &got, e.span);
                    }
                }
                let size = self.info.size_of(ty);
                let offset = self.frame.size;
                self.frame.size += size;
                self.frame.decl_offsets.insert(s.id, offset);
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), (offset, ty.clone()));
            }
            StmtKind::Expr(e) => {
                self.type_expr(e);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.check_cond(cond);
                self.check_block(then_blk, true);
                if let Some(b) = else_blk {
                    self.check_block(b, true);
                }
            }
            StmtKind::While { cond, body } => {
                self.check_cond(cond);
                self.loop_depth += 1;
                self.check_block(body, true);
                self.loop_depth -= 1;
            }
            StmtKind::DoWhile { body, cond } => {
                self.loop_depth += 1;
                self.check_block(body, true);
                self.loop_depth -= 1;
                self.check_cond(cond);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.check_stmt(init);
                }
                if let Some(cond) = cond {
                    self.check_cond(cond);
                }
                if let Some(step) = step {
                    self.type_expr(step);
                }
                self.loop_depth += 1;
                self.check_block(body, true);
                self.loop_depth -= 1;
                self.scopes.pop();
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    self.err(s.span, "`break`/`continue` outside of a loop");
                }
            }
            StmtKind::Return(value) => match (value, self.current_ret.clone()) {
                (None, Type::Void) => {}
                (None, ret) => self.err(s.span, format!("function returns {ret}, missing value")),
                (Some(e), Type::Void) => {
                    self.err(e.span, "void function cannot return a value");
                    self.type_expr(e);
                }
                (Some(e), ret) => {
                    if let Some(got) = self.type_expr(e) {
                        self.require_assignable(&ret, &got, e.span);
                    }
                }
            },
            StmtKind::Block(b) => self.check_block(b, true),
            StmtKind::Profile(p) => {
                for (idx, op) in p.inputs.iter().enumerate() {
                    self.check_operand(s.id, idx, op, s.span);
                }
                self.check_block(&p.body, true);
            }
            StmtKind::Memo(m) => {
                for (idx, op) in m.inputs.iter().chain(m.outputs.iter()).enumerate() {
                    self.check_operand(s.id, idx, op, s.span);
                }
                for dep in &m.deps {
                    let Some(&gid) = self.info.global_index.get(&dep.name) else {
                        self.err(
                            s.span,
                            format!("memo dependency `{}` is not a global", dep.name),
                        );
                        continue;
                    };
                    let words = self.info.size_of(&self.info.globals[gid].ty);
                    if words != dep.words {
                        self.err(
                            s.span,
                            format!(
                                "memo dependency `{}` covers {} words, global has {words}",
                                dep.name, dep.words
                            ),
                        );
                    }
                }
                self.check_block(&m.body, true);
            }
        }
    }

    fn check_cond(&mut self, e: &Expr) {
        if let Some(ty) = self.type_expr(e) {
            let ty = decay(&ty);
            if !(ty.is_arith() || matches!(ty, Type::Ptr(_))) {
                self.err(e.span, format!("condition has non-scalar type {ty}"));
            }
        }
    }

    /// Resolves and validates a memo/profile operand.
    fn check_operand(&mut self, stmt_id: NodeId, idx: usize, op: &MemoOperand, span: Span) {
        let Some((res, ty)) = self.lookup_var(&op.name) else {
            self.err(span, format!("memo operand `{}` is not in scope", op.name));
            return;
        };
        let elem_matches = |t: &Type| {
            matches!(
                (op.elem, t),
                (ScalarKind::Int, Type::Int) | (ScalarKind::Float, Type::Float)
            )
        };
        let ok = match op.shape {
            OperandShape::Scalar => elem_matches(&ty),
            OperandShape::Array(n) => {
                matches!(&ty, Type::Array(elem, len) if *len == n && elem_matches(elem))
            }
            OperandShape::Deref(_) => matches!(&ty, Type::Ptr(elem) if elem_matches(elem)),
        };
        if !ok {
            self.err(
                span,
                format!(
                    "memo operand `{}` has type {ty}, incompatible with its declared shape",
                    op.name
                ),
            );
            return;
        }
        self.info.operand_res.insert((stmt_id, idx), res);
    }

    /// Looks a name up in the local scopes, then globals, then functions.
    fn lookup_var(&self, name: &str) -> Option<(Res, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some((offset, ty)) = scope.get(name) {
                return Some((Res::Slot(*offset), ty.clone()));
            }
        }
        if let Some(&gid) = self.info.global_index.get(name) {
            return Some((Res::Global(gid), self.info.globals[gid].ty.clone()));
        }
        if let Some(&fid) = self.info.func_index.get(name) {
            return Some((Res::Func(fid), Type::Func(Box::new(func_sig_of(self, fid)))));
        }
        if let Some(b) = Builtin::by_name(name) {
            return Some((Res::Builtin(b), builtin_type(b)));
        }
        None
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Type-checks `e`, records its type, and returns it (None on error).
    fn type_expr(&mut self, e: &Expr) -> Option<Type> {
        let ty = self.type_expr_inner(e)?;
        self.info.expr_types.insert(e.id, ty.clone());
        Some(ty)
    }

    fn type_expr_inner(&mut self, e: &Expr) -> Option<Type> {
        match &e.kind {
            ExprKind::IntLit(_) => Some(Type::Int),
            ExprKind::FloatLit(_) => Some(Type::Float),
            ExprKind::Var(name) => {
                let Some((res, ty)) = self.lookup_var(name) else {
                    self.err(e.span, format!("unknown identifier `{name}`"));
                    return None;
                };
                self.info.res.insert(e.id, res);
                Some(ty)
            }
            ExprKind::Unary(op, a) => self.type_unary(e, *op, a),
            ExprKind::Binary(op, a, b) => self.type_binary(e, *op, a, b),
            ExprKind::IncDec(_, a) => {
                let ty = self.type_expr(a)?;
                if !self.is_lvalue(a) {
                    self.err(a.span, "operand of ++/-- must be an lvalue");
                    return None;
                }
                let ty = decay(&ty);
                if !(ty.is_arith() || matches!(ty, Type::Ptr(_))) {
                    self.err(a.span, format!("cannot increment value of type {ty}"));
                    return None;
                }
                Some(ty)
            }
            ExprKind::Assign(lhs, rhs) => {
                let lty = self.type_expr(lhs)?;
                let rty = self.type_expr(rhs)?;
                if !self.is_lvalue(lhs) {
                    self.err(lhs.span, "left side of assignment must be an lvalue");
                    return None;
                }
                if !lty.is_scalar() {
                    self.err(lhs.span, format!("cannot assign to value of type {lty}"));
                    return None;
                }
                self.require_assignable(&lty, &rty, rhs.span);
                Some(lty)
            }
            ExprKind::AssignOp(op, lhs, rhs) => {
                let lty = self.type_expr(lhs)?;
                let rty = self.type_expr(rhs)?;
                if !self.is_lvalue(lhs) {
                    self.err(lhs.span, "left side of assignment must be an lvalue");
                    return None;
                }
                let l = decay(&lty);
                let r = decay(&rty);
                // `p += i` pointer stepping is allowed for Add/Sub.
                if matches!(l, Type::Ptr(_)) && matches!(*op, BinOp::Add | BinOp::Sub) {
                    if r != Type::Int {
                        self.err(rhs.span, "pointer step must be an integer");
                    }
                    return Some(l);
                }
                if !l.is_arith() || !r.is_arith() {
                    self.err(e.span, format!("invalid operands {l} {} {r}", op.glyph()));
                    return None;
                }
                if op.int_only() && (l == Type::Float || r == Type::Float) {
                    self.err(e.span, format!("operator {} requires integers", op.glyph()));
                    return None;
                }
                Some(l)
            }
            ExprKind::Ternary(c, t, f) => {
                self.check_cond(c);
                let tt = self.type_expr(t)?;
                let ft = self.type_expr(f)?;
                let tt = decay(&tt);
                let ft = decay(&ft);
                if tt == ft {
                    Some(tt)
                } else if tt.is_arith() && ft.is_arith() {
                    Some(Type::Float)
                } else {
                    self.err(e.span, format!("ternary branches have types {tt} and {ft}"));
                    None
                }
            }
            ExprKind::Call(callee, args) => self.type_call(e, callee, args),
            ExprKind::Index(base, idx) => {
                let bty = self.type_expr(base)?;
                let ity = self.type_expr(idx)?;
                if decay(&ity) != Type::Int {
                    self.err(idx.span, "array index must be an integer");
                }
                match decay(&bty) {
                    Type::Ptr(elem) => Some(*elem),
                    other => {
                        self.err(base.span, format!("cannot index value of type {other}"));
                        None
                    }
                }
            }
            ExprKind::Member(base, field) => {
                let bty = self.type_expr(base)?;
                let Type::Struct(sname) = &bty else {
                    self.err(base.span, format!("member access on non-struct type {bty}"));
                    return None;
                };
                self.resolve_field(e, sname, field)
            }
            ExprKind::Arrow(base, field) => {
                let bty = self.type_expr(base)?;
                let bty = decay(&bty);
                let Type::Ptr(inner) = &bty else {
                    self.err(base.span, format!("`->` on non-pointer type {bty}"));
                    return None;
                };
                let Type::Struct(sname) = inner.as_ref() else {
                    self.err(base.span, format!("`->` on pointer to non-struct {inner}"));
                    return None;
                };
                let sname = sname.clone();
                self.resolve_field(e, &sname, field)
            }
            ExprKind::Cast(ty, a) => {
                let aty = self.type_expr(a)?;
                let aty = decay(&aty);
                // The target type is user input too: a cast to (a pointer
                // to) an undeclared struct must be a diagnostic here, not
                // a panic when lowering asks for the struct's size.
                if !self.type_is_known_shallow(ty) {
                    self.err(e.span, format!("cast to unknown struct type {ty}"));
                    return None;
                }
                let ok = matches!(
                    (ty, &aty),
                    (Type::Int, Type::Int | Type::Float)
                        | (Type::Float, Type::Int | Type::Float)
                        | (Type::Ptr(_), Type::Ptr(_))
                        | (Type::Int, Type::Ptr(_))
                );
                if !ok {
                    self.err(e.span, format!("invalid cast from {aty} to {ty}"));
                    return None;
                }
                Some(ty.clone())
            }
        }
    }

    fn resolve_field(&mut self, e: &Expr, sname: &str, field: &str) -> Option<Type> {
        let Some(layout) = self.info.structs.get(sname) else {
            self.err(e.span, format!("unknown struct `{sname}`"));
            return None;
        };
        let Some((_, fty, offset)) = layout.field(field) else {
            self.err(
                e.span,
                format!("struct `{sname}` has no field named `{field}`"),
            );
            return None;
        };
        let (fty, offset) = (fty.clone(), *offset);
        self.info.field_offsets.insert(e.id, offset);
        Some(fty)
    }

    fn type_unary(&mut self, e: &Expr, op: UnOp, a: &Expr) -> Option<Type> {
        let aty = self.type_expr(a)?;
        match op {
            UnOp::Neg => {
                let t = decay(&aty);
                if !t.is_arith() {
                    self.err(e.span, format!("cannot negate value of type {t}"));
                    return None;
                }
                Some(t)
            }
            UnOp::Not => {
                let t = decay(&aty);
                if !(t.is_arith() || matches!(t, Type::Ptr(_))) {
                    self.err(e.span, format!("cannot apply `!` to type {t}"));
                    return None;
                }
                Some(Type::Int)
            }
            UnOp::BitNot => {
                if decay(&aty) != Type::Int {
                    self.err(e.span, "`~` requires an integer operand");
                    return None;
                }
                Some(Type::Int)
            }
            UnOp::Deref => match decay(&aty) {
                Type::Ptr(inner) => Some(*inner),
                Type::Func(sig) => Some(Type::Func(sig)), // (*fp)(...) as in C
                other => {
                    self.err(e.span, format!("cannot dereference type {other}"));
                    None
                }
            },
            UnOp::Addr => {
                if !self.is_lvalue(a) {
                    self.err(a.span, "`&` requires an lvalue operand");
                    return None;
                }
                Some(Type::ptr(aty))
            }
        }
    }

    fn type_binary(&mut self, e: &Expr, op: BinOp, a: &Expr, b: &Expr) -> Option<Type> {
        let aty = self.type_expr(a)?;
        let bty = self.type_expr(b)?;
        let l = decay(&aty);
        let r = decay(&bty);

        // Pointer arithmetic and comparison.
        match (&l, &r) {
            (Type::Ptr(_), Type::Int) if matches!(op, BinOp::Add | BinOp::Sub) => {
                return Some(l);
            }
            (Type::Int, Type::Ptr(_)) if op == BinOp::Add => {
                return Some(r);
            }
            (Type::Ptr(pa), Type::Ptr(pb)) => {
                if op == BinOp::Sub {
                    if pa != pb {
                        self.err(e.span, "pointer difference requires matching types");
                    }
                    return Some(Type::Int);
                }
                if op.is_comparison() {
                    if pa != pb {
                        self.err(e.span, "pointer comparison requires matching types");
                    }
                    return Some(Type::Int);
                }
                self.err(
                    e.span,
                    format!("invalid pointer operands for {}", op.glyph()),
                );
                return None;
            }
            _ => {}
        }

        if !l.is_arith() || !r.is_arith() {
            self.err(e.span, format!("invalid operands {l} {} {r}", op.glyph()));
            return None;
        }
        if op.int_only() && (l == Type::Float || r == Type::Float) {
            self.err(e.span, format!("operator {} requires integers", op.glyph()));
            return None;
        }
        if op.is_comparison() {
            return Some(Type::Int);
        }
        if l == Type::Float || r == Type::Float {
            Some(Type::Float)
        } else {
            Some(Type::Int)
        }
    }

    fn type_call(&mut self, e: &Expr, callee: &Expr, args: &[Expr]) -> Option<Type> {
        // Builtins get bespoke signatures.
        if let ExprKind::Var(name) = &callee.kind {
            if self.lookup_local_or_global(name).is_none()
                && !self.info.func_index.contains_key(name)
            {
                if let Some(b) = Builtin::by_name(name) {
                    self.info.res.insert(callee.id, Res::Builtin(b));
                    self.info.expr_types.insert(callee.id, builtin_type(b));
                    return self.type_builtin_call(e, b, args);
                }
            }
        }

        let cty = self.type_expr(callee)?;
        let sig = match decay(&cty) {
            Type::Func(sig) => *sig,
            Type::Ptr(inner) => match *inner {
                Type::Func(sig) => *sig,
                other => {
                    self.err(callee.span, format!("cannot call value of type {other}*"));
                    return None;
                }
            },
            other => {
                self.err(callee.span, format!("cannot call value of type {other}"));
                return None;
            }
        };
        if args.len() != sig.params.len() {
            self.err(
                e.span,
                format!(
                    "expected {} arguments, found {}",
                    sig.params.len(),
                    args.len()
                ),
            );
        }
        for (arg, pty) in args.iter().zip(&sig.params) {
            if let Some(aty) = self.type_expr(arg) {
                self.require_assignable(pty, &aty, arg.span);
            }
        }
        // Type-check extra args (arity error already reported).
        for arg in args.iter().skip(sig.params.len()) {
            self.type_expr(arg);
        }
        Some(sig.ret)
    }

    fn type_builtin_call(&mut self, e: &Expr, b: Builtin, args: &[Expr]) -> Option<Type> {
        let (arity, ret) = match b {
            Builtin::Print => (1, Type::Void),
            Builtin::Input => (0, Type::Int),
            Builtin::Eof => (0, Type::Int),
            Builtin::Assert => (1, Type::Void),
        };
        if args.len() != arity {
            self.err(
                e.span,
                format!("builtin takes {arity} argument(s), found {}", args.len()),
            );
        }
        for arg in args {
            if let Some(aty) = self.type_expr(arg) {
                let t = decay(&aty);
                if !t.is_arith() {
                    self.err(arg.span, format!("builtin argument has type {t}"));
                }
            }
        }
        Some(ret)
    }

    fn lookup_local_or_global(&self, name: &str) -> Option<()> {
        for scope in self.scopes.iter().rev() {
            if scope.contains_key(name) {
                return Some(());
            }
        }
        if self.info.global_index.contains_key(name) {
            return Some(());
        }
        None
    }

    /// Whether `ty_from` can be implicitly assigned to `ty_to`.
    fn require_assignable(&mut self, to: &Type, from: &Type, span: Span) {
        let to = decay(to);
        let from = decay(&from.clone());
        let ok = match (&to, &from) {
            (Type::Int | Type::Float, Type::Int | Type::Float) => true,
            // `p = 0` (null assignment); non-zero integers trap at run time.
            (Type::Ptr(_), Type::Int) => true,
            (Type::Ptr(a), Type::Ptr(b)) => a == b,
            (Type::Func(a), Type::Func(b)) => a == b,
            // `fp = func` where func has matching signature (func names
            // have Func type directly).
            (Type::Ptr(a), Type::Func(b)) => matches!(a.as_ref(), Type::Func(s) if s == b),
            _ => false,
        };
        if !ok {
            self.err(span, format!("cannot assign {from} to {to}"));
        }
    }

    /// Whether `e` denotes a memory location.
    fn is_lvalue(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Var(name) => {
                // Function names and builtins are not lvalues.
                !matches!(
                    self.info.res.get(&e.id),
                    Some(Res::Func(_)) | Some(Res::Builtin(_))
                ) && self.lookup_var(name).is_some()
            }
            ExprKind::Unary(UnOp::Deref, _) => true,
            ExprKind::Index(_, _) => true,
            ExprKind::Member(base, _) => self.is_lvalue(base),
            ExprKind::Arrow(_, _) => true,
            _ => false,
        }
    }
}

/// Array-to-pointer decay (C semantics) applied to a computed type.
pub fn decay(ty: &Type) -> Type {
    match ty {
        Type::Array(elem, _) => Type::Ptr(elem.clone()),
        other => other.clone(),
    }
}

fn func_sig_of(c: &Checker, fid: usize) -> FuncSig {
    // The signature is reconstructed from the layouts gathered at
    // registration time; stored in func_sigs for cheap access.
    c.func_sigs
        .get(fid)
        .cloned()
        .expect("function signature registered")
}

fn builtin_type(b: Builtin) -> Type {
    let sig = match b {
        Builtin::Print => FuncSig {
            params: vec![Type::Int],
            ret: Type::Void,
        },
        Builtin::Input => FuncSig {
            params: vec![],
            ret: Type::Int,
        },
        Builtin::Eof => FuncSig {
            params: vec![],
            ret: Type::Int,
        },
        Builtin::Assert => FuncSig {
            params: vec![Type::Int],
            ret: Type::Void,
        },
    };
    Type::Func(Box::new(sig))
}

fn as_int(v: ConstVal) -> i64 {
    match v {
        ConstVal::Int(i) => i,
        ConstVal::Float(f) => f as i64,
    }
}

fn as_float(v: ConstVal) -> f64 {
    match v {
        ConstVal::Int(i) => i as f64,
        ConstVal::Float(f) => f,
    }
}

fn const_binary(op: BinOp, a: ConstVal, b: ConstVal) -> Option<ConstVal> {
    use BinOp::*;
    if let (ConstVal::Int(x), ConstVal::Int(y)) = (a, b) {
        let v = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            BitAnd => x & y,
            BitOr => x | y,
            BitXor => x ^ y,
            Lt => (x < y) as i64,
            Le => (x <= y) as i64,
            Gt => (x > y) as i64,
            Ge => (x >= y) as i64,
            Eq => (x == y) as i64,
            Ne => (x != y) as i64,
            LogAnd => ((x != 0) && (y != 0)) as i64,
            LogOr => ((x != 0) || (y != 0)) as i64,
        };
        return Some(ConstVal::Int(v));
    }
    let x = as_float(a);
    let y = as_float(b);
    let v = match op {
        Add => x + y,
        Sub => x - y,
        Mul => x * y,
        Div => x / y,
        Lt => return Some(ConstVal::Int((x < y) as i64)),
        Le => return Some(ConstVal::Int((x <= y) as i64)),
        Gt => return Some(ConstVal::Int((x > y) as i64)),
        Ge => return Some(ConstVal::Int((x >= y) as i64)),
        Eq => return Some(ConstVal::Int((x == y) as i64)),
        Ne => return Some(ConstVal::Int((x != y) as i64)),
        _ => return None,
    };
    Some(ConstVal::Float(v))
}
