//! Source positions and spans.
//!
//! Every token, expression, and statement carries a [`Span`] — a half-open
//! byte range into the original source text. A [`LineMap`] converts byte
//! offsets back to 1-based line/column pairs for diagnostics.

use std::fmt;

/// A half-open byte range `[lo, hi)` into a source string.
///
/// # Examples
///
/// ```
/// use minic::span::Span;
/// let s = Span::new(3, 7);
/// assert_eq!(s.len(), 4);
/// assert!(!s.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering bytes `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "span lo must not exceed hi");
        Span { lo, hi }
    }

    /// A zero-length placeholder span (used by synthesized AST nodes).
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// The smallest span containing both `self` and `other`.
    ///
    /// ```
    /// use minic::span::Span;
    /// assert_eq!(Span::new(1, 3).merge(Span::new(5, 9)), Span::new(1, 9));
    /// ```
    pub fn merge(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A 1-based line and column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets of a source string to line/column positions.
///
/// # Examples
///
/// ```
/// use minic::span::LineMap;
/// let map = LineMap::new("ab\ncd");
/// assert_eq!(map.line_col(0).line, 1);
/// assert_eq!(map.line_col(3).line, 2);
/// assert_eq!(map.line_col(4).col, 2);
/// ```
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset of the start of each line.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map for `source`.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Converts a byte `offset` to a 1-based line/column.
    ///
    /// Offsets past the end of the source map to the final line.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Total number of lines in the mapped source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_is_commutative() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 10);
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(b), Span::new(2, 10));
    }

    #[test]
    fn dummy_span_is_empty() {
        assert!(Span::DUMMY.is_empty());
        assert_eq!(Span::DUMMY.len(), 0);
    }

    #[test]
    #[should_panic(expected = "span lo must not exceed hi")]
    fn inverted_span_panics() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn line_map_single_line() {
        let map = LineMap::new("hello");
        assert_eq!(map.line_count(), 1);
        let lc = map.line_col(4);
        assert_eq!((lc.line, lc.col), (1, 5));
    }

    #[test]
    fn line_map_multi_line() {
        let src = "int x;\nint y;\n\nint z;";
        let map = LineMap::new(src);
        assert_eq!(map.line_count(), 4);
        // 'y' is at offset 11: line 2, col 5.
        assert_eq!(src.as_bytes()[11], b'y');
        let lc = map.line_col(11);
        assert_eq!((lc.line, lc.col), (2, 5));
        // Start of line 4.
        let z_off = src.find('z').unwrap() as u32;
        assert_eq!(map.line_col(z_off).line, 4);
    }

    #[test]
    fn line_map_offset_at_newline_boundary() {
        let map = LineMap::new("a\nb");
        // Offset 2 is exactly the start of line 2.
        let lc = map.line_col(2);
        assert_eq!((lc.line, lc.col), (2, 1));
        // Offset 1 (the newline itself) belongs to line 1.
        assert_eq!(map.line_col(1).line, 1);
    }

    #[test]
    fn line_col_display() {
        assert_eq!(LineCol { line: 3, col: 9 }.to_string(), "3:9");
    }
}
