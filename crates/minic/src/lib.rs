//! # minic — a C-subset front-end for computation-reuse research
//!
//! This crate is the language substrate of the `compreuse` workspace, a
//! reproduction of *"A Compiler Scheme for Reusing Intermediate Computation
//! Results"* (Ding & Li, CGO 2004). The paper implements its scheme inside
//! GCC for C; this workspace implements the whole stack from scratch, and
//! `minic` plays GCC's front-end role: it turns C-like source text into a
//! typed AST that the analyses, the reuse transformation, and the profiling
//! VM all operate on.
//!
//! The language supports what the paper's benchmarks need: `int`/`float`
//! scalars, fixed-size arrays, pointers with arithmetic, structs, function
//! pointers (the paper's call-graph construction handles them), the full C
//! expression/statement repertoire, and global initializer lists.
//!
//! ## Pipeline
//!
//! ```
//! // Parse, check, and print back the paper's Figure 2(a) example.
//! let src = "
//!     int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128,
//!                       256, 512, 1024, 2048, 4096, 8192, 16384};
//!     int quan(int val) {
//!         int i;
//!         for (i = 0; i < 15; i++)
//!             if (val < power2[i])
//!                 break;
//!         return i;
//!     }";
//! let program = minic::parse(src)?;
//! let checked = minic::check(program).expect("well-typed");
//! let printed = minic::pretty::print_program(&checked.program);
//! assert!(printed.contains("int quan(int val)"));
//! # Ok::<(), minic::error::Diag>(())
//! ```
//!
//! Two AST statement forms never appear in source text:
//! [`ast::StmtKind::Profile`] (a value-set profiling probe) and
//! [`ast::StmtKind::Memo`] (a memoized segment, the paper's `check_hash`
//! rewrite). They are inserted by the `compreuse` crate's transformation and
//! executed natively by the `vm` crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::Program;
pub use parser::parse;
pub use sema::{check, Checked, SemaInfo};

/// Parses and checks source in one step.
///
/// # Errors
///
/// Returns rendered diagnostics (with line/column positions) on any
/// lexical, syntactic, or semantic error.
///
/// # Examples
///
/// ```
/// let checked = minic::compile("int main() { return 42; }")?;
/// assert_eq!(checked.program.funcs.len(), 1);
/// # Ok::<(), String>(())
/// ```
pub fn compile(source: &str) -> Result<Checked, String> {
    let map = span::LineMap::new(source);
    let program = parse(source).map_err(|d| d.render(&map))?;
    check(program).map_err(|ds| ds.render(&map))
}
