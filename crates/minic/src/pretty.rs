//! Pretty-printer: renders an AST back to MiniC source text.
//!
//! The output re-parses to an equivalent AST (round-trip property, tested
//! with proptest in `tests/roundtrip.rs`). Inserted [`StmtKind::Memo`] and
//! [`StmtKind::Profile`] statements are rendered in the paper's
//! `check_hash(...)` pseudo-C style (Fig. 2(b)) inside comment-delimited
//! markers; such programs are for human inspection and do not re-parse.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as MiniC source.
///
/// # Examples
///
/// ```
/// let prog = minic::parse("int main() { return 1 + 2; }")?;
/// let text = minic::pretty::print_program(&prog);
/// assert!(text.contains("return 1 + 2;"));
/// # Ok::<(), minic::error::Diag>(())
/// ```
pub fn print_program(p: &Program) -> String {
    let mut pr = Printer::new();
    for s in &p.structs {
        pr.struct_def(s);
        pr.blank();
    }
    for g in &p.globals {
        pr.global(g);
    }
    if !p.globals.is_empty() {
        pr.blank();
    }
    for (i, f) in p.funcs.iter().enumerate() {
        if i > 0 {
            pr.blank();
        }
        pr.func(f);
    }
    pr.out
}

/// Renders a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut pr = Printer::new();
    pr.expr(e, 0);
    pr.out
}

/// Renders a single statement at indent level 0.
pub fn print_stmt(s: &Stmt) -> String {
    let mut pr = Printer::new();
    pr.stmt(s);
    pr.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn blank(&mut self) {
        self.out.push('\n');
    }

    fn struct_def(&mut self, s: &StructDef) {
        self.line(&format!("struct {} {{", s.name));
        self.indent += 1;
        for f in &s.fields {
            let d = declare(&f.ty, &f.name);
            self.line(&format!("{d};"));
        }
        self.indent -= 1;
        self.line("};");
    }

    fn global(&mut self, g: &GlobalDef) {
        let mut text = String::new();
        if g.is_const {
            text.push_str("const ");
        }
        text.push_str(&declare(&g.ty, &g.name));
        if let Some(init) = &g.init {
            text.push_str(" = ");
            self.init_text(init, &mut text);
        }
        text.push(';');
        self.line(&text);
    }

    fn init_text(&mut self, init: &Init, out: &mut String) {
        match init {
            Init::Scalar(e) => {
                let mut pr = Printer::new();
                pr.expr(e, 0);
                out.push_str(&pr.out);
            }
            Init::List(items) => {
                out.push('{');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.init_text(item, out);
                }
                out.push('}');
            }
        }
    }

    fn func(&mut self, f: &FuncDef) {
        let params = if f.params.is_empty() {
            "void".to_string()
        } else {
            f.params
                .iter()
                .map(|p| declare(&p.ty, &p.name))
                .collect::<Vec<_>>()
                .join(", ")
        };
        self.line(&format!("{} {}({}) {{", f.ret, f.name, params));
        self.indent += 1;
        for s in &f.body.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line("}");
    }

    fn block_body(&mut self, b: &Block) {
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let mut text = declare(ty, name);
                if let Some(e) = init {
                    let _ = write!(text, " = {}", print_expr(e));
                }
                text.push(';');
                self.line(&text);
            }
            StmtKind::Expr(e) => {
                self.line(&format!("{};", print_expr(e)));
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.line(&format!("if ({}) {{", print_expr(cond)));
                self.block_body(then_blk);
                match else_blk {
                    Some(b) => {
                        self.line("} else {");
                        self.block_body(b);
                        self.line("}");
                    }
                    None => self.line("}"),
                }
            }
            StmtKind::While { cond, body } => {
                self.line(&format!("while ({}) {{", print_expr(cond)));
                self.block_body(body);
                self.line("}");
            }
            StmtKind::DoWhile { body, cond } => {
                self.line("do {");
                self.block_body(body);
                self.line(&format!("}} while ({});", print_expr(cond)));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_text = match init {
                    None => ";".to_string(),
                    Some(s) => match &s.kind {
                        StmtKind::Decl { name, ty, init } => {
                            let mut t = declare(ty, name);
                            if let Some(e) = init {
                                let _ = write!(t, " = {}", print_expr(e));
                            }
                            t.push(';');
                            t
                        }
                        StmtKind::Expr(e) => format!("{};", print_expr(e)),
                        other => unreachable!("for-init is decl or expr, got {other:?}"),
                    },
                };
                let cond_text = cond.as_ref().map(print_expr).unwrap_or_default();
                let step_text = step.as_ref().map(print_expr).unwrap_or_default();
                self.line(&format!("for ({init_text} {cond_text}; {step_text}) {{"));
                self.block_body(body);
                self.line("}");
            }
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Return(Some(e)) => self.line(&format!("return {};", print_expr(e))),
            StmtKind::Block(b) => {
                self.line("{");
                self.block_body(b);
                self.line("}");
            }
            StmtKind::Profile(p) => {
                self.line(&format!(
                    "/* value-set profile probe: segment {} ({} inputs) */ {{",
                    p.segment,
                    p.inputs.len()
                ));
                self.block_body(&p.body);
                self.line("}");
            }
            StmtKind::Memo(m) => self.memo(m),
        }
    }

    /// Renders a memoized segment in the paper's Fig. 2(b) style.
    fn memo(&mut self, m: &MemoStmt) {
        let keys = m
            .inputs
            .iter()
            .map(|op| op.name.clone())
            .collect::<Vec<_>>()
            .join(", ");
        self.line(&format!("/* computation reuse: segment {} */", m.segment));
        if !m.deps.is_empty() {
            let deps = m
                .deps
                .iter()
                .map(|d| {
                    let kind = if d.mutable { "mut" } else { "inv" };
                    format!("{} {}[{}]", kind, d.name, d.words)
                })
                .collect::<Vec<_>>()
                .join(", ");
            self.line(&format!("/* deps: {deps} */"));
        }
        self.line(&format!(
            "if (check_hash({keys}, hash_table_{}, &key) == 0) {{",
            m.table
        ));
        self.block_body(&m.body);
        self.indent += 1;
        for op in &m.outputs {
            self.line(&format!(
                "hash_table_{}[key].{} = {};",
                m.table, op.name, op.name
            ));
        }
        if m.ret.is_some() {
            self.line(&format!("hash_table_{}[key].__ret = __ret;", m.table));
        }
        self.indent -= 1;
        self.line("} else {");
        self.indent += 1;
        for op in &m.outputs {
            self.line(&format!(
                "{} = hash_table_{}[key].{};",
                op.name, m.table, op.name
            ));
        }
        if m.ret.is_some() {
            self.line(&format!("return hash_table_{}[key].__ret;", m.table));
        }
        self.indent -= 1;
        self.line("}");
    }

    // ------------------------------------------------------------------
    // Expressions, with parenthesization driven by precedence.
    // ------------------------------------------------------------------

    fn expr(&mut self, e: &Expr, parent_prec: u8) {
        let prec = expr_prec(e);
        let need_parens = prec < parent_prec;
        if need_parens {
            self.out.push('(');
        }
        match &e.kind {
            ExprKind::IntLit(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::FloatLit(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::Var(name) => self.out.push_str(name),
            ExprKind::Unary(op, a) => {
                self.out.push_str(op.glyph());
                self.prefix_operand(a);
            }
            ExprKind::IncDec(op, a) => {
                if op.is_prefix() {
                    self.out.push_str(if op.delta() > 0 { "++" } else { "--" });
                    self.prefix_operand(a);
                } else {
                    self.expr(a, POSTFIX_PREC);
                    self.out.push_str(if op.delta() > 0 { "++" } else { "--" });
                }
            }
            ExprKind::Binary(op, a, b) => {
                let p = binop_prec(*op);
                self.expr(a, p);
                let _ = write!(self.out, " {} ", op.glyph());
                self.expr(b, p + 1);
            }
            ExprKind::Assign(a, b) => {
                self.expr(a, UNARY_PREC);
                self.out.push_str(" = ");
                self.expr(b, ASSIGN_PREC);
            }
            ExprKind::AssignOp(op, a, b) => {
                self.expr(a, UNARY_PREC);
                let _ = write!(self.out, " {}= ", op.glyph());
                self.expr(b, ASSIGN_PREC);
            }
            ExprKind::Ternary(c, t, f) => {
                self.expr(c, TERNARY_PREC + 1);
                self.out.push_str(" ? ");
                self.expr(t, ASSIGN_PREC);
                self.out.push_str(" : ");
                self.expr(f, TERNARY_PREC);
            }
            ExprKind::Call(callee, args) => {
                self.expr(callee, POSTFIX_PREC);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, ASSIGN_PREC);
                }
                self.out.push(')');
            }
            ExprKind::Index(base, idx) => {
                self.expr(base, POSTFIX_PREC);
                self.out.push('[');
                self.expr(idx, 0);
                self.out.push(']');
            }
            ExprKind::Member(base, field) => {
                self.expr(base, POSTFIX_PREC);
                let _ = write!(self.out, ".{field}");
            }
            ExprKind::Arrow(base, field) => {
                self.expr(base, POSTFIX_PREC);
                let _ = write!(self.out, "->{field}");
            }
            ExprKind::Cast(ty, a) => {
                let _ = write!(self.out, "({})", cast_type_text(ty));
                self.expr(a, UNARY_PREC);
            }
        }
        if need_parens {
            self.out.push(')');
        }
    }

    /// Prints the operand of a prefix operator, inserting a space when the
    /// operand's first character would otherwise glue with the operator
    /// into a different token (`- -a` must not become `--a`).
    fn prefix_operand(&mut self, a: &Expr) {
        let mut tmp = Printer::new();
        tmp.expr(a, UNARY_PREC);
        let last = self.out.chars().last();
        let first = tmp.out.chars().next();
        if let (Some(l), Some(f)) = (last, first) {
            if l == f && matches!(l, '-' | '+' | '&') {
                self.out.push(' ');
            }
        }
        self.out.push_str(&tmp.out);
    }
}

const ASSIGN_PREC: u8 = 1;
const TERNARY_PREC: u8 = 2;
const UNARY_PREC: u8 = 13;
const POSTFIX_PREC: u8 = 14;

fn binop_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Mul | Div | Rem => 12,
        Add | Sub => 11,
        Shl | Shr => 10,
        Lt | Le | Gt | Ge => 9,
        Eq | Ne => 8,
        BitAnd => 7,
        BitXor => 6,
        BitOr => 5,
        LogAnd => 4,
        LogOr => 3,
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Var(_) => POSTFIX_PREC + 1,
        ExprKind::Call(..) | ExprKind::Index(..) | ExprKind::Member(..) | ExprKind::Arrow(..) => {
            POSTFIX_PREC
        }
        ExprKind::IncDec(op, _) if !op.is_prefix() => POSTFIX_PREC,
        ExprKind::Unary(..) | ExprKind::IncDec(..) | ExprKind::Cast(..) => UNARY_PREC,
        ExprKind::Binary(op, ..) => binop_prec(*op),
        ExprKind::Ternary(..) => TERNARY_PREC,
        ExprKind::Assign(..) | ExprKind::AssignOp(..) => ASSIGN_PREC,
    }
}

/// Renders a C declaration of `name` with type `ty` (handles arrays and
/// function pointers).
fn declare(ty: &Type, name: &str) -> String {
    match ty {
        Type::Array(_, _) => {
            let mut dims = String::new();
            let mut cur = ty;
            while let Type::Array(elem, n) = cur {
                let _ = write!(dims, "[{n}]");
                cur = elem;
            }
            let (base, ptrs) = stars(cur);
            format!("{} {}{}{}", base_text(base), ptrs, name, dims)
        }
        Type::Func(sig) => {
            let params = if sig.params.is_empty() {
                "void".to_string()
            } else {
                sig.params
                    .iter()
                    .map(cast_type_text)
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            format!("{} (*{name})({params})", sig.ret)
        }
        _ => {
            let (base, ptrs) = stars(ty);
            format!("{} {}{}", base_text(base), ptrs, name)
        }
    }
}

/// Splits `ty` into its non-pointer base and a string of `*`s.
fn stars(ty: &Type) -> (&Type, String) {
    match ty {
        Type::Ptr(inner) => {
            let (base, s) = stars(inner);
            (base, format!("{s}*"))
        }
        other => (other, String::new()),
    }
}

fn base_text(ty: &Type) -> String {
    match ty {
        Type::Int => "int".to_string(),
        Type::Float => "float".to_string(),
        Type::Void => "void".to_string(),
        Type::Struct(name) => format!("struct {name}"),
        other => other.to_string(),
    }
}

/// Renders a type in cast position (base + stars only).
fn cast_type_text(ty: &Type) -> String {
    let (base, ptrs) = stars(ty);
    format!("{}{}", base_text(base), ptrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let p1 = parse(src).expect("first parse");
        let text = print_program(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{text}"));
        // Compare structure ignoring ids/spans by printing both.
        assert_eq!(text, print_program(&p2), "print is not a fixed point");
    }

    #[test]
    fn round_trips_quan() {
        round_trip(
            "int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
             int quan(int val) {
                 int i;
                 for (i = 0; i < 15; i++)
                     if (val < power2[i])
                         break;
                 return i;
             }",
        );
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip(
            "int main() {
                int acc = 0;
                int i = 0;
                while (i < 10) { if (i == 3) { continue; } acc += i; i++; }
                do { acc--; } while (acc > 40);
                for (;;) { break; }
                return acc > 0 ? acc : -acc;
            }",
        );
    }

    #[test]
    fn round_trips_pointers_and_structs() {
        round_trip(
            "struct point { int x; int y; };
             struct point origin;
             int grid[4][8];
             int get(struct point *p, int *q) { return p->x + *q + origin.y; }",
        );
    }

    #[test]
    fn round_trips_function_pointers() {
        round_trip(
            "int add(int a, int b) { return a + b; }
             int apply(int (*fp)(int, int), int x) { return fp(x, x); }
             int main() { int (*f)(int, int); f = add; return apply(f, 3); }",
        );
    }

    #[test]
    fn parenthesization_preserves_precedence() {
        // (1 + 2) * 3 must keep its parens.
        let p = parse("int main() { return (1 + 2) * 3; }").unwrap();
        let text = print_program(&p);
        assert!(text.contains("(1 + 2) * 3"), "got: {text}");
        round_trip("int main() { return (1 + 2) * 3; }");
    }

    #[test]
    fn nested_unary_and_casts() {
        round_trip("int main() { int x = 5; float f; f = (float)-x; return (int)f + ~x + !x; }");
    }

    #[test]
    fn deref_postinc_round_trips() {
        round_trip("int f(int *p) { return *p++; }");
    }

    #[test]
    fn memo_prints_check_hash_style() {
        let m = MemoStmt {
            segment: "quan:body".into(),
            table: 0,
            slot: 0,
            inputs: vec![MemoOperand::scalar("val", ScalarKind::Int)],
            outputs: vec![MemoOperand::scalar("i", ScalarKind::Int)],
            deps: vec![],
            ret: Some(ScalarKind::Int),
            body: Block::default(),
        };
        let s = Stmt::synth(StmtKind::Memo(m));
        let text = print_stmt(&s);
        assert!(
            text.contains("check_hash(val, hash_table_0, &key)"),
            "got: {text}"
        );
        assert!(text.contains("hash_table_0[key].i = i;"));
        assert!(text.contains("i = hash_table_0[key].i;"));
    }

    #[test]
    fn shift_inside_comparison_keeps_meaning() {
        round_trip("int main() { int a = 1; int b = 9; return a << 2 < b; }");
    }

    #[test]
    fn ternary_nesting_round_trips() {
        round_trip("int main() { int a = 1; return a ? a ? 1 : 2 : 3; }");
    }
}
