//! Recursive-descent parser for MiniC.
//!
//! Produces an unnumbered [`Program`] (all node ids are [`NodeId::DUMMY`]);
//! run [`sema::check`](crate::sema::check) to number nodes and attach types.
//!
//! Grammar highlights:
//! - top level: struct definitions, global variables (with brace
//!   initializer lists), function definitions and prototypes;
//! - declarators: `int **p`, `int a[8][8]`, function pointers
//!   `int (*fp)(int, int)`;
//! - full C expression set with the usual precedence, short-circuit
//!   `&&`/`||`, ternary, casts `(int)x`/`(float*)p`, compound assignment,
//!   and prefix/postfix `++`/`--`.

use crate::ast::*;
use crate::error::{Diag, Phase};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses MiniC source text into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// let prog = minic::parse("int main() { return 2 + 3; }")?;
/// assert_eq!(prog.funcs.len(), 1);
/// assert_eq!(prog.funcs[0].name, "main");
/// # Ok::<(), minic::error::Diag>(())
/// ```
pub fn parse(source: &str) -> Result<Program, Diag> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Span, Diag> {
        if self.peek() == &kind {
            Ok(self.bump().span)
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diag> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn error(&self, msg: impl Into<String>) -> Diag {
        Diag::new(Phase::Parse, self.span(), msg)
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<Program, Diag> {
        let mut prog = Program::default();
        while self.peek() != &TokenKind::Eof {
            if self.peek() == &TokenKind::KwStruct && self.peek_at(2) == &TokenKind::LBrace {
                prog.structs.push(self.struct_def()?);
                continue;
            }
            self.top_level_item(&mut prog)?;
        }
        Ok(prog)
    }

    fn struct_def(&mut self) -> Result<StructDef, Diag> {
        let start = self.expect(TokenKind::KwStruct)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            let base = self.base_type()?;
            let (field_name, ty, fspan) = self.declarator(base)?;
            fields.push(Param {
                name: field_name,
                ty,
                span: fspan,
            });
            self.expect(TokenKind::Semi)?;
        }
        self.expect(TokenKind::RBrace)?;
        let end = self.expect(TokenKind::Semi)?;
        Ok(StructDef {
            name,
            fields,
            span: start.merge(end),
        })
    }

    fn top_level_item(&mut self, prog: &mut Program) -> Result<(), Diag> {
        let is_const = self.eat(&TokenKind::KwConst);
        let start = self.span();
        let base = self.base_type()?;
        let (name, ty, _) = self.declarator(base)?;

        // A function definition or prototype: the declarator was a plain
        // name followed by `(`.
        if self.peek() == &TokenKind::LParen && !matches!(ty, Type::Func(_)) {
            if is_const {
                return Err(self.error("functions cannot be declared `const`"));
            }
            self.bump(); // '('
            let params = self.param_list()?;
            self.expect(TokenKind::RParen)?;
            if self.eat(&TokenKind::Semi) {
                // Prototype: accepted and discarded (MiniC resolves
                // functions program-wide).
                return Ok(());
            }
            let body = self.block()?;
            prog.funcs.push(FuncDef {
                name,
                params,
                ret: ty,
                body,
                span: start.merge(self.prev_span()),
            });
            return Ok(());
        }

        // Global variable.
        let init = if self.eat(&TokenKind::Eq) {
            Some(self.initializer()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?;
        prog.globals.push(GlobalDef {
            name,
            ty,
            init,
            is_const,
            span: start.merge(end),
        });
        Ok(())
    }

    fn initializer(&mut self) -> Result<Init, Diag> {
        if self.eat(&TokenKind::LBrace) {
            let mut items = Vec::new();
            if self.peek() != &TokenKind::RBrace {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    if self.peek() == &TokenKind::RBrace {
                        break; // trailing comma
                    }
                }
            }
            self.expect(TokenKind::RBrace)?;
            Ok(Init::List(items))
        } else {
            Ok(Init::Scalar(self.expr()?))
        }
    }

    fn param_list(&mut self) -> Result<Vec<Param>, Diag> {
        let mut params = Vec::new();
        if self.peek() == &TokenKind::RParen {
            return Ok(params);
        }
        if self.peek() == &TokenKind::KwVoid && self.peek_at(1) == &TokenKind::RParen {
            self.bump();
            return Ok(params);
        }
        loop {
            let base = self.base_type()?;
            let (name, mut ty, pspan) = self.declarator(base)?;
            // Array parameters decay to pointers, as in C.
            if let Type::Array(elem, _) = ty {
                ty = Type::Ptr(elem);
            }
            params.push(Param {
                name,
                ty,
                span: pspan,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(params)
    }

    // ------------------------------------------------------------------
    // Types and declarators
    // ------------------------------------------------------------------

    fn base_type(&mut self) -> Result<Type, Diag> {
        match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                Ok(Type::Int)
            }
            TokenKind::KwFloat => {
                self.bump();
                Ok(Type::Float)
            }
            TokenKind::KwVoid => {
                self.bump();
                Ok(Type::Void)
            }
            TokenKind::KwStruct => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                Ok(Type::Struct(name))
            }
            other => Err(self.error(format!("expected a type, found {}", other.describe()))),
        }
    }

    /// Parses `'*'* (IDENT | '(' '*' IDENT ')' '(' types ')') ('[' INT ']')*`
    /// and returns the declared name, full type, and name span.
    fn declarator(&mut self, base: Type) -> Result<(String, Type, Span), Diag> {
        let mut ty = base;
        while self.eat(&TokenKind::Star) {
            ty = Type::ptr(ty);
        }

        // Function-pointer declarator: `(*name)(param-types)`.
        if self.peek() == &TokenKind::LParen && self.peek_at(1) == &TokenKind::Star {
            self.bump(); // '('
            self.bump(); // '*'
            let (name, nspan) = self.expect_ident()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::LParen)?;
            let mut params = Vec::new();
            if self.peek() != &TokenKind::RParen {
                if self.peek() == &TokenKind::KwVoid && self.peek_at(1) == &TokenKind::RParen {
                    self.bump();
                } else {
                    loop {
                        let pbase = self.base_type()?;
                        let mut pty = pbase;
                        while self.eat(&TokenKind::Star) {
                            pty = Type::ptr(pty);
                        }
                        // Optional (ignored) parameter name.
                        if matches!(self.peek(), TokenKind::Ident(_)) {
                            self.bump();
                        }
                        params.push(pty);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
            let sig = FuncSig { params, ret: ty };
            return Ok((name, Type::Func(Box::new(sig)), nspan));
        }

        let (name, nspan) = self.expect_ident()?;

        // Array suffixes, outermost dimension first in source order.
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let n = match self.peek().clone() {
                TokenKind::Int(v) if v > 0 => {
                    self.bump();
                    v as usize
                }
                _ => return Err(self.error("array dimension must be a positive integer literal")),
            };
            self.expect(TokenKind::RBracket)?;
            dims.push(n);
        }
        for &n in dims.iter().rev() {
            ty = Type::array(ty, n);
        }
        Ok((name, ty, nspan))
    }

    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt | TokenKind::KwFloat | TokenKind::KwStruct | TokenKind::KwVoid
        )
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self) -> Result<Block, Diag> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Block::new(stmts))
    }

    /// Parses a single statement; a bare `{` starts a nested block.
    fn stmt(&mut self) -> Result<Stmt, Diag> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::LBrace => {
                let b = self.block()?;
                Ok(Stmt::new(StmtKind::Block(b), start.merge(self.prev_span())))
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::new(
                    StmtKind::While { cond, body },
                    start.merge(self.prev_span()),
                ))
            }
            TokenKind::KwDo => {
                self.bump();
                let body = self.stmt_as_block()?;
                self.expect(TokenKind::KwWhile)?;
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(
                    StmtKind::DoWhile { body, cond },
                    start.merge(self.prev_span()),
                ))
            }
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(StmtKind::Break, start.merge(self.prev_span())))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(StmtKind::Continue, start.merge(self.prev_span())))
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(
                    StmtKind::Return(value),
                    start.merge(self.prev_span()),
                ))
            }
            TokenKind::Semi => {
                // Empty statement: an empty block.
                self.bump();
                Ok(Stmt::new(StmtKind::Block(Block::default()), start))
            }
            _ if self.starts_type() || self.peek() == &TokenKind::KwConst => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(StmtKind::Expr(e), start.merge(self.prev_span())))
            }
        }
    }

    /// Wraps a single-statement body (e.g. of `while (c) s;`) in a block.
    fn stmt_as_block(&mut self) -> Result<Block, Diag> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            let s = self.stmt()?;
            Ok(Block::new(vec![s]))
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diag> {
        let start = self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_blk = self.stmt_as_block()?;
        let else_blk = if self.eat(&TokenKind::KwElse) {
            Some(self.stmt_as_block()?)
        } else {
            None
        };
        Ok(Stmt::new(
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
            start.merge(self.prev_span()),
        ))
    }

    fn for_stmt(&mut self) -> Result<Stmt, Diag> {
        let start = self.expect(TokenKind::KwFor)?;
        self.expect(TokenKind::LParen)?;
        let init = if self.peek() == &TokenKind::Semi {
            self.bump();
            None
        } else if self.starts_type() || self.peek() == &TokenKind::KwConst {
            Some(Box::new(self.decl_stmt()?))
        } else {
            let e = self.expr()?;
            let espan = e.span;
            self.expect(TokenKind::Semi)?;
            Some(Box::new(Stmt::new(StmtKind::Expr(e), espan)))
        };
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::new(
            StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            start.merge(self.prev_span()),
        ))
    }

    fn decl_stmt(&mut self) -> Result<Stmt, Diag> {
        let start = self.span();
        // `const` on locals is accepted and ignored (documented: constness
        // of locals carries no semantic weight in MiniC).
        let _ = self.eat(&TokenKind::KwConst);
        let base = self.base_type()?;
        let (name, ty, _) = self.declarator(base)?;
        let init = if self.eat(&TokenKind::Eq) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::new(
            StmtKind::Decl { name, ty, init },
            start.merge(self.prev_span()),
        ))
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, Diag> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, Diag> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Eq => None,
            TokenKind::PlusEq => Some(BinOp::Add),
            TokenKind::MinusEq => Some(BinOp::Sub),
            TokenKind::StarEq => Some(BinOp::Mul),
            TokenKind::SlashEq => Some(BinOp::Div),
            TokenKind::PercentEq => Some(BinOp::Rem),
            TokenKind::AmpEq => Some(BinOp::BitAnd),
            TokenKind::PipeEq => Some(BinOp::BitOr),
            TokenKind::CaretEq => Some(BinOp::BitXor),
            TokenKind::ShlEq => Some(BinOp::Shl),
            TokenKind::ShrEq => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        let span = lhs.span.merge(rhs.span);
        let kind = match op {
            None => ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
            Some(op) => ExprKind::AssignOp(op, Box::new(lhs), Box::new(rhs)),
        };
        Ok(Expr::new(kind, span))
    }

    fn ternary(&mut self) -> Result<Expr, Diag> {
        let cond = self.binary(0)?;
        if !self.eat(&TokenKind::Question) {
            return Ok(cond);
        }
        let then_e = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let else_e = self.ternary()?;
        let span = cond.span.merge(else_e.span);
        Ok(Expr::new(
            ExprKind::Ternary(Box::new(cond), Box::new(then_e), Box::new(else_e)),
            span,
        ))
    }

    /// Precedence-climbing binary expression parser.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, Diag> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Star => (BinOp::Mul, 10),
                TokenKind::Slash => (BinOp::Div, 10),
                TokenKind::Percent => (BinOp::Rem, 10),
                TokenKind::Plus => (BinOp::Add, 9),
                TokenKind::Minus => (BinOp::Sub, 9),
                TokenKind::Shl => (BinOp::Shl, 8),
                TokenKind::Shr => (BinOp::Shr, 8),
                TokenKind::Lt => (BinOp::Lt, 7),
                TokenKind::Le => (BinOp::Le, 7),
                TokenKind::Gt => (BinOp::Gt, 7),
                TokenKind::Ge => (BinOp::Ge, 7),
                TokenKind::EqEq => (BinOp::Eq, 6),
                TokenKind::Ne => (BinOp::Ne, 6),
                TokenKind::Amp => (BinOp::BitAnd, 5),
                TokenKind::Caret => (BinOp::BitXor, 4),
                TokenKind::Pipe => (BinOp::BitOr, 3),
                TokenKind::AmpAmp => (BinOp::LogAnd, 2),
                TokenKind::PipePipe => (BinOp::LogOr, 1),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diag> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Star => Some(UnOp::Deref),
            TokenKind::Amp => Some(UnOp::Addr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            let span = start.merge(operand.span);
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(operand)), span));
        }
        if self.peek() == &TokenKind::PlusPlus || self.peek() == &TokenKind::MinusMinus {
            let inc = self.peek() == &TokenKind::PlusPlus;
            self.bump();
            let operand = self.unary()?;
            let span = start.merge(operand.span);
            let op = if inc { IncDec::PreInc } else { IncDec::PreDec };
            return Ok(Expr::new(ExprKind::IncDec(op, Box::new(operand)), span));
        }
        // Cast: '(' type-keyword ... ')' unary.
        if self.peek() == &TokenKind::LParen
            && matches!(
                self.peek_at(1),
                TokenKind::KwInt | TokenKind::KwFloat | TokenKind::KwStruct | TokenKind::KwVoid
            )
        {
            self.bump(); // '('
            let base = self.base_type()?;
            let mut ty = base;
            while self.eat(&TokenKind::Star) {
                ty = Type::ptr(ty);
            }
            self.expect(TokenKind::RParen)?;
            let operand = self.unary()?;
            let span = start.merge(operand.span);
            return Ok(Expr::new(ExprKind::Cast(ty, Box::new(operand)), span));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, Diag> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?;
                    let span = e.span.merge(end);
                    e = Expr::new(ExprKind::Call(Box::new(e), args), span);
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    let end = self.expect(TokenKind::RBracket)?;
                    let span = e.span.merge(end);
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), span);
                }
                TokenKind::Dot => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.merge(fspan);
                    e = Expr::new(ExprKind::Member(Box::new(e), field), span);
                }
                TokenKind::Arrow => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.merge(fspan);
                    e = Expr::new(ExprKind::Arrow(Box::new(e), field), span);
                }
                TokenKind::PlusPlus => {
                    let end = self.bump().span;
                    let span = e.span.merge(end);
                    e = Expr::new(ExprKind::IncDec(IncDec::PostInc, Box::new(e)), span);
                }
                TokenKind::MinusMinus => {
                    let end = self.bump().span;
                    let span = e.span.merge(end);
                    e = Expr::new(ExprKind::IncDec(IncDec::PostDec, Box::new(e)), span);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, Diag> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), span))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::new(ExprKind::Var(name), span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {src}"))
    }

    fn first_expr(src: &str) -> Expr {
        let prog = parse_ok(&format!("int main() {{ {src}; }}"));
        match &prog.funcs[0].body.stmts[0].kind {
            StmtKind::Expr(e) => e.clone(),
            StmtKind::Return(Some(e)) => e.clone(),
            other => panic!("not an expr stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_empty_function() {
        let prog = parse_ok("void f() { }");
        assert_eq!(prog.funcs[0].name, "f");
        assert_eq!(prog.funcs[0].ret, Type::Void);
        assert!(prog.funcs[0].body.stmts.is_empty());
    }

    #[test]
    fn parses_globals_with_initializers() {
        let prog = parse_ok("int x = 3; const int tab[3] = {1, 2, 4}; float pi = 3.14;");
        assert_eq!(prog.globals.len(), 3);
        assert!(prog.globals[1].is_const);
        assert_eq!(prog.globals[1].ty, Type::array(Type::Int, 3));
        match &prog.globals[1].init {
            Some(Init::List(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected list init, got {other:?}"),
        }
    }

    #[test]
    fn parses_2d_array_global() {
        let prog = parse_ok("int grid[4][8];");
        assert_eq!(
            prog.globals[0].ty,
            Type::array(Type::array(Type::Int, 8), 4)
        );
    }

    #[test]
    fn parses_struct_def_and_use() {
        let prog = parse_ok(
            "struct point { int x; int y; };
             struct point origin;
             int get_x(struct point *p) { return p->x; }",
        );
        assert_eq!(prog.structs[0].fields.len(), 2);
        assert_eq!(prog.globals[0].ty, Type::Struct("point".into()));
        assert_eq!(
            prog.funcs[0].params[0].ty,
            Type::ptr(Type::Struct("point".into()))
        );
    }

    #[test]
    fn parses_function_pointer_declarator() {
        let prog = parse_ok("int apply(int (*fp)(int, int)) { return fp(1, 2); }");
        match &prog.funcs[0].params[0].ty {
            Type::Func(sig) => {
                assert_eq!(sig.params.len(), 2);
                assert_eq!(sig.ret, Type::Int);
            }
            other => panic!("expected func type, got {other:?}"),
        }
    }

    #[test]
    fn array_params_decay_to_pointers() {
        let prog = parse_ok("int f(int a[16]) { return a[0]; }");
        assert_eq!(prog.funcs[0].params[0].ty, Type::ptr(Type::Int));
    }

    #[test]
    fn prototypes_are_skipped() {
        let prog = parse_ok("int quan(int val); int main() { return 0; }");
        assert_eq!(prog.funcs.len(), 1);
        assert_eq!(prog.funcs[0].name, "main");
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = first_expr("1 + 2 * 3");
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => match rhs.kind {
                ExprKind::Binary(BinOp::Mul, _, _) => {}
                other => panic!("rhs should be mul, got {other:?}"),
            },
            other => panic!("expected add at top, got {other:?}"),
        }
    }

    #[test]
    fn precedence_shift_vs_compare() {
        // `a << 2 < b` parses as `(a << 2) < b`.
        let e = first_expr("a << 2 < b");
        match e.kind {
            ExprKind::Binary(BinOp::Lt, lhs, _) => match lhs.kind {
                ExprKind::Binary(BinOp::Shl, _, _) => {}
                other => panic!("lhs should be shl, got {other:?}"),
            },
            other => panic!("expected lt at top, got {other:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = first_expr("a = b = 1");
        match e.kind {
            ExprKind::Assign(_, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Assign(_, _)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn ternary_parses() {
        let e = first_expr("a < b ? 1 : 2");
        assert!(matches!(e.kind, ExprKind::Ternary(_, _, _)));
    }

    #[test]
    fn casts_vs_parenthesized_exprs() {
        let e = first_expr("(int)x");
        assert!(matches!(e.kind, ExprKind::Cast(Type::Int, _)));
        let e = first_expr("(x)");
        assert!(matches!(e.kind, ExprKind::Var(_)));
        let e = first_expr("(float*)p");
        match e.kind {
            ExprKind::Cast(ty, _) => assert_eq!(ty, Type::ptr(Type::Float)),
            other => panic!("expected cast, got {other:?}"),
        }
    }

    #[test]
    fn postfix_chain() {
        let e = first_expr("a[1].f->g(2)[3]");
        // Just check it parses to a nested structure ending in Index.
        assert!(matches!(e.kind, ExprKind::Index(_, _)));
    }

    #[test]
    fn deref_postincrement_like_quan() {
        // The paper's original quan uses `*table++`.
        let e = first_expr("*table++");
        match e.kind {
            ExprKind::Unary(UnOp::Deref, inner) => {
                assert!(matches!(inner.kind, ExprKind::IncDec(IncDec::PostInc, _)));
            }
            other => panic!("expected deref of post-inc, got {other:?}"),
        }
    }

    #[test]
    fn parses_full_quan() {
        let prog = parse_ok(
            "int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
             int quan(int val) {
                 int i;
                 for (i = 0; i < 15; i++)
                     if (val < power2[i])
                         break;
                 return (i);
             }",
        );
        let f = &prog.funcs[0];
        assert_eq!(f.name, "quan");
        assert_eq!(f.params.len(), 1);
        match &f.body.stmts[1].kind {
            StmtKind::For { body, .. } => {
                assert!(matches!(body.stmts[0].kind, StmtKind::If { .. }));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_loops_and_control() {
        let prog = parse_ok(
            "int main() {
                int i = 0;
                int acc = 0;
                while (i < 10) { i++; if (i == 3) continue; acc += i; }
                do { acc--; } while (acc > 40);
                for (;;) { break; }
                return acc;
            }",
        );
        assert_eq!(prog.funcs[0].body.stmts.len(), 6);
    }

    #[test]
    fn compound_assignment_ops() {
        for (src, op) in [
            ("a += 1", BinOp::Add),
            ("a <<= 1", BinOp::Shl),
            ("a %= 2", BinOp::Rem),
            ("a ^= b", BinOp::BitXor),
        ] {
            let e = first_expr(src);
            match e.kind {
                ExprKind::AssignOp(got, _, _) => assert_eq!(got, op),
                other => panic!("expected assign-op, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse("int main() { return 0 }").unwrap_err();
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn error_on_bad_array_dim() {
        let err = parse("int a[x];").unwrap_err();
        assert!(err.message.contains("array dimension"));
    }

    #[test]
    fn error_on_garbage_expression() {
        let err = parse("int main() { return +; }").unwrap_err();
        assert!(err.message.contains("expression"));
    }

    #[test]
    fn empty_statement_is_empty_block() {
        let prog = parse_ok("int main() { ;; return 0; }");
        assert!(matches!(
            prog.funcs[0].body.stmts[0].kind,
            StmtKind::Block(_)
        ));
        assert_eq!(prog.funcs[0].body.stmts.len(), 3);
    }

    #[test]
    fn logical_ops_precedence() {
        // a || b && c  =>  a || (b && c)
        let e = first_expr("a || b && c");
        match e.kind {
            ExprKind::Binary(BinOp::LogOr, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::LogAnd, _, _)));
            }
            other => panic!("expected or at top, got {other:?}"),
        }
    }
}
