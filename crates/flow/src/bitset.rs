//! A fixed-capacity bit set used by the dataflow solver.

use std::fmt;

/// A set of small integers `0..capacity`, stored as 64-bit words.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The maximum number of elements the set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns whether the set changed.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Removes `i`; returns whether the set changed.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        self.words[w] != old
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] >> b & 1 == 1
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every element `0..capacity`.
    pub fn fill(&mut self) {
        self.words.fill(!0);
        self.trim();
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0 >> extra;
            }
        }
    }

    /// `self |= other`; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// `self &= other`; returns whether `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a &= b;
            changed |= *a != old;
        }
        changed
    }

    /// `self -= other` (set difference); returns whether `self` changed.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a &= !b;
            changed |= *a != old;
        }
        changed
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects into a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert is a no-op");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_intersect_subtract() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(70);
        b.insert(70);
        b.insert(99);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 70, 99]);
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![70]);
        let mut d = a.clone();
        assert!(d.subtract(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
        // Idempotent second applications.
        assert!(!u.union_with(&b));
        assert!(!i.intersect_with(&b));
    }

    #[test]
    fn fill_respects_capacity() {
        let mut s = BitSet::new(70);
        s.fill();
        assert_eq!(s.len(), 70);
        assert!(!s.contains(70));
        assert!(s.contains(69));
    }

    #[test]
    fn iter_in_order() {
        let s: BitSet = [5usize, 3, 64, 127].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 5, 64, 127]);
    }

    #[test]
    fn empty_and_zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let s2: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(s2.capacity(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(20);
        a.union_with(&b);
    }

    #[test]
    fn debug_is_nonempty() {
        let s: BitSet = [1usize, 2].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 2}");
        let empty = BitSet::new(4);
        assert_eq!(format!("{empty:?}"), "{}");
    }
}
