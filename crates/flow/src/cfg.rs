//! Control-flow graph construction from MiniC AST blocks.
//!
//! A [`Cfg`] is built per function body (or any [`Block`]). Basic blocks
//! hold [`Instr`]s that borrow the AST; each instruction records the
//! *origin* statement it was lowered from, which lets the analysis crate
//! map a candidate code segment (a loop body, an `if` branch, or a whole
//! function body — the paper's three segment kinds) to its *region*: the
//! set of CFG blocks belonging to the segment.

use crate::graph::DiGraph;
use minic::ast::{Block, Expr, MemoStmt, NodeId, ProfileStmt, Stmt, StmtKind};
use std::collections::{HashMap, HashSet};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// One lowered instruction inside a basic block.
#[derive(Debug, Clone, Copy)]
pub struct Instr<'p> {
    /// The AST statement this instruction was lowered from. For loop
    /// conditions and steps this is the loop statement itself, so loop-body
    /// regions exclude them.
    pub origin: NodeId,
    /// What the instruction does.
    pub kind: InstrKind<'p>,
}

/// The kinds of lowered instructions.
#[derive(Debug, Clone, Copy)]
pub enum InstrKind<'p> {
    /// A local declaration (with optional initializer).
    Decl(&'p Stmt),
    /// An expression evaluated for effect (expression statements, `for`
    /// steps).
    Expr(&'p Expr),
    /// A branch condition; always the last instruction of its block, whose
    /// first successor is the true edge and second the false edge.
    Cond(&'p Expr),
    /// A `return` (value is `None` for `return;`); the block's only
    /// successor is the CFG exit.
    Return(Option<&'p Expr>),
    /// An opaque memoized segment (post-transformation CFGs only).
    Memo(&'p MemoStmt),
    /// An opaque profiling probe (instrumented CFGs only).
    Profile(&'p ProfileStmt),
}

/// A basic block.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock<'p> {
    /// Instructions in execution order.
    pub instrs: Vec<Instr<'p>>,
    /// Successor blocks (for a block ending in [`InstrKind::Cond`], index 0
    /// is the true edge and index 1 the false edge).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

/// A control-flow graph over a borrowed AST block.
#[derive(Debug)]
pub struct Cfg<'p> {
    /// The basic blocks; `blocks[entry]` is the entry.
    pub blocks: Vec<BasicBlock<'p>>,
    /// Entry block id.
    pub entry: BlockId,
    /// The single synthetic exit block (always empty).
    pub exit: BlockId,
}

impl<'p> Cfg<'p> {
    /// Builds the CFG of `body`.
    ///
    /// # Examples
    ///
    /// ```
    /// let checked = minic::compile(
    ///     "int f(int x) { if (x > 0) { return 1; } return 0; }",
    /// ).unwrap();
    /// let cfg = flow::cfg::Cfg::build(&checked.program.funcs[0].body);
    /// assert!(cfg.blocks.len() >= 3);
    /// assert!(cfg.blocks[cfg.exit].instrs.is_empty());
    /// ```
    pub fn build(body: &'p Block) -> Cfg<'p> {
        let mut b = Builder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            loop_stack: Vec::new(),
        };
        let entry = 0;
        let exit = 1;
        if let Some(end) = b.lower_block(body, entry, exit) {
            b.edge(end, exit);
        }
        Cfg {
            blocks: b.blocks,
            entry,
            exit,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The CFG's topology as a [`DiGraph`] (same node indices).
    pub fn graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.blocks.len());
        for (u, blk) in self.blocks.iter().enumerate() {
            for &v in &blk.succs {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Blocks containing at least one instruction originating from `ids`,
    /// plus (to fixpoint) empty blocks all of whose predecessors are
    /// already in the region — this absorbs the empty join blocks that
    /// `if`/`else` lowering creates *inside* a segment without absorbing
    /// blocks reachable from outside it.
    pub fn region_of(&self, ids: &HashSet<NodeId>) -> HashSet<BlockId> {
        let mut region: HashSet<BlockId> = HashSet::new();
        for (bid, blk) in self.blocks.iter().enumerate() {
            if blk.instrs.iter().any(|i| ids.contains(&i.origin)) {
                region.insert(bid);
            }
        }
        loop {
            let mut grew = false;
            for (bid, blk) in self.blocks.iter().enumerate() {
                if region.contains(&bid) || bid == self.exit || bid == self.entry {
                    continue;
                }
                if blk.instrs.is_empty()
                    && !blk.preds.is_empty()
                    && blk.preds.iter().all(|p| region.contains(p))
                {
                    region.insert(bid);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        region
    }

    /// Edges leaving `region`: `(from ∈ region, to ∉ region)`.
    pub fn region_exits(&self, region: &HashSet<BlockId>) -> Vec<(BlockId, BlockId)> {
        let mut exits = Vec::new();
        for &u in region {
            for &v in &self.blocks[u].succs {
                if !region.contains(&v) {
                    exits.push((u, v));
                }
            }
        }
        exits.sort_unstable();
        exits
    }

    /// Map from origin statement id to the blocks holding its instructions.
    pub fn blocks_by_origin(&self) -> HashMap<NodeId, Vec<BlockId>> {
        let mut map: HashMap<NodeId, Vec<BlockId>> = HashMap::new();
        for (bid, blk) in self.blocks.iter().enumerate() {
            for i in &blk.instrs {
                let v = map.entry(i.origin).or_default();
                if v.last() != Some(&bid) {
                    v.push(bid);
                }
            }
        }
        map
    }
}

struct Builder<'p> {
    blocks: Vec<BasicBlock<'p>>,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl<'p> Builder<'p> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
            self.blocks[to].preds.push(from);
        }
    }

    fn push(&mut self, blk: BlockId, instr: Instr<'p>) {
        self.blocks[blk].instrs.push(instr);
    }

    /// Lowers `block` starting in `cur`; returns the block where control
    /// falls through, or `None` if all paths terminated.
    fn lower_block(
        &mut self,
        block: &'p Block,
        mut cur: BlockId,
        exit: BlockId,
    ) -> Option<BlockId> {
        let mut live = true;
        for s in &block.stmts {
            if !live {
                // Unreachable code still gets blocks (with no preds) so
                // every statement appears in the CFG.
                cur = self.new_block();
                live = true;
            }
            match self.lower_stmt(s, cur, exit) {
                Some(next) => cur = next,
                None => live = false,
            }
        }
        live.then_some(cur)
    }

    fn lower_stmt(&mut self, s: &'p Stmt, cur: BlockId, exit: BlockId) -> Option<BlockId> {
        match &s.kind {
            StmtKind::Decl { .. } => {
                self.push(
                    cur,
                    Instr {
                        origin: s.id,
                        kind: InstrKind::Decl(s),
                    },
                );
                Some(cur)
            }
            StmtKind::Expr(e) => {
                self.push(
                    cur,
                    Instr {
                        origin: s.id,
                        kind: InstrKind::Expr(e),
                    },
                );
                Some(cur)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.push(
                    cur,
                    Instr {
                        origin: s.id,
                        kind: InstrKind::Cond(cond),
                    },
                );
                let then_b = self.new_block();
                self.edge(cur, then_b);
                let then_end = self.lower_block(then_blk, then_b, exit);
                match else_blk {
                    Some(eb) => {
                        let else_b = self.new_block();
                        self.edge(cur, else_b);
                        let else_end = self.lower_block(eb, else_b, exit);
                        match (then_end, else_end) {
                            (None, None) => None,
                            (a, b) => {
                                let join = self.new_block();
                                if let Some(a) = a {
                                    self.edge(a, join);
                                }
                                if let Some(b) = b {
                                    self.edge(b, join);
                                }
                                Some(join)
                            }
                        }
                    }
                    None => {
                        let join = self.new_block();
                        self.edge(cur, join);
                        if let Some(t) = then_end {
                            self.edge(t, join);
                        }
                        Some(join)
                    }
                }
            }
            StmtKind::While { cond, body } => {
                let header = self.new_block();
                let body_b = self.new_block();
                let after = self.new_block();
                self.edge(cur, header);
                self.push(
                    header,
                    Instr {
                        origin: s.id,
                        kind: InstrKind::Cond(cond),
                    },
                );
                self.edge(header, body_b);
                self.edge(header, after);
                self.loop_stack.push((header, after));
                if let Some(end) = self.lower_block(body, body_b, exit) {
                    self.edge(end, header);
                }
                self.loop_stack.pop();
                Some(after)
            }
            StmtKind::DoWhile { body, cond } => {
                let body_b = self.new_block();
                let latch = self.new_block();
                let after = self.new_block();
                self.edge(cur, body_b);
                self.loop_stack.push((latch, after));
                if let Some(end) = self.lower_block(body, body_b, exit) {
                    self.edge(end, latch);
                }
                self.loop_stack.pop();
                self.push(
                    latch,
                    Instr {
                        origin: s.id,
                        kind: InstrKind::Cond(cond),
                    },
                );
                self.edge(latch, body_b);
                self.edge(latch, after);
                Some(after)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut cur = cur;
                if let Some(init) = init {
                    cur = self
                        .lower_stmt(init, cur, exit)
                        .expect("for-init cannot terminate");
                }
                let header = self.new_block();
                let body_b = self.new_block();
                let step_b = self.new_block();
                let after = self.new_block();
                self.edge(cur, header);
                if let Some(cond) = cond {
                    self.push(
                        header,
                        Instr {
                            origin: s.id,
                            kind: InstrKind::Cond(cond),
                        },
                    );
                    self.edge(header, body_b);
                    self.edge(header, after);
                } else {
                    self.edge(header, body_b);
                }
                self.loop_stack.push((step_b, after));
                if let Some(end) = self.lower_block(body, body_b, exit) {
                    self.edge(end, step_b);
                }
                self.loop_stack.pop();
                if let Some(step) = step {
                    self.push(
                        step_b,
                        Instr {
                            origin: s.id,
                            kind: InstrKind::Expr(step),
                        },
                    );
                }
                self.edge(step_b, header);
                Some(after)
            }
            StmtKind::Break => {
                let (_, after) = *self
                    .loop_stack
                    .last()
                    .expect("break outside loop rejected by sema");
                self.edge(cur, after);
                None
            }
            StmtKind::Continue => {
                let (cont, _) = *self
                    .loop_stack
                    .last()
                    .expect("continue outside loop rejected by sema");
                self.edge(cur, cont);
                None
            }
            StmtKind::Return(value) => {
                self.push(
                    cur,
                    Instr {
                        origin: s.id,
                        kind: InstrKind::Return(value.as_ref()),
                    },
                );
                self.edge(cur, exit);
                None
            }
            StmtKind::Block(b) => {
                // Bare blocks get dedicated basic blocks so segment
                // regions (SegKind::BareBlock) align with block
                // boundaries.
                let inner = self.new_block();
                self.edge(cur, inner);
                match self.lower_block(b, inner, exit) {
                    Some(end) => {
                        let after = self.new_block();
                        self.edge(end, after);
                        Some(after)
                    }
                    None => None,
                }
            }
            StmtKind::Memo(m) => {
                self.push(
                    cur,
                    Instr {
                        origin: s.id,
                        kind: InstrKind::Memo(m),
                    },
                );
                Some(cur)
            }
            StmtKind::Profile(p) => {
                self.push(
                    cur,
                    Instr {
                        origin: s.id,
                        kind: InstrKind::Profile(p),
                    },
                );
                Some(cur)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::visit::for_each_stmt;

    fn cfg_of(src: &str) -> (minic::Checked, usize) {
        let checked = minic::compile(src).expect("compiles");
        let n = {
            let cfg = Cfg::build(&checked.program.funcs[0].body);
            check_invariants(&cfg);
            cfg.blocks.len()
        };
        (checked, n)
    }

    fn check_invariants(cfg: &Cfg<'_>) {
        // Exit has no successors and no instructions.
        assert!(cfg.blocks[cfg.exit].succs.is_empty());
        assert!(cfg.blocks[cfg.exit].instrs.is_empty());
        // preds/succs are mutually consistent.
        for (u, blk) in cfg.blocks.iter().enumerate() {
            for &v in &blk.succs {
                assert!(cfg.blocks[v].preds.contains(&u));
            }
            for &p in &blk.preds {
                assert!(cfg.blocks[p].succs.contains(&u));
            }
            // Cond is last and has two successors.
            for (i, instr) in blk.instrs.iter().enumerate() {
                if matches!(instr.kind, InstrKind::Cond(_)) {
                    assert_eq!(i, blk.instrs.len() - 1, "Cond must terminate its block");
                    assert_eq!(blk.succs.len(), 2);
                }
            }
        }
    }

    #[test]
    fn straight_line_is_two_blocks() {
        let (checked, _) = cfg_of("int f() { int x = 1; x = x + 1; return x; }");
        let cfg = Cfg::build(&checked.program.funcs[0].body);
        // entry (with all instrs) + exit.
        assert_eq!(cfg.blocks[cfg.entry].instrs.len(), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_shapes_diamond() {
        let (checked, _) =
            cfg_of("int f(int x) { int r; if (x > 0) { r = 1; } else { r = 2; } return r; }");
        let cfg = Cfg::build(&checked.program.funcs[0].body);
        let g = cfg.graph();
        let idom = g.dominators(cfg.entry);
        // The return block is dominated by the entry and reachable.
        assert!(idom[cfg.exit].is_some());
        // Entry's Cond has exactly two successors.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
    }

    #[test]
    fn while_loop_has_back_edge() {
        let (checked, _) = cfg_of("int f(int n) { int i = 0; while (i < n) { i++; } return i; }");
        let cfg = Cfg::build(&checked.program.funcs[0].body);
        let g = cfg.graph();
        let idom = g.dominators(cfg.entry);
        // Find a back edge: some u → v where v dominates u.
        let mut back_edges = 0;
        for u in 0..g.len() {
            for &v in g.succs(u) {
                if idom[u].is_some() && DiGraph::dominates(&idom, v, u) {
                    back_edges += 1;
                }
            }
        }
        assert_eq!(back_edges, 1);
    }

    #[test]
    fn for_loop_regions_exclude_cond_and_step() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }";
        let checked = minic::compile(src).unwrap();
        let f = &checked.program.funcs[0];
        let cfg = Cfg::build(&f.body);
        check_invariants(&cfg);
        // Collect the loop body's stmt ids.
        let mut body_ids = HashSet::new();
        if let StmtKind::For { body, .. } = &f.body.stmts[1].kind {
            for_each_stmt(body, |st| {
                body_ids.insert(st.id);
            });
        } else {
            panic!("expected for");
        }
        let region = cfg.region_of(&body_ids);
        assert_eq!(region.len(), 1, "loop body is one block");
        let exits = cfg.region_exits(&region);
        assert_eq!(exits.len(), 1, "single exit to the step block");
        // The step block contains an Expr instr whose origin is the For.
        let (_, step_blk) = exits[0];
        assert!(matches!(
            cfg.blocks[step_blk].instrs[0].kind,
            InstrKind::Expr(_)
        ));
    }

    #[test]
    fn break_and_continue_edges() {
        let (checked, _) = cfg_of(
            "int f(int n) {
                int i = 0; int s = 0;
                while (1) {
                    i++;
                    if (i == 3) continue;
                    if (i > n) break;
                    s += i;
                }
                return s;
            }",
        );
        let cfg = Cfg::build(&checked.program.funcs[0].body);
        // Every block must be consistent even with early break/continue.
        check_invariants(&cfg);
        // Exit reachable from entry.
        let rpo = cfg.graph().reverse_postorder(cfg.entry);
        assert!(rpo.contains(&cfg.exit));
    }

    #[test]
    fn do_while_tests_condition_after_body() {
        let (checked, _) = cfg_of("int f() { int i = 0; do { i++; } while (i < 5); return i; }");
        let cfg = Cfg::build(&checked.program.funcs[0].body);
        check_invariants(&cfg);
        // The entry must flow into the body *before* any Cond appears.
        let first_body = cfg.blocks[cfg.entry].succs[0];
        assert!(
            !matches!(
                cfg.blocks[first_body].instrs.first().map(|i| i.kind),
                Some(InstrKind::Cond(_))
            ),
            "do-while body runs before the condition"
        );
    }

    #[test]
    fn unreachable_code_still_lowered() {
        let (checked, _) = cfg_of("int f() { return 1; int x = 2; x = 3; return x; }");
        let cfg = Cfg::build(&checked.program.funcs[0].body);
        let total: usize = cfg.blocks.iter().map(|b| b.instrs.len()).sum();
        assert_eq!(total, 4, "all statements present in the CFG");
    }

    #[test]
    fn if_branch_region_excludes_join() {
        let src = "int f(int x) { int r = 0; if (x) { r = 1; r = r + 1; } r = r * 2; return r; }";
        let checked = minic::compile(src).unwrap();
        let f = &checked.program.funcs[0];
        let cfg = Cfg::build(&f.body);
        let mut then_ids = HashSet::new();
        if let StmtKind::If { then_blk, .. } = &f.body.stmts[1].kind {
            for_each_stmt(then_blk, |st| {
                then_ids.insert(st.id);
            });
        } else {
            panic!("expected if");
        }
        let region = cfg.region_of(&then_ids);
        assert_eq!(region.len(), 1);
        let exits = cfg.region_exits(&region);
        assert_eq!(exits.len(), 1);
        // The exit target holds `r = r * 2` (reached from both paths).
        let (_, join) = exits[0];
        assert!(cfg.blocks[join].preds.iter().any(|p| !region.contains(p)));
    }

    #[test]
    fn nested_loops_nest_regions() {
        let src = "int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) {
                    s += i * j;
                }
            }
            return s;
        }";
        let checked = minic::compile(src).unwrap();
        let f = &checked.program.funcs[0];
        let cfg = Cfg::build(&f.body);
        check_invariants(&cfg);
        let (mut outer_ids, mut inner_ids) = (HashSet::new(), HashSet::new());
        if let StmtKind::For { body, .. } = &f.body.stmts[1].kind {
            for_each_stmt(body, |st| {
                outer_ids.insert(st.id);
            });
            if let StmtKind::For { body: ib, .. } = &body.stmts[0].kind {
                for_each_stmt(ib, |st| {
                    inner_ids.insert(st.id);
                });
            }
        }
        let outer = cfg.region_of(&outer_ids);
        let inner = cfg.region_of(&inner_ids);
        assert!(inner.is_subset(&outer));
        assert!(inner.len() < outer.len());
    }
}
