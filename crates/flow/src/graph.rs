//! A small directed-graph library: SCCs (Tarjan), condensation,
//! topological order, reverse postorder, and immediate dominators
//! (Cooper–Harvey–Kennedy).
//!
//! Used for the control-flow graph, the interprocedural call graph (the
//! paper handles recursion by condensing call-graph SCCs), and the nesting
//! graph of candidate code segments (paper §2.3).

/// A directed graph over nodes `0..n`.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.succs.len() - 1
    }

    /// Adds edge `from → to`. Parallel edges are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(
            from < self.len() && to < self.len(),
            "edge endpoint out of range"
        );
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.preds[to].push(from);
        }
    }

    /// Successors of `u`.
    pub fn succs(&self, u: usize) -> &[usize] {
        &self.succs[u]
    }

    /// Predecessors of `u`.
    pub fn preds(&self, u: usize) -> &[usize] {
        &self.preds[u]
    }

    /// Whether the edge `from → to` exists.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.succs[from].contains(&to)
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Strongly connected components (iterative Tarjan).
    ///
    /// Components are returned in *reverse topological order* of the
    /// condensation: every edge between distinct components points from a
    /// later component to an earlier one in [`Sccs::comps`].
    pub fn sccs(&self) -> Sccs {
        let n = self.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp_of = vec![usize::MAX; n];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        let mut next_index = 0usize;

        // Explicit DFS stack: (node, next-successor-position).
        let mut dfs: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            dfs.push((start, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
                if *pos < self.succs[v].len() {
                    let w = self.succs[v][*pos];
                    *pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        dfs.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    dfs.pop();
                    if let Some(&(parent, _)) = dfs.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            comp_of[w] = comps.len();
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                }
            }
        }
        Sccs { comp_of, comps }
    }

    /// Condenses the graph by `sccs` into a DAG over components.
    pub fn condense(&self, sccs: &Sccs) -> DiGraph {
        let mut dag = DiGraph::new(sccs.comps.len());
        for u in 0..self.len() {
            for &v in &self.succs[u] {
                let (cu, cv) = (sccs.comp_of[u], sccs.comp_of[v]);
                if cu != cv {
                    dag.add_edge(cu, cv);
                }
            }
        }
        dag
    }

    /// Topological order (Kahn), or `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut in_deg: Vec<usize> = (0..n).map(|u| self.preds[u].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&u| in_deg[u] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &self.succs[u] {
                in_deg[v] -= 1;
                if in_deg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Reverse postorder of the nodes reachable from `entry`.
    pub fn reverse_postorder(&self, entry: usize) -> Vec<usize> {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut dfs: Vec<(usize, usize)> = vec![(entry, 0)];
        visited[entry] = true;
        while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
            if *pos < self.succs[v].len() {
                let w = self.succs[v][*pos];
                *pos += 1;
                if !visited[w] {
                    visited[w] = true;
                    dfs.push((w, 0));
                }
            } else {
                dfs.pop();
                post.push(v);
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators of nodes reachable from `entry`
    /// (Cooper–Harvey–Kennedy). `idom[entry] == entry`; unreachable nodes
    /// get `None`.
    pub fn dominators(&self, entry: usize) -> Vec<Option<usize>> {
        let rpo = self.reverse_postorder(entry);
        let n = self.len();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &u) in rpo.iter().enumerate() {
            rpo_pos[u] = i;
        }
        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[entry] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &u in rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &self.preds[u] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if new_idom.is_some() && idom[u] != new_idom {
                    idom[u] = new_idom;
                    changed = true;
                }
            }
        }
        return idom;

        fn intersect(
            idom: &[Option<usize>],
            rpo_pos: &[usize],
            mut a: usize,
            mut b: usize,
        ) -> usize {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a].expect("processed node has idom");
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b].expect("processed node has idom");
                }
            }
            a
        }
    }

    /// Transitive reduction of a DAG: removes every edge `u → w` for which
    /// a longer path `u → … → w` exists.
    ///
    /// # Panics
    ///
    /// Panics if the graph has a cycle.
    pub fn transitive_reduction(&self) -> DiGraph {
        assert!(
            self.topo_order().is_some(),
            "transitive reduction needs a DAG"
        );
        let n = self.len();
        // Reachability from each node (small graphs: O(V·E) is fine).
        let mut reach: Vec<Vec<bool>> = vec![vec![false; n]; n];
        for (u, row) in reach.iter_mut().enumerate() {
            let mut stack: Vec<usize> = self.succs(u).to_vec();
            while let Some(v) = stack.pop() {
                if !row[v] {
                    row[v] = true;
                    stack.extend(self.succs(v).iter().copied());
                }
            }
        }
        let mut out = DiGraph::new(n);
        for u in 0..n {
            for &w in self.succs(u) {
                let redundant = self.succs(u).iter().any(|&v| v != w && reach[v][w]);
                if !redundant {
                    out.add_edge(u, w);
                }
            }
        }
        out
    }

    /// Whether `a` dominates `b`, given an `idom` array from
    /// [`dominators`](Self::dominators).
    pub fn dominates(idom: &[Option<usize>], a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

/// Strongly connected components of a [`DiGraph`].
#[derive(Debug, Clone)]
pub struct Sccs {
    /// Component index of each node.
    pub comp_of: Vec<usize>,
    /// Nodes of each component, in reverse topological order of the
    /// condensation.
    pub comps: Vec<Vec<usize>>,
}

impl Sccs {
    /// Whether node `u` is in a nontrivial SCC (size > 1, or a self-loop
    /// checked by the caller).
    pub fn in_cycle(&self, u: usize) -> bool {
        self.comps[self.comp_of[u]].len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a graph from an edge list.
    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        let mut g = DiGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn scc_on_dag_is_singletons() {
        let g = graph(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]);
        let sccs = g.sccs();
        assert_eq!(sccs.comps.len(), 4);
        assert!(!sccs.in_cycle(0));
    }

    #[test]
    fn scc_finds_cycle() {
        // 0 → 1 → 2 → 0 is one SCC; 3 is alone.
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let sccs = g.sccs();
        assert_eq!(sccs.comps.len(), 2);
        assert!(sccs.in_cycle(0));
        assert!(sccs.in_cycle(1));
        assert!(!sccs.in_cycle(3));
        assert_eq!(sccs.comp_of[0], sccs.comp_of[2]);
    }

    #[test]
    fn scc_components_in_reverse_topo_order() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 1), (2, 3), (3, 4)]);
        let sccs = g.sccs();
        // Every cross-component edge must go from a later comp to an
        // earlier comp in the comps vec.
        for u in 0..g.len() {
            for &v in g.succs(u) {
                if sccs.comp_of[u] != sccs.comp_of[v] {
                    assert!(sccs.comp_of[u] > sccs.comp_of[v]);
                }
            }
        }
    }

    #[test]
    fn condensation_is_acyclic() {
        let g = graph(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 5),
                (5, 4),
            ],
        );
        let sccs = g.sccs();
        let dag = g.condense(&sccs);
        assert_eq!(dag.len(), 3);
        assert!(dag.topo_order().is_some());
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let order = g.topo_order().expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &u) in order.iter().enumerate() {
                p[u] = i;
            }
            p
        };
        for u in 0..5 {
            for &v in g.succs(u) {
                assert!(pos[u] < pos[v]);
            }
        }
    }

    #[test]
    fn topo_order_none_on_cycle() {
        let g = graph(2, &[(0, 1), (1, 0)]);
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let g = graph(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let rpo = g.reverse_postorder(0);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
        // 1 must come before 2 in rpo (2 has an edge from 1).
        let pos1 = rpo.iter().position(|&x| x == 1).unwrap();
        let pos2 = rpo.iter().position(|&x| x == 2).unwrap();
        assert!(pos1 < pos2);
    }

    #[test]
    fn dominators_diamond() {
        //     0
        //    / \
        //   1   2
        //    \ /
        //     3
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let idom = g.dominators(0);
        assert_eq!(idom[0], Some(0));
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], Some(0));
        assert_eq!(idom[3], Some(0));
        assert!(DiGraph::dominates(&idom, 0, 3));
        assert!(!DiGraph::dominates(&idom, 1, 3));
    }

    #[test]
    fn dominators_loop() {
        // 0 → 1 → 2 → 1 (back edge), 2 → 3
        let g = graph(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let idom = g.dominators(0);
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], Some(1));
        assert_eq!(idom[3], Some(2));
        assert!(DiGraph::dominates(&idom, 1, 3));
    }

    #[test]
    fn dominators_unreachable_is_none() {
        let g = graph(3, &[(0, 1)]);
        let idom = g.dominators(0);
        assert_eq!(idom[2], None);
    }

    #[test]
    fn parallel_edges_collapse() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.preds(1).len(), 1);
    }

    #[test]
    fn transitive_reduction_removes_shortcuts() {
        // 0→1→2 plus shortcut 0→2: reduction keeps only the chain.
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        let r = g.transitive_reduction();
        assert!(r.has_edge(0, 1));
        assert!(r.has_edge(1, 2));
        assert!(!r.has_edge(0, 2));
        // A genuine diamond keeps all edges.
        let d = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let rd = d.transitive_reduction();
        assert_eq!(rd.edge_count(), 4);
    }

    #[test]
    #[should_panic(expected = "needs a DAG")]
    fn transitive_reduction_rejects_cycles() {
        let g = graph(2, &[(0, 1), (1, 0)]);
        g.transitive_reduction();
    }

    #[test]
    fn large_path_does_not_overflow_stack() {
        // 100k-node path: iterative Tarjan and RPO must not recurse.
        let n = 100_000;
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        assert_eq!(g.sccs().comps.len(), n);
        assert_eq!(g.reverse_postorder(0).len(), n);
    }
}
