//! # flow — graph algorithms and control-flow graphs for MiniC
//!
//! Part of the `compreuse` workspace (a reproduction of Ding & Li,
//! *A Compiler Scheme for Reusing Intermediate Computation Results*,
//! CGO 2004). This crate provides the control-flow machinery the paper's
//! analyses are built on:
//!
//! - [`graph`] — directed graphs with Tarjan SCCs, condensation,
//!   topological order, and dominators (used for the call graph, the
//!   nesting graph of §2.3, and loop detection);
//! - [`mod@cfg`] — per-function control-flow graphs over the MiniC AST, with
//!   segment *region* extraction (mapping a loop body / `if` branch /
//!   function body to its blocks);
//! - [`bitset`] + [`dataflow`] — a gen/kill fixpoint solver (liveness,
//!   reaching definitions, availability).
//!
//! ```
//! use flow::cfg::Cfg;
//! let checked = minic::compile("int f(int n) { int s = 0; while (n) { s += n; n--; } return s; }").unwrap();
//! let cfg = Cfg::build(&checked.program.funcs[0].body);
//! let g = cfg.graph();
//! assert!(g.reverse_postorder(cfg.entry).contains(&cfg.exit));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitset;
pub mod cfg;
pub mod dataflow;
pub mod graph;

pub use bitset::BitSet;
pub use cfg::Cfg;
pub use graph::DiGraph;
