//! Property test: `BitSet` against a `HashSet<usize>` reference model.

use flow::BitSet;
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    Remove(usize),
    Contains(usize),
    UnionWith(Vec<usize>),
    IntersectWith(Vec<usize>),
    Subtract(Vec<usize>),
    Clear,
}

fn arb_ops(cap: usize) -> impl Strategy<Value = Vec<Op>> {
    let elem = 0..cap;
    let set = prop::collection::vec(0..cap, 0..16);
    prop::collection::vec(
        prop_oneof![
            elem.clone().prop_map(Op::Insert),
            elem.clone().prop_map(Op::Remove),
            elem.prop_map(Op::Contains),
            set.clone().prop_map(Op::UnionWith),
            set.clone().prop_map(Op::IntersectWith),
            set.prop_map(Op::Subtract),
            Just(Op::Clear),
        ],
        0..60,
    )
}

fn other(cap: usize, items: &[usize]) -> (BitSet, HashSet<usize>) {
    let mut b = BitSet::new(cap);
    let mut h = HashSet::new();
    for &i in items {
        b.insert(i);
        h.insert(i);
    }
    (b, h)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bitset_matches_hashset(cap in 1usize..200, ops in arb_ops(199)) {
        let ops: Vec<Op> = ops;
        let mut b = BitSet::new(cap);
        let mut h: HashSet<usize> = HashSet::new();
        for op in ops {
            match op {
                Op::Insert(i) if i < cap => {
                    prop_assert_eq!(b.insert(i), h.insert(i));
                }
                Op::Remove(i) if i < cap => {
                    prop_assert_eq!(b.remove(i), h.remove(&i));
                }
                Op::Contains(i) => {
                    prop_assert_eq!(b.contains(i), i < cap && h.contains(&i));
                }
                Op::UnionWith(items) => {
                    let items: Vec<usize> = items.into_iter().filter(|&i| i < cap).collect();
                    let (ob, oh) = other(cap, &items);
                    let changed = b.union_with(&ob);
                    let before = h.len();
                    h.extend(oh);
                    prop_assert_eq!(changed, h.len() != before);
                }
                Op::IntersectWith(items) => {
                    let items: Vec<usize> = items.into_iter().filter(|&i| i < cap).collect();
                    let (ob, oh) = other(cap, &items);
                    b.intersect_with(&ob);
                    h.retain(|i| oh.contains(i));
                }
                Op::Subtract(items) => {
                    let items: Vec<usize> = items.into_iter().filter(|&i| i < cap).collect();
                    let (ob, oh) = other(cap, &items);
                    b.subtract(&ob);
                    h.retain(|i| !oh.contains(i));
                }
                Op::Clear => {
                    b.clear();
                    h.clear();
                }
                _ => {}
            }
            // Invariants after every step.
            prop_assert_eq!(b.len(), h.len());
            prop_assert_eq!(b.is_empty(), h.is_empty());
        }
        // Final: iteration yields the sorted model contents.
        let mut model: Vec<usize> = h.into_iter().collect();
        model.sort_unstable();
        prop_assert_eq!(b.iter().collect::<Vec<_>>(), model);
    }

    #[test]
    fn fill_then_subtract_is_complement(cap in 1usize..150, items in prop::collection::vec(0usize..149, 0..20)) {
        let items: Vec<usize> = items.into_iter().filter(|&i| i < cap).collect();
        let (ob, _) = other(cap, &items);
        let mut full = BitSet::new(cap);
        full.fill();
        full.subtract(&ob);
        for i in 0..cap {
            prop_assert_eq!(full.contains(i), !items.contains(&i));
        }
    }
}
