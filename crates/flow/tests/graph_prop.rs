//! Property tests over the graph algorithms.

use flow::DiGraph;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..24).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..n * 3).prop_map(move |edges| {
            let mut g = DiGraph::new(n);
            for (a, b) in edges {
                g.add_edge(a, b);
            }
            g
        })
    })
}

fn reachable(g: &DiGraph, from: usize) -> Vec<bool> {
    let mut seen = vec![false; g.len()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(u) = stack.pop() {
        for &v in g.succs(u) {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Two nodes share an SCC iff they reach each other.
    #[test]
    fn scc_is_mutual_reachability(g in arb_graph()) {
        let sccs = g.sccs();
        // Every node appears in exactly one component.
        let mut count = vec![0usize; g.len()];
        for comp in &sccs.comps {
            for &u in comp {
                count[u] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
        // Spot-check mutual reachability against the partition.
        for a in 0..g.len() {
            let ra = reachable(&g, a);
            for (b, &a_reaches_b) in ra.iter().enumerate() {
                let mutual = a_reaches_b && reachable(&g, b)[a];
                prop_assert_eq!(
                    sccs.comp_of[a] == sccs.comp_of[b],
                    mutual,
                    "a={} b={}", a, b
                );
            }
        }
    }

    /// The condensation is acyclic and edge-faithful.
    #[test]
    fn condensation_is_a_faithful_dag(g in arb_graph()) {
        let sccs = g.sccs();
        let dag = g.condense(&sccs);
        prop_assert!(dag.topo_order().is_some(), "condensation must be acyclic");
        // Every original cross-component edge appears.
        for u in 0..g.len() {
            for &v in g.succs(u) {
                if sccs.comp_of[u] != sccs.comp_of[v] {
                    prop_assert!(dag.has_edge(sccs.comp_of[u], sccs.comp_of[v]));
                }
            }
        }
    }

    /// Transitive reduction preserves reachability with a minimal edge set.
    #[test]
    fn transitive_reduction_preserves_reachability(g in arb_graph()) {
        let sccs = g.sccs();
        let dag = g.condense(&sccs);
        let red = dag.transitive_reduction();
        prop_assert!(red.edge_count() <= dag.edge_count());
        for u in 0..dag.len() {
            let before = reachable(&dag, u);
            let after = reachable(&red, u);
            prop_assert_eq!(before, after, "reachability changed from {}", u);
        }
    }

    /// Every node reachable from the entry is dominated by the entry, and
    /// the idom of a node is a strict dominator appearing on every path.
    #[test]
    fn dominator_basics(g in arb_graph()) {
        let entry = 0usize;
        let idom = g.dominators(entry);
        let seen = reachable(&g, entry);
        for u in 0..g.len() {
            if u == entry {
                prop_assert_eq!(idom[u], Some(entry));
            } else if seen[u] {
                let d = idom[u].expect("reachable nodes have an idom");
                prop_assert!(DiGraph::dominates(&idom, entry, u));
                // Removing the idom must disconnect u from entry.
                let mut cut = DiGraph::new(g.len());
                for a in 0..g.len() {
                    if a == d { continue; }
                    for &b in g.succs(a) {
                        if b != d {
                            cut.add_edge(a, b);
                        }
                    }
                }
                if d != entry && d != u {
                    prop_assert!(
                        !reachable(&cut, entry)[u],
                        "idom {} of {} is not a cut vertex", d, u
                    );
                }
            } else {
                prop_assert_eq!(idom[u], None);
            }
        }
    }

    /// Reverse postorder visits every reachable node exactly once, parents
    /// of tree edges first.
    #[test]
    fn reverse_postorder_is_a_permutation_of_reachable(g in arb_graph()) {
        let rpo = g.reverse_postorder(0);
        let seen = reachable(&g, 0);
        let expected = seen.iter().filter(|&&s| s).count();
        prop_assert_eq!(rpo.len(), expected);
        let mut once = std::collections::HashSet::new();
        for &u in &rpo {
            prop_assert!(seen[u]);
            prop_assert!(once.insert(u), "duplicate {}", u);
        }
        prop_assert_eq!(rpo[0], 0);
    }
}
