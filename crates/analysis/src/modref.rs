//! Interprocedural MOD/REF summaries.
//!
//! For every function: which variables it may *modify* and which it may
//! *reference*, directly or through any callee (the transitive closure the
//! paper needs for its global def-use chains: "a definition in one
//! procedure may be used in another procedure through pointers or global
//! variables"). Through-pointer effects are resolved to concrete variables
//! by the points-to analysis, so a callee writing `*p` where `p` points to
//! the caller's local shows up as a modification of that local.

use crate::callgraph::CallGraph;
use crate::pointsto::PointsTo;
use crate::vars::VarId;
use minic::ast::{Expr, ExprKind, StmtKind, UnOp};
use minic::sema::{Checked, Res};
use std::collections::HashSet;

/// Per-function MOD/REF sets over [`VarId`]s.
#[derive(Debug)]
pub struct ModRef {
    /// Variables function `f` may write (transitively).
    pub modifies: Vec<HashSet<VarId>>,
    /// Variables function `f` may read (transitively).
    pub refs: Vec<HashSet<VarId>>,
    /// Variables function `f` writes *directly* (no callee effects) —
    /// used by the code-coverage/invariance analysis to locate the
    /// functions that actually contain definitions.
    pub direct_modifies: Vec<HashSet<VarId>>,
}

impl ModRef {
    /// Computes summaries by a fixpoint over the call graph.
    pub fn build(checked: &Checked, cg: &CallGraph, pts: &PointsTo) -> ModRef {
        let n = checked.program.funcs.len();
        let mut modifies: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        let mut refs: Vec<HashSet<VarId>> = vec![HashSet::new(); n];

        // Direct effects.
        for (fi, f) in checked.program.funcs.iter().enumerate() {
            let mut col = Collector {
                checked,
                pts,
                func: fi,
                modifies: HashSet::new(),
                refs: HashSet::new(),
            };
            col.block(&f.body);
            modifies[fi] = col.modifies;
            refs[fi] = col.refs;
        }
        let direct_modifies = modifies.clone();

        // Transitive closure over the call graph.
        let mut changed = true;
        while changed {
            changed = false;
            for fi in 0..n {
                for &callee in &cg.callees[fi] {
                    if callee == fi {
                        continue;
                    }
                    let add_mod: Vec<VarId> = modifies[callee]
                        .iter()
                        .filter(|v| !modifies[fi].contains(v))
                        .copied()
                        .collect();
                    let add_ref: Vec<VarId> = refs[callee]
                        .iter()
                        .filter(|v| !refs[fi].contains(v))
                        .copied()
                        .collect();
                    if !add_mod.is_empty() || !add_ref.is_empty() {
                        changed = true;
                        modifies[fi].extend(add_mod);
                        refs[fi].extend(add_ref);
                    }
                }
            }
        }
        ModRef {
            modifies,
            refs,
            direct_modifies,
        }
    }

    /// All variables (any function's) that carry a write anywhere in the
    /// program — the complement is "never modified", the cheap invariance
    /// test.
    pub fn ever_modified(&self) -> HashSet<VarId> {
        let mut all = HashSet::new();
        for m in &self.modifies {
            all.extend(m.iter().copied());
        }
        all
    }
}

struct Collector<'a> {
    checked: &'a Checked,
    pts: &'a PointsTo,
    func: usize,
    modifies: HashSet<VarId>,
    refs: HashSet<VarId>,
}

impl<'a> Collector<'a> {
    fn var(&self, e: &Expr) -> Option<VarId> {
        VarId::of_expr(&self.checked.info, self.func, e)
    }

    fn block(&mut self, b: &minic::ast::Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &minic::ast::Stmt) {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    self.read(e);
                    if let Some(&slot) = self.checked.info.frames[self.func].decl_offsets.get(&s.id)
                    {
                        self.modifies.insert(VarId::Local {
                            func: self.func,
                            slot,
                        });
                    }
                }
            }
            StmtKind::Expr(e) => self.read(e),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.read(cond);
                self.block(then_blk);
                if let Some(b) = else_blk {
                    self.block(b);
                }
            }
            StmtKind::While { cond, body } => {
                self.read(cond);
                self.block(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.block(body);
                self.read(cond);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(st) = init {
                    self.stmt(st);
                }
                if let Some(e) = cond {
                    self.read(e);
                }
                if let Some(e) = step {
                    self.read(e);
                }
                self.block(body);
            }
            StmtKind::Return(Some(e)) => self.read(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
            StmtKind::Profile(p) => self.block(&p.body),
            StmtKind::Memo(m) => self.block(&m.body),
        }
    }

    /// Records effects of evaluating `e` as an rvalue.
    fn read(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) => {}
            ExprKind::Var(_) => {
                if let Some(v) = self.var(e) {
                    self.refs.insert(v);
                }
            }
            ExprKind::Unary(UnOp::Addr, lv) => {
                // Taking an address reads nothing, but evaluate index
                // expressions inside.
                self.lvalue_subreads(lv);
            }
            ExprKind::Unary(UnOp::Deref, p) => {
                self.read(p);
                self.deref_targets(p, false);
            }
            ExprKind::Unary(_, a) | ExprKind::Cast(_, a) => self.read(a),
            ExprKind::Binary(_, a, b) => {
                self.read(a);
                self.read(b);
            }
            ExprKind::IncDec(_, lv) => self.write(lv, true),
            ExprKind::Assign(l, r) => {
                self.read(r);
                self.write(l, false);
            }
            ExprKind::AssignOp(_, l, r) => {
                self.read(r);
                self.write(l, true);
            }
            ExprKind::Ternary(c, t, f) => {
                self.read(c);
                self.read(t);
                self.read(f);
            }
            ExprKind::Call(callee, args) => {
                self.read_callee(callee);
                for a in args {
                    self.read(a);
                }
            }
            ExprKind::Index(base, idx) => {
                self.read(idx);
                self.read_base_element(base);
            }
            ExprKind::Member(base, _) => {
                // Reading s.f reads (part of) s.
                self.read(base);
            }
            ExprKind::Arrow(base, _) => {
                self.read(base);
                self.deref_targets(base, false);
            }
        }
    }

    fn read_callee(&mut self, callee: &Expr) {
        let mut c = callee;
        while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
            c = inner;
        }
        if let ExprKind::Var(_) = &c.kind {
            match self.checked.info.res.get(&c.id) {
                Some(Res::Func(_)) | Some(Res::Builtin(_)) => return,
                _ => {}
            }
        }
        self.read(c);
    }

    /// Reading `base[...]`: reads the array/pointee variable(s).
    fn read_base_element(&mut self, base: &Expr) {
        match &base.kind {
            ExprKind::Var(_) => {
                if let Some(v) = self.var(base) {
                    self.refs.insert(v);
                    // If base is a pointer, also the pointees.
                    self.deref_targets(base, false);
                }
            }
            _ => {
                self.read(base);
                self.deref_targets(base, false);
            }
        }
    }

    /// Adds the points-to targets of pointer expression `p` to MOD (write)
    /// or REF (read).
    fn deref_targets(&mut self, p: &Expr, write: bool) {
        let targets = self.pointer_targets(p);
        if write {
            self.modifies.extend(targets);
        } else {
            self.refs.extend(targets);
        }
    }

    /// Conservative targets of a pointer-valued expression: the pointees of
    /// the underlying pointer variable(s).
    fn pointer_targets(&mut self, p: &Expr) -> Vec<VarId> {
        match &p.kind {
            ExprKind::Var(_) => match self.var(p) {
                Some(v) => {
                    let ty = self.checked.info.expr_types.get(&p.id);
                    if matches!(ty, Some(minic::ast::Type::Array(..))) {
                        vec![v] // decayed array: the target is the array
                    } else {
                        self.pts.pointees(v)
                    }
                }
                None => Vec::new(),
            },
            ExprKind::Unary(UnOp::Addr, lv) => match &lv.kind {
                ExprKind::Var(_) => self.var(lv).into_iter().collect(),
                ExprKind::Index(base, _) => self.pointer_targets(base),
                ExprKind::Member(base, _) => {
                    // Address of a field: the base variable.
                    let mut cur = base.as_ref();
                    loop {
                        match &cur.kind {
                            ExprKind::Var(_) => return self.var(cur).into_iter().collect(),
                            ExprKind::Member(b, _) => cur = b,
                            _ => return Vec::new(),
                        }
                    }
                }
                _ => Vec::new(),
            },
            ExprKind::Binary(_, a, b) => {
                let mut t = self.pointer_targets(a);
                t.extend(self.pointer_targets(b));
                t
            }
            ExprKind::Cast(_, a)
            | ExprKind::IncDec(_, a)
            | ExprKind::Assign(_, a)
            | ExprKind::AssignOp(_, _, a) => self.pointer_targets(a),
            ExprKind::Ternary(_, t, f) => {
                let mut v = self.pointer_targets(t);
                v.extend(self.pointer_targets(f));
                v
            }
            _ => Vec::new(),
        }
    }

    /// Evaluates the index/pointer sub-expressions of an lvalue without
    /// treating the lvalue itself as read.
    fn lvalue_subreads(&mut self, lv: &Expr) {
        match &lv.kind {
            ExprKind::Var(_) => {}
            ExprKind::Unary(UnOp::Deref, p) => self.read(p),
            ExprKind::Index(base, idx) => {
                self.read(idx);
                match &base.kind {
                    ExprKind::Var(_) => {
                        // Pointer bases are read to compute the address.
                        let ty = self.checked.info.expr_types.get(&base.id);
                        if matches!(ty, Some(minic::ast::Type::Ptr(_))) {
                            self.read(base);
                        }
                    }
                    _ => self.lvalue_subreads(base),
                }
            }
            ExprKind::Member(base, _) => self.lvalue_subreads(base),
            ExprKind::Arrow(base, _) => self.read(base),
            _ => self.read(lv),
        }
    }

    /// Records a write to lvalue `lv`; `also_read` for `op=`/`++`.
    fn write(&mut self, lv: &Expr, also_read: bool) {
        self.lvalue_subreads(lv);
        if also_read {
            self.read_target_of(lv);
        }
        match &lv.kind {
            ExprKind::Var(_) => {
                if let Some(v) = self.var(lv) {
                    self.modifies.insert(v);
                }
            }
            ExprKind::Unary(UnOp::Deref, p) => self.deref_targets(p, true),
            ExprKind::Index(base, _) => match &base.kind {
                ExprKind::Var(_) => {
                    let ty = self.checked.info.expr_types.get(&base.id);
                    if matches!(ty, Some(minic::ast::Type::Array(..))) {
                        if let Some(v) = self.var(base) {
                            self.modifies.insert(v);
                        }
                    } else {
                        self.deref_targets(base, true);
                    }
                }
                _ => {
                    let targets = self.pointer_targets(base);
                    self.modifies.extend(targets);
                }
            },
            ExprKind::Member(base, _) => {
                // Writing s.f writes s.
                let mut cur = base.as_ref();
                loop {
                    match &cur.kind {
                        ExprKind::Var(_) => {
                            if let Some(v) = self.var(cur) {
                                self.modifies.insert(v);
                            }
                            break;
                        }
                        ExprKind::Member(b, _) => cur = b,
                        _ => {
                            self.read(cur);
                            break;
                        }
                    }
                }
            }
            ExprKind::Arrow(base, _) => self.deref_targets(base, true),
            _ => self.read(lv),
        }
    }

    /// The read half of a read-modify-write.
    fn read_target_of(&mut self, lv: &Expr) {
        match &lv.kind {
            ExprKind::Var(_) => {
                if let Some(v) = self.var(lv) {
                    self.refs.insert(v);
                }
            }
            ExprKind::Unary(UnOp::Deref, p) | ExprKind::Arrow(p, _) => self.deref_targets(p, false),
            ExprKind::Index(base, _) => self.read_base_element(base),
            ExprKind::Member(base, _) => self.read(base),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> (minic::Checked, ModRef) {
        let checked = minic::compile(src).unwrap();
        let cg = CallGraph::build(&checked);
        let pts = PointsTo::build(&checked, &cg);
        let mr = ModRef::build(&checked, &cg, &pts);
        (checked, mr)
    }

    #[test]
    fn direct_global_effects() {
        let (checked, mr) = build(
            "int g; int h;
             void writer() { g = 1; }
             int reader() { return h; }
             int main() { writer(); return reader(); }",
        );
        let w = checked.info.func_index["writer"];
        let r = checked.info.func_index["reader"];
        assert!(mr.modifies[w].contains(&VarId::Global(0)));
        assert!(!mr.modifies[w].contains(&VarId::Global(1)));
        assert!(mr.refs[r].contains(&VarId::Global(1)));
        assert!(!mr.modifies[r].contains(&VarId::Global(1)));
    }

    #[test]
    fn transitive_closure_through_calls() {
        let (checked, mr) = build(
            "int g;
             void leaf() { g = 1; }
             void mid() { leaf(); }
             int main() { mid(); return g; }",
        );
        let main = checked.info.func_index["main"];
        let mid = checked.info.func_index["mid"];
        assert!(mr.modifies[mid].contains(&VarId::Global(0)));
        assert!(mr.modifies[main].contains(&VarId::Global(0)));
        assert!(mr.refs[main].contains(&VarId::Global(0)));
    }

    #[test]
    fn through_pointer_write_hits_callers_local() {
        let (checked, mr) = build(
            "void set(int *p) { *p = 9; }
             int main() { int x = 0; set(&x); return x; }",
        );
        let set = checked.info.func_index["set"];
        let main = checked.info.func_index["main"];
        assert!(
            mr.modifies[set].contains(&VarId::Local {
                func: main,
                slot: 0
            }),
            "callee writes the caller's local through the pointer: {:?}",
            mr.modifies[set]
        );
    }

    #[test]
    fn array_writes_are_weak_whole_array_mods() {
        let (checked, mr) = build(
            "int buf[16];
             void fill() { for (int i = 0; i < 16; i++) buf[i] = i; }
             int main() { fill(); return buf[3]; }",
        );
        let fill = checked.info.func_index["fill"];
        assert!(mr.modifies[fill].contains(&VarId::Global(0)));
        assert!(!mr.refs[fill].contains(&VarId::Global(0)), "write only");
    }

    #[test]
    fn ever_modified_excludes_readonly_tables() {
        let (_, mr) = build(
            "int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
             int scratch;
             int quan(int val) {
                 int i;
                 for (i = 0; i < 15; i++) if (val < power2[i]) break;
                 return i;
             }
             int main() { scratch = quan(5); return scratch; }",
        );
        let modified = mr.ever_modified();
        assert!(
            !modified.contains(&VarId::Global(0)),
            "power2 is never written"
        );
        assert!(modified.contains(&VarId::Global(1)));
    }

    #[test]
    fn recursive_functions_converge() {
        let (checked, mr) = build(
            "int g;
             int even(int n) { if (n == 0) { g = 1; return 1; } return odd(n - 1); }
             int odd(int n) { if (n == 0) return 0; return even(n - 1); }
             int main() { return even(4); }",
        );
        let odd = checked.info.func_index["odd"];
        assert!(mr.modifies[odd].contains(&VarId::Global(0)));
    }

    #[test]
    fn struct_member_write_mods_whole_struct() {
        let (checked, mr) = build(
            "struct pt { int x; int y; };
             struct pt origin;
             void move_x() { origin.x = origin.x + 1; }
             int main() { move_x(); return origin.y; }",
        );
        let mv = checked.info.func_index["move_x"];
        assert!(mr.modifies[mv].contains(&VarId::Global(0)));
        assert!(mr.refs[mv].contains(&VarId::Global(0)));
    }
}
