//! Segment input/output determination (paper §2.1):
//!
//! > "The inputs of a code segment are those variables or array elements
//! > that have *upward-exposed reads* in the code segment, excluding those
//! > recognized by the compiler as invariants at the entry of the code
//! > segment. \[...\] The output variables are identified by liveness
//! > analysis. A variable computed by the code segment is an output
//! > variable if it remains live at the exit of the code segment."
//!
//! Plus the paper's *array reference analysis for array input/output*:
//! reads/writes through a pointer become whole-array operands keyed on the
//! pointee contents (the MPEG2 64-entry blocks), provided the pointer's
//! target is unambiguous and the pointer always carries the array's base
//! address.

use crate::invariance::invariant_vars;
use crate::segments::{Reject, SegKind, Segment};
use crate::usedef::{instr_effects, Effects};
use crate::vars::{name_of_var, type_of_var, VarId, VarMap};
use crate::Analyses;
use flow::bitset::BitSet;
use flow::cfg::Cfg;
use flow::dataflow::{backward_may, GenKill};
use minic::ast::{
    Block, Expr, ExprKind, MemoOperand, OperandShape, ScalarKind, StmtKind, Type, UnOp,
};
use minic::sema::{Checked, Res};
use std::collections::HashSet;

/// The determined interface of a segment.
#[derive(Debug, Clone)]
pub struct SegIo {
    /// Input operands (the hash key), sorted by name.
    pub inputs: Vec<MemoOperand>,
    /// Output operands, sorted by name.
    pub outputs: Vec<MemoOperand>,
    /// For function-body segments: the memoized return kind.
    pub ret: Option<ScalarKind>,
    /// Total key width in words.
    pub key_words: usize,
    /// Total output width in words (including the return slot).
    pub out_words: usize,
    /// Directly-named invariant global regions the segment reads, dropped
    /// from the key by the §2.1 invariance filter: `(name, words)`, sorted
    /// by name. The dependency planner turns these into non-mutable
    /// validated dependencies so stored results also witness their
    /// (expected-constant) contents.
    pub invariant_reads: Vec<(String, usize)>,
    /// Names of input operands that resolve to globals, sorted. Key
    /// reduction (moving a mutable region out of the key into a validated
    /// dependency) applies only to these.
    pub global_inputs: Vec<String>,
}

impl SegIo {
    /// The list of input variable names — the §2.5 merge criterion
    /// ("multiple code segments with identical input variables").
    pub fn input_signature(&self) -> Vec<(String, OperandShape, ScalarKind)> {
        self.inputs
            .iter()
            .map(|op| (op.name.clone(), op.shape, op.elem))
            .collect()
    }
}

/// Computes inputs/outputs of `seg`.
///
/// # Errors
///
/// Rejects segments whose interface cannot be expressed as memo operands
/// (struct values, ambiguous pointers, pointer outputs, un-nameable
/// variables, ...) and segments with no inputs or no outputs.
pub fn seg_io(checked: &Checked, an: &Analyses, seg: &Segment) -> Result<SegIo, Reject> {
    let func = &checked.program.funcs[seg.func];
    let cfg = Cfg::build(&func.body);
    let varmap = VarMap::for_func(&checked.info, seg.func);
    let ctx = an.effect_ctx(checked, seg.func);

    // Per-block upward-exposed / kill sets plus aggregate effects.
    let nblocks = cfg.len();
    let mut gk = Vec::with_capacity(nblocks);
    let mut block_fx: Vec<Effects> = Vec::with_capacity(nblocks);
    for blk in &cfg.blocks {
        let mut ue = BitSet::new(varmap.len());
        let mut kill = BitSet::new(varmap.len());
        let mut agg = Effects::default();
        for instr in &blk.instrs {
            let fx = instr_effects(ctx, instr);
            for &u in &fx.uses {
                if let Some(i) = varmap.index_of(u) {
                    if !kill.contains(i) {
                        ue.insert(i);
                    }
                }
            }
            for &d in &fx.strong_defs {
                if let Some(i) = varmap.index_of(d) {
                    kill.insert(i);
                }
            }
            agg.uses.extend(fx.uses.iter().copied());
            agg.strong_defs.extend(fx.strong_defs.iter().copied());
            agg.weak_defs.extend(fx.weak_defs.iter().copied());
        }
        gk.push(GenKill { gen: ue, kill });
        block_fx.push(agg);
    }

    // Whole-function liveness; globals are live at exit.
    let g = cfg.graph();
    let mut boundary = BitSet::new(varmap.len());
    for (i, v) in varmap.iter() {
        if matches!(v, VarId::Global(_)) {
            boundary.insert(i);
        }
    }
    let live = backward_may(&g, &gk, &[cfg.exit], &boundary);

    // The segment's region.
    let region: HashSet<usize> = match seg.kind {
        SegKind::FuncBody => (0..nblocks).collect(),
        _ => cfg.region_of(&seg.body_stmt_ids(&checked.program)),
    };
    if region.is_empty() {
        return Err(Reject::Empty);
    }

    // Upward-exposed reads of the region: fixpoint restricted to region
    // blocks (exits contribute nothing).
    let mut rin: Vec<BitSet> = vec![BitSet::new(varmap.len()); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &region {
            let mut out = BitSet::new(varmap.len());
            for &s in &cfg.blocks[b].succs {
                if region.contains(&s) {
                    out.union_with(&rin[s]);
                }
            }
            out.subtract(&gk[b].kill);
            out.union_with(&gk[b].gen);
            if out != rin[b] {
                rin[b] = out;
                changed = true;
            }
        }
    }
    let entries: Vec<usize> = match seg.kind {
        SegKind::FuncBody => vec![cfg.entry],
        _ => region
            .iter()
            .copied()
            .filter(|&b| cfg.blocks[b].preds.iter().any(|p| !region.contains(p)))
            .collect(),
    };
    let mut ue_vars: HashSet<VarId> = HashSet::new();
    for &e in &entries {
        for i in rin[e].iter() {
            ue_vars.insert(varmap.var_at(i));
        }
    }

    // Locals *declared inside* the segment have no value at segment entry
    // (weak array writes never kill, so a fully-initialized temporary like
    // fdct's `tmp[64]` still looks upward-exposed). They can be neither
    // inputs nor outputs: a correct program writes them before reading,
    // and their scope ends with the segment.
    let declared_inside: HashSet<VarId> = {
        let body_ids = seg.body_stmt_ids(&checked.program);
        checked.info.frames[seg.func]
            .decl_offsets
            .iter()
            .filter(|(stmt_id, _)| body_ids.contains(stmt_id))
            .map(|(_, &slot)| VarId::Local {
                func: seg.func,
                slot,
            })
            .collect()
    };

    // Drop invariants (and inside-declared locals) from the key.
    let invariants = invariant_vars(checked, an, seg, &ue_vars);
    let input_vars: HashSet<VarId> = ue_vars
        .difference(&invariants)
        .copied()
        .filter(|v| !declared_inside.contains(v))
        .collect();

    // Record which invariant *global* regions were dropped, so the
    // dependency planner can re-attach them as validated (non-mutable)
    // dependencies. Unnameable or non-arithmetic regions are skipped: they
    // simply stay untracked, as before.
    let mut invariant_reads: Vec<(String, usize)> = Vec::new();
    for &v in &invariants {
        if !matches!(v, VarId::Global(_)) {
            continue;
        }
        let Some(ty) = type_of_var(&checked.info, &checked.program, v) else {
            continue;
        };
        let words = match &ty {
            Type::Int | Type::Float => 1,
            Type::Array(elem, n) if elem.is_arith() => *n,
            _ => continue,
        };
        let Ok(name) = nameable(checked, seg.func, v) else {
            continue;
        };
        invariant_reads.push((name, words));
    }
    invariant_reads.sort();
    invariant_reads.dedup();

    // Aggregate region defs and their liveness at region exits.
    let mut defs: HashSet<VarId> = HashSet::new();
    for &b in &region {
        defs.extend(block_fx[b].strong_defs.iter().copied());
        defs.extend(block_fx[b].weak_defs.iter().copied());
    }
    let mut live_after: HashSet<VarId> = HashSet::new();
    match seg.kind {
        SegKind::FuncBody => {
            // Locals die with the frame; only globals (boundary) survive.
            for i in boundary.iter() {
                live_after.insert(varmap.var_at(i));
            }
        }
        _ => {
            for (from, to) in cfg.region_exits(&region) {
                let _ = from;
                for i in live.entry[to].iter() {
                    live_after.insert(varmap.var_at(i));
                }
            }
        }
    }

    // Syntactic access scan of the body: named variables, pointer-mediated
    // reads/writes, and anything we cannot express.
    let scan = scan_accesses(checked, an, seg)?;

    // Build input operands.
    let mut inputs: Vec<MemoOperand> = Vec::new();
    let mut keyed_targets: HashSet<VarId> = HashSet::new();

    // Pass 1: pointer inputs become Deref operands over their unique
    // target, and record which targets their keys already cover.
    let mut ptr_inputs: Vec<(VarId, usize)> = Vec::new(); // (ptr var, words)
    for &v in &input_vars {
        let ty = type_of_var(&checked.info, &checked.program, v)
            .ok_or_else(|| Reject::UnsupportedOperand("unknown variable type".into()))?;
        if let Type::Ptr(elem) = &ty {
            if !elem.is_arith() {
                return Err(Reject::UnsupportedOperand(format!(
                    "pointer to non-arithmetic type {elem}"
                )));
            }
            // Only pointers actually read through need keying of contents;
            // a pointer used as a raw value is unsupported.
            if scan.ptr_value_uses.contains(&v) {
                return Err(Reject::UnsupportedOperand(
                    "pointer used as a raw value".into(),
                ));
            }
            let target = unique_target(an, v)
                .ok_or_else(|| Reject::UnsupportedOperand("ambiguous pointer target".into()))?;
            let words = target_extent(checked, target)
                .ok_or_else(|| Reject::UnsupportedOperand("pointer target has no extent".into()))?;
            if !pointer_bases_ok(checked, an, v, &mut HashSet::new()) {
                return Err(Reject::UnsupportedOperand(
                    "pointer may not carry the array base address".into(),
                ));
            }
            keyed_targets.insert(target);
            ptr_inputs.push((v, words));
        }
    }

    let mut global_inputs: Vec<String> = Vec::new();
    for &v in &input_vars {
        let ty = type_of_var(&checked.info, &checked.program, v)
            .ok_or_else(|| Reject::UnsupportedOperand("unknown variable type".into()))?;
        let name = nameable(checked, seg.func, v)?;
        let is_global = matches!(v, VarId::Global(_));
        match &ty {
            Type::Int => {
                if is_global {
                    global_inputs.push(name.clone());
                }
                inputs.push(MemoOperand::scalar(name, ScalarKind::Int));
            }
            Type::Float => {
                if is_global {
                    global_inputs.push(name.clone());
                }
                inputs.push(MemoOperand::scalar(name, ScalarKind::Float));
            }
            Type::Array(elem, n) => {
                if !elem.is_arith() {
                    return Err(Reject::UnsupportedOperand(format!(
                        "array of non-arithmetic type {elem}"
                    )));
                }
                // If the only accesses to this array go through an
                // already-keyed pointer, the Deref operand covers it.
                if keyed_targets.contains(&v) && !scan.named_vars.contains(&v) {
                    continue;
                }
                if is_global {
                    global_inputs.push(name.clone());
                }
                inputs.push(MemoOperand {
                    name,
                    shape: OperandShape::Array(*n),
                    elem: scalar_kind(elem),
                });
            }
            Type::Ptr(elem) => {
                let words = ptr_inputs
                    .iter()
                    .find(|(p, _)| *p == v)
                    .map(|&(_, w)| w)
                    .expect("collected in pass 1");
                inputs.push(MemoOperand {
                    name,
                    shape: OperandShape::Deref(words),
                    elem: scalar_kind(elem),
                });
            }
            Type::Struct(_) => return Err(Reject::UnsupportedOperand("struct-typed input".into())),
            Type::Func(_) => {
                return Err(Reject::UnsupportedOperand("function-pointer input".into()))
            }
            Type::Void => unreachable!("void variables rejected by sema"),
        }
    }

    // Build output operands.
    let mut outputs: Vec<MemoOperand> = Vec::new();
    let mut covered: HashSet<VarId> = HashSet::new();

    // Through-pointer writes restore through the pointer.
    for &p in &scan.ptr_writes {
        let target = unique_target(an, p)
            .ok_or_else(|| Reject::UnsupportedOperand("ambiguous written pointer".into()))?;
        let words = target_extent(checked, target)
            .ok_or_else(|| Reject::UnsupportedOperand("written target has no extent".into()))?;
        if !pointer_bases_ok(checked, an, p, &mut HashSet::new()) {
            return Err(Reject::UnsupportedOperand(
                "written pointer may not carry the array base address".into(),
            ));
        }
        let pty = type_of_var(&checked.info, &checked.program, p)
            .ok_or_else(|| Reject::UnsupportedOperand("unknown pointer type".into()))?;
        let Type::Ptr(elem) = pty else {
            return Err(Reject::UnsupportedOperand("non-pointer deref write".into()));
        };
        let name = nameable(checked, seg.func, p)?;
        outputs.push(MemoOperand {
            name,
            shape: OperandShape::Deref(words),
            elem: scalar_kind(&elem),
        });
        covered.insert(target);
    }

    for &v in &defs {
        if declared_inside.contains(&v) {
            continue; // scoped to the segment, dead at exit
        }
        if covered.contains(&v) && !scan.named_writes.contains(&v) {
            continue; // restored through the pointer already
        }
        let keep = match v {
            VarId::Global(_) => true,
            VarId::Local { func, .. } => {
                func == seg.func
                    && !matches!(seg.kind, SegKind::FuncBody)
                    && live_after.contains(&v)
            }
        };
        if let VarId::Local { func, .. } = v {
            if func != seg.func {
                // A callee wrote some other function's local through a
                // stored pointer — cannot name it here.
                if live_after.contains(&v) {
                    return Err(Reject::UnsupportedOperand(
                        "write to another function's local".into(),
                    ));
                }
                continue;
            }
        }
        if !keep {
            continue;
        }
        let ty = type_of_var(&checked.info, &checked.program, v)
            .ok_or_else(|| Reject::UnsupportedOperand("unknown output type".into()))?;
        let name = nameable(checked, seg.func, v)?;
        match &ty {
            Type::Int => outputs.push(MemoOperand::scalar(name, ScalarKind::Int)),
            Type::Float => outputs.push(MemoOperand::scalar(name, ScalarKind::Float)),
            Type::Array(elem, n) => {
                if !elem.is_arith() {
                    return Err(Reject::UnsupportedOperand(format!(
                        "array of non-arithmetic type {elem}"
                    )));
                }
                outputs.push(MemoOperand {
                    name,
                    shape: OperandShape::Array(*n),
                    elem: scalar_kind(elem),
                });
            }
            Type::Ptr(_) | Type::Func(_) => {
                return Err(Reject::UnsupportedOperand("pointer-valued output".into()))
            }
            Type::Struct(_) => {
                return Err(Reject::UnsupportedOperand("struct-typed output".into()))
            }
            Type::Void => unreachable!(),
        }
    }

    // Return value.
    let ret = match seg.kind {
        SegKind::FuncBody => match &func.ret {
            Type::Int => Some(ScalarKind::Int),
            Type::Float => Some(ScalarKind::Float),
            Type::Void => None,
            other => {
                return Err(Reject::UnsupportedOperand(format!(
                    "function returns {other}"
                )))
            }
        },
        _ => None,
    };

    inputs.sort_by(|a, b| a.name.cmp(&b.name));
    inputs.dedup();
    outputs.sort_by(|a, b| a.name.cmp(&b.name));
    outputs.dedup();
    global_inputs.sort();
    global_inputs.dedup();

    if inputs.is_empty() {
        return Err(Reject::NoInputs);
    }
    if outputs.is_empty() && ret.is_none() {
        return Err(Reject::NoOutputs);
    }

    let key_words = inputs.iter().map(|o| o.words()).sum();
    let out_words = outputs.iter().map(|o| o.words()).sum::<usize>() + usize::from(ret.is_some());
    Ok(SegIo {
        inputs,
        outputs,
        ret,
        key_words,
        out_words,
        invariant_reads,
        global_inputs,
    })
}

fn scalar_kind(ty: &Type) -> ScalarKind {
    match ty {
        Type::Float => ScalarKind::Float,
        _ => ScalarKind::Int,
    }
}

/// A variable is nameable for memo operands if its source name uniquely
/// resolves to it from the segment's scope.
fn nameable(checked: &Checked, func: usize, v: VarId) -> Result<String, Reject> {
    let name = name_of_var(&checked.info, &checked.program, v);
    if name.starts_with('<') {
        return Err(Reject::UnsupportedOperand("unnameable variable".into()));
    }
    // Count declarations of this name within the function; shadowing makes
    // the name ambiguous at transform time.
    let f = &checked.program.funcs[func];
    let mut count = f.params.iter().filter(|p| p.name == name).count();
    minic::visit::for_each_stmt(&f.body, |s| {
        if let StmtKind::Decl { name: n, .. } = &s.kind {
            if *n == name {
                count += 1;
            }
        }
    });
    match v {
        VarId::Global(_) => {
            if count > 0 {
                return Err(Reject::UnsupportedOperand(format!(
                    "global `{name}` shadowed in function"
                )));
            }
        }
        VarId::Local { .. } => {
            if count > 1 {
                return Err(Reject::UnsupportedOperand(format!(
                    "local `{name}` shadowed in function"
                )));
            }
        }
    }
    Ok(name)
}

/// The unique points-to target of `p`, if exactly one.
fn unique_target(an: &Analyses, p: VarId) -> Option<VarId> {
    let pts = an.pts.pointees(p);
    if pts.len() == 1 {
        Some(pts[0])
    } else {
        None
    }
}

/// Word extent of a pointer target: full array length, or 1 for a scalar.
fn target_extent(checked: &Checked, target: VarId) -> Option<usize> {
    let ty = type_of_var(&checked.info, &checked.program, target)?;
    match ty {
        Type::Array(elem, n) if elem.is_arith() => Some(n),
        Type::Int | Type::Float => Some(1),
        _ => None,
    }
}

/// Verifies that every value flowing into pointer variable `p` is the base
/// address of an array (whole-array decay or `&arr[0]`), possibly through
/// other base-carrying pointers. This justifies reading the target's full
/// extent starting at the pointer.
fn pointer_bases_ok(
    checked: &Checked,
    an: &Analyses,
    p: VarId,
    visiting: &mut HashSet<VarId>,
) -> bool {
    if !visiting.insert(p) {
        return true; // cycle: assume ok, the other sources decide
    }
    let VarId::Local { func, slot } = p else {
        // Global pointer: check assignments to it everywhere.
        return global_ptr_bases_ok(checked, an, p, visiting);
    };
    let f = &checked.program.funcs[func];
    let frame = &checked.info.frames[func];

    // Parameter? Then check every call site's actual.
    let param_pos = frame.param_offsets.iter().position(|&off| off == slot);
    let mut ok = true;

    if let Some(pos) = param_pos {
        for (ci, caller) in checked.program.funcs.iter().enumerate() {
            minic::visit::for_each_expr(&caller.body, |e| {
                if !ok {
                    return;
                }
                if let ExprKind::Call(callee, args) = &e.kind {
                    let mut c = callee.as_ref();
                    while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
                        c = inner;
                    }
                    let targets: Vec<usize> = match checked.info.res.get(&c.id) {
                        Some(Res::Func(fi)) => vec![*fi],
                        Some(Res::Builtin(_)) => vec![],
                        _ => an.cg.callees[ci].clone(),
                    };
                    if targets.contains(&func) {
                        match args.get(pos) {
                            Some(arg) => {
                                if !base_expr_ok(checked, an, ci, arg, visiting) {
                                    ok = false;
                                }
                            }
                            None => ok = false,
                        }
                    }
                }
            });
            if !ok {
                return false;
            }
        }
    }

    // Assignments (and inc/dec) targeting the pointer inside its function.
    minic::visit::for_each_expr(&f.body, |e| {
        if !ok {
            return;
        }
        match &e.kind {
            ExprKind::Assign(l, r)
                if resolves_to(checked, func, l, p)
                    && !base_expr_ok(checked, an, func, r, visiting) =>
            {
                ok = false;
            }
            ExprKind::AssignOp(_, l, _) | ExprKind::IncDec(_, l)
                if resolves_to(checked, func, l, p) =>
            {
                ok = false; // pointer stepping breaks the base invariant
            }
            _ => {}
        }
    });
    // Declaration initializer.
    minic::visit::for_each_stmt(&f.body, |s| {
        if !ok {
            return;
        }
        if let StmtKind::Decl { init: Some(r), .. } = &s.kind {
            if frame.decl_offsets.get(&s.id) == Some(&slot)
                && !base_expr_ok(checked, an, func, r, visiting)
            {
                ok = false;
            }
        }
    });
    ok
}

fn global_ptr_bases_ok(
    checked: &Checked,
    an: &Analyses,
    p: VarId,
    visiting: &mut HashSet<VarId>,
) -> bool {
    let mut ok = true;
    for (fi, f) in checked.program.funcs.iter().enumerate() {
        minic::visit::for_each_expr(&f.body, |e| {
            if !ok {
                return;
            }
            match &e.kind {
                ExprKind::Assign(l, r)
                    if resolves_to(checked, fi, l, p)
                        && !base_expr_ok(checked, an, fi, r, visiting) =>
                {
                    ok = false;
                }
                ExprKind::AssignOp(_, l, _) | ExprKind::IncDec(_, l)
                    if resolves_to(checked, fi, l, p) =>
                {
                    ok = false;
                }
                _ => {}
            }
        });
        if !ok {
            return false;
        }
    }
    ok
}

fn resolves_to(checked: &Checked, func: usize, e: &Expr, v: VarId) -> bool {
    matches!(&e.kind, ExprKind::Var(_)) && VarId::of_expr(&checked.info, func, e) == Some(v)
}

/// Whether a pointer-producing expression denotes an array base.
fn base_expr_ok(
    checked: &Checked,
    an: &Analyses,
    func: usize,
    e: &Expr,
    visiting: &mut HashSet<VarId>,
) -> bool {
    match &e.kind {
        // Whole-array decay.
        ExprKind::Var(_) => match checked.info.expr_types.get(&e.id) {
            Some(Type::Array(..)) => true,
            Some(Type::Ptr(_)) => match VarId::of_expr(&checked.info, func, e) {
                Some(q) => pointer_bases_ok(checked, an, q, visiting),
                None => false,
            },
            _ => false,
        },
        // &arr[0]
        ExprKind::Unary(UnOp::Addr, lv) => match &lv.kind {
            ExprKind::Index(base, idx) => {
                matches!(idx.as_int_lit(), Some(0))
                    && matches!(checked.info.expr_types.get(&base.id), Some(Type::Array(..)))
            }
            _ => false,
        },
        // Null is fine (never dereferenced on the hit path without trapping
        // identically in both versions).
        ExprKind::IntLit(0) => true,
        ExprKind::Cast(_, inner) => base_expr_ok(checked, an, func, inner, visiting),
        _ => false,
    }
}

/// Syntactic access summary of a segment body.
struct ScanResult {
    /// Variables that appear by name anywhere in the body.
    named_vars: HashSet<VarId>,
    /// Variables written by name (directly, not through pointers).
    named_writes: HashSet<VarId>,
    /// Pointer variables written through (`*p = ...`, `p[i] = ...`).
    ptr_writes: Vec<VarId>,
    /// Pointer variables whose *value* is used beyond deref/index bases
    /// (copied, compared, cast, returned) — these would need the raw
    /// address in the key, which we do not support.
    ptr_value_uses: HashSet<VarId>,
}

fn scan_accesses(checked: &Checked, an: &Analyses, seg: &Segment) -> Result<ScanResult, Reject> {
    let _ = an;
    let func = seg.func;
    let body = seg.body(&checked.program);
    let mut res = ScanResult {
        named_vars: HashSet::new(),
        named_writes: HashSet::new(),
        ptr_writes: Vec::new(),
        ptr_value_uses: HashSet::new(),
    };
    let mut bad: Option<Reject> = None;
    scan_block(checked, func, body, &mut res, &mut bad);
    match bad {
        Some(r) => Err(r),
        None => {
            res.ptr_writes.sort_unstable();
            res.ptr_writes.dedup();
            Ok(res)
        }
    }
}

fn scan_block(
    checked: &Checked,
    func: usize,
    b: &Block,
    res: &mut ScanResult,
    bad: &mut Option<Reject>,
) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    scan_expr(checked, func, e, false, res, bad);
                }
            }
            StmtKind::Expr(e) => scan_expr(checked, func, e, false, res, bad),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                scan_expr(checked, func, cond, false, res, bad);
                scan_block(checked, func, then_blk, res, bad);
                if let Some(eb) = else_blk {
                    scan_block(checked, func, eb, res, bad);
                }
            }
            StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
                scan_expr(checked, func, cond, false, res, bad);
                scan_block(checked, func, body, res, bad);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    match &init.kind {
                        StmtKind::Decl { init: Some(e), .. } | StmtKind::Expr(e) => {
                            scan_expr(checked, func, e, false, res, bad)
                        }
                        _ => {}
                    }
                }
                if let Some(e) = cond {
                    scan_expr(checked, func, e, false, res, bad);
                }
                if let Some(e) = step {
                    scan_expr(checked, func, e, false, res, bad);
                }
                scan_block(checked, func, body, res, bad);
            }
            StmtKind::Return(Some(e)) => scan_expr(checked, func, e, false, res, bad),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(inner) => scan_block(checked, func, inner, res, bad),
            StmtKind::Profile(p) => scan_block(checked, func, &p.body, res, bad),
            StmtKind::Memo(m) => scan_block(checked, func, &m.body, res, bad),
        }
    }
}

/// `as_deref_base`: this Var is consumed as the base of a deref/index and
/// so is not a raw value use.
fn scan_expr(
    checked: &Checked,
    func: usize,
    e: &Expr,
    as_deref_base: bool,
    res: &mut ScanResult,
    bad: &mut Option<Reject>,
) {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) => {}
        ExprKind::Var(_) => {
            if let Some(v) = VarId::of_expr(&checked.info, func, e) {
                res.named_vars.insert(v);
                let is_ptr = matches!(checked.info.expr_types.get(&e.id), Some(Type::Ptr(_)));
                if is_ptr && !as_deref_base {
                    res.ptr_value_uses.insert(v);
                }
            }
        }
        ExprKind::Unary(UnOp::Deref, p) => scan_ptr_base(checked, func, p, res, bad),
        ExprKind::Unary(UnOp::Addr, lv) => {
            scan_expr(checked, func, lv, true, res, bad);
        }
        ExprKind::Unary(_, a) | ExprKind::Cast(_, a) => {
            scan_expr(checked, func, a, false, res, bad)
        }
        ExprKind::Binary(_, a, b) => {
            scan_expr(checked, func, a, false, res, bad);
            scan_expr(checked, func, b, false, res, bad);
        }
        ExprKind::IncDec(_, lv) => scan_write(checked, func, lv, res, bad),
        ExprKind::Assign(l, r) | ExprKind::AssignOp(_, l, r) => {
            scan_expr(checked, func, r, false, res, bad);
            scan_write(checked, func, l, res, bad);
        }
        ExprKind::Ternary(c, t, f) => {
            scan_expr(checked, func, c, false, res, bad);
            scan_expr(checked, func, t, false, res, bad);
            scan_expr(checked, func, f, false, res, bad);
        }
        ExprKind::Call(callee, args) => {
            // The callee name itself is not a data access.
            let mut c = callee.as_ref();
            while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
                c = inner;
            }
            if !matches!(
                checked.info.res.get(&c.id),
                Some(Res::Func(_)) | Some(Res::Builtin(_))
            ) {
                scan_expr(checked, func, c, false, res, bad);
            }
            for a in args {
                // Passing a pointer onward keeps the callee's accesses
                // within the pts-based effects; the raw value does not
                // escape into data. Arrays decay here too.
                match &a.kind {
                    ExprKind::Var(_)
                        if matches!(
                            checked.info.expr_types.get(&a.id),
                            Some(Type::Ptr(_)) | Some(Type::Array(..))
                        ) =>
                    {
                        scan_expr(checked, func, a, true, res, bad);
                    }
                    _ => scan_expr(checked, func, a, false, res, bad),
                }
            }
        }
        ExprKind::Index(base, idx) => {
            scan_expr(checked, func, idx, false, res, bad);
            scan_ptr_base(checked, func, base, res, bad);
        }
        ExprKind::Member(base, _) => scan_expr(checked, func, base, true, res, bad),
        ExprKind::Arrow(base, _) => scan_ptr_base(checked, func, base, res, bad),
    }
}

fn scan_ptr_base(
    checked: &Checked,
    func: usize,
    base: &Expr,
    res: &mut ScanResult,
    bad: &mut Option<Reject>,
) {
    match &base.kind {
        ExprKind::Var(_) => scan_expr(checked, func, base, true, res, bad),
        // `*(p + i)`: the addition consumes p as a deref base.
        ExprKind::Binary(_, a, b) => {
            scan_ptr_base(checked, func, a, res, bad);
            scan_ptr_base(checked, func, b, res, bad);
        }
        _ => scan_expr(checked, func, base, false, res, bad),
    }
}

fn scan_write(
    checked: &Checked,
    func: usize,
    lv: &Expr,
    res: &mut ScanResult,
    bad: &mut Option<Reject>,
) {
    match &lv.kind {
        ExprKind::Var(_) => {
            if let Some(v) = VarId::of_expr(&checked.info, func, lv) {
                res.named_vars.insert(v);
                res.named_writes.insert(v);
            }
        }
        ExprKind::Unary(UnOp::Deref, p) | ExprKind::Arrow(p, _) => {
            record_ptr_write(checked, func, p, res, bad)
        }
        ExprKind::Index(base, idx) => {
            scan_expr(checked, func, idx, false, res, bad);
            let is_array = matches!(checked.info.expr_types.get(&base.id), Some(Type::Array(..)));
            if is_array {
                scan_write(checked, func, base, res, bad);
            } else {
                record_ptr_write(checked, func, base, res, bad);
            }
        }
        ExprKind::Member(base, _) => scan_write(checked, func, base, res, bad),
        _ => {
            *bad = Some(Reject::UnsupportedOperand(
                "write through a computed address".into(),
            ));
        }
    }
}

fn record_ptr_write(
    checked: &Checked,
    func: usize,
    p: &Expr,
    res: &mut ScanResult,
    bad: &mut Option<Reject>,
) {
    match &p.kind {
        ExprKind::Var(_) => {
            if let Some(v) = VarId::of_expr(&checked.info, func, p) {
                res.named_vars.insert(v);
                res.ptr_writes.push(v);
            } else {
                *bad = Some(Reject::UnsupportedOperand(
                    "write through unresolvable pointer".into(),
                ));
            }
        }
        ExprKind::Binary(_, a, b) => {
            // *(p + i) = ... — p is the pointer side.
            let a_ptr = matches!(
                checked.info.expr_types.get(&a.id),
                Some(Type::Ptr(_)) | Some(Type::Array(..))
            );
            let (pp, idx) = if a_ptr { (a, b) } else { (b, a) };
            scan_expr(checked, func, idx, false, res, bad);
            match &pp.kind {
                ExprKind::Var(_)
                    if matches!(checked.info.expr_types.get(&pp.id), Some(Type::Array(..))) =>
                {
                    // Array decay: a named array write.
                    if let Some(v) = VarId::of_expr(&checked.info, func, pp) {
                        res.named_vars.insert(v);
                        res.named_writes.insert(v);
                    }
                }
                _ => record_ptr_write(checked, func, pp, res, bad),
            }
        }
        _ => {
            *bad = Some(Reject::UnsupportedOperand(
                "write through a computed pointer expression".into(),
            ));
        }
    }
}
