//! Variable identities and per-function variable universes.
//!
//! Dataflow facts range over [`VarId`]s: a local (identified by function
//! index and frame slot base) or a global. Arrays and structs are treated
//! as single units (field- and element-insensitive), matching the paper's
//! whole-array input/output handling.

use minic::ast::{Expr, ExprKind, Type};
use minic::sema::{Res, SemaInfo};
use std::collections::HashMap;

/// A program variable: a function's local/parameter slot or a global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarId {
    /// Local or parameter: `(function index, frame slot base)`.
    Local {
        /// Index of the owning function.
        func: usize,
        /// Frame offset of the variable's first cell.
        slot: usize,
    },
    /// Global by id.
    Global(usize),
}

impl VarId {
    /// Resolves a `Var` expression to its [`VarId`], given the enclosing
    /// function. Returns `None` for function names and builtins.
    pub fn of_expr(info: &SemaInfo, func: usize, e: &Expr) -> Option<VarId> {
        debug_assert!(matches!(e.kind, ExprKind::Var(_)));
        match info.res.get(&e.id)? {
            Res::Slot(slot) => Some(VarId::Local { func, slot: *slot }),
            Res::Global(g) => Some(VarId::Global(*g)),
            Res::Func(_) | Res::Builtin(_) => None,
        }
    }
}

/// Dense numbering of the variables visible inside one function: its
/// locals/parameters plus every global. Used to size dataflow bit sets.
#[derive(Debug, Clone)]
pub struct VarMap {
    ids: Vec<VarId>,
    index: HashMap<VarId, usize>,
}

impl VarMap {
    /// Builds the universe for function `func`: all globals plus every
    /// distinct local slot mentioned by the function's frame layout.
    pub fn for_func(info: &SemaInfo, func: usize) -> Self {
        let mut ids: Vec<VarId> = (0..info.globals.len()).map(VarId::Global).collect();
        let frame = &info.frames[func];
        let mut slots: Vec<usize> = frame
            .param_offsets
            .iter()
            .copied()
            .chain(frame.decl_offsets.values().copied())
            .collect();
        slots.sort_unstable();
        slots.dedup();
        ids.extend(slots.into_iter().map(|slot| VarId::Local { func, slot }));
        let index = ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        VarMap { ids, index }
    }

    /// Number of variables in the universe.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dense index of `v`, if it belongs to this universe.
    pub fn index_of(&self, v: VarId) -> Option<usize> {
        self.index.get(&v).copied()
    }

    /// The variable at dense index `i`.
    pub fn var_at(&self, i: usize) -> VarId {
        self.ids[i]
    }

    /// Iterates `(index, VarId)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, VarId)> + '_ {
        self.ids.iter().copied().enumerate()
    }
}

/// The declared type of a variable.
pub fn type_of_var(info: &SemaInfo, program: &minic::Program, v: VarId) -> Option<Type> {
    match v {
        VarId::Global(g) => Some(info.globals[g].ty.clone()),
        VarId::Local { func, slot } => {
            // Parameters first.
            let f = &program.funcs[func];
            let frame = &info.frames[func];
            for (p, &off) in f.params.iter().zip(&frame.param_offsets) {
                if off == slot {
                    return Some(p.ty.clone());
                }
            }
            // Then local declarations, located by slot.
            let mut found = None;
            for (stmt_id, &off) in &frame.decl_offsets {
                if off == slot {
                    found = Some(*stmt_id);
                }
            }
            let stmt_id = found?;
            let mut ty = None;
            minic::visit::for_each_stmt(&f.body, |s| {
                if s.id == stmt_id {
                    if let minic::ast::StmtKind::Decl { ty: t, .. } = &s.kind {
                        ty = Some(t.clone());
                    }
                }
            });
            ty
        }
    }
}

/// A human-readable name for a variable (reports and segment operands).
pub fn name_of_var(info: &SemaInfo, program: &minic::Program, v: VarId) -> String {
    match v {
        VarId::Global(g) => info.globals[g].name.clone(),
        VarId::Local { func, slot } => {
            let f = &program.funcs[func];
            let frame = &info.frames[func];
            for (p, &off) in f.params.iter().zip(&frame.param_offsets) {
                if off == slot {
                    return p.name.clone();
                }
            }
            let mut name = format!("<slot {slot}>");
            minic::visit::for_each_stmt(&f.body, |s| {
                if let minic::ast::StmtKind::Decl { name: n, .. } = &s.kind {
                    if frame.decl_offsets.get(&s.id) == Some(&slot) {
                        name = n.clone();
                    }
                }
            });
            name
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varmap_covers_globals_and_locals() {
        let checked = minic::compile(
            "int g1; float g2;
             int f(int a, int b) { int x; { int y; } return a + b; }",
        )
        .unwrap();
        let map = VarMap::for_func(&checked.info, 0);
        // 2 globals + a, b, x, y.
        assert_eq!(map.len(), 6);
        assert_eq!(map.index_of(VarId::Global(0)), Some(0));
        assert!(map.index_of(VarId::Local { func: 0, slot: 0 }).is_some());
        for (i, v) in map.iter() {
            assert_eq!(map.index_of(v), Some(i));
        }
    }

    #[test]
    fn names_and_types_resolve() {
        let checked = minic::compile(
            "int table[8];
             int f(int val) { float acc = 0.0; return val + (int)acc + table[0]; }",
        )
        .unwrap();
        let info = &checked.info;
        let prog = &checked.program;
        assert_eq!(name_of_var(info, prog, VarId::Global(0)), "table");
        assert_eq!(
            type_of_var(info, prog, VarId::Global(0)).unwrap(),
            Type::array(Type::Int, 8)
        );
        let val = VarId::Local { func: 0, slot: 0 };
        assert_eq!(name_of_var(info, prog, val), "val");
        assert_eq!(type_of_var(info, prog, val).unwrap(), Type::Int);
        let acc = VarId::Local { func: 0, slot: 1 };
        assert_eq!(name_of_var(info, prog, acc), "acc");
        assert_eq!(type_of_var(info, prog, acc).unwrap(), Type::Float);
    }
}
