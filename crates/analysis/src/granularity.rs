//! Granularity and hashing-overhead estimation (paper §3.1):
//!
//! > "In code segment analysis, we estimate a lower bound on the
//! > granularity and an upper bound on the hashing overhead for each code
//! > segment."
//!
//! These static estimates drive the paper's *pre-profiling* filter
//! (`O/C >= 1` removes a segment before value-set profiling); the final
//! cost-benefit decision (formula 3) uses the *measured* granularity from
//! the profiling run.

use crate::segments::Segment;
use crate::Analyses;
use minic::ast::{BinOp, Block, Expr, ExprKind, StmtKind, Type, UnOp};
use minic::sema::{Checked, Res};
use std::collections::HashMap;

/// Abstract operation counts (weights roughly matching a StrongARM-class
/// in-order core; only ratios matter for the pre-filter).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounts {
    /// Integer ALU ops.
    pub int_alu: f64,
    /// Integer multiplies.
    pub int_mul: f64,
    /// Integer divides.
    pub int_div: f64,
    /// Float add/sub/compare.
    pub float_alu: f64,
    /// Float multiplies.
    pub float_mul: f64,
    /// Float divides.
    pub float_div: f64,
    /// Memory accesses.
    pub mem: f64,
    /// Branches.
    pub branch: f64,
    /// Function calls.
    pub call: f64,
}

impl OpCounts {
    fn add(&mut self, other: &OpCounts) {
        self.int_alu += other.int_alu;
        self.int_mul += other.int_mul;
        self.int_div += other.int_div;
        self.float_alu += other.float_alu;
        self.float_mul += other.float_mul;
        self.float_div += other.float_div;
        self.mem += other.mem;
        self.branch += other.branch;
        self.call += other.call;
    }

    fn scale(&self, k: f64) -> OpCounts {
        OpCounts {
            int_alu: self.int_alu * k,
            int_mul: self.int_mul * k,
            int_div: self.int_div * k,
            float_alu: self.float_alu * k,
            float_mul: self.float_mul * k,
            float_div: self.float_div * k,
            mem: self.mem * k,
            branch: self.branch * k,
            call: self.call * k,
        }
    }

    /// Estimated cycles under StrongARM-like weights (int ALU 1, mul 4,
    /// div 20, float 4/8/30, mem 3, branch 2, call 12).
    pub fn cycles(&self) -> f64 {
        self.int_alu
            + self.int_mul * 4.0
            + self.int_div * 20.0
            + self.float_alu * 4.0
            + self.float_mul * 8.0
            + self.float_div * 30.0
            + self.mem * 3.0
            + self.branch * 2.0
            + self.call * 12.0
    }
}

/// Static cost estimates for one segment.
#[derive(Debug, Clone, Copy)]
pub struct SegCost {
    /// Estimated cycles per execution of the segment (granularity bound).
    pub granularity_cycles: f64,
    /// Estimated cycles per table probe (overhead upper bound), computed
    /// from the key/output word counts the same way the VM charges it.
    pub overhead_cycles: f64,
}

impl SegCost {
    /// The paper's pre-profiling filter: keep only `O/C < 1`.
    pub fn passes_prefilter(&self) -> bool {
        self.granularity_cycles > 0.0 && self.overhead_cycles / self.granularity_cycles < 1.0
    }
}

/// Estimates overhead cycles from operand word counts, mirroring
/// `vm::CostModel::memo_overhead` (base 24, 10/key word, 8/output word).
pub fn overhead_cycles(key_words: usize, out_words: usize) -> f64 {
    24.0 + 10.0 * key_words as f64 + 8.0 * out_words as f64
}

/// Computes the static cost estimates for `seg` with interface word
/// counts `key_words`/`out_words`.
pub fn seg_granularity(
    checked: &Checked,
    an: &Analyses,
    seg: &Segment,
    key_words: usize,
    out_words: usize,
) -> SegCost {
    let func_costs = function_costs(checked, an);
    let body = seg.body(&checked.program);
    let est = Estimator {
        checked,
        func_costs: &func_costs,
    };
    let counts = est.block(body);
    SegCost {
        granularity_cycles: counts.cycles(),
        overhead_cycles: overhead_cycles(key_words, out_words),
    }
}

/// Per-function estimated op counts (callees folded in; recursion broken
/// by charging only call overhead on back edges).
pub fn function_costs(checked: &Checked, an: &Analyses) -> HashMap<usize, OpCounts> {
    let mut costs: HashMap<usize, OpCounts> = HashMap::new();
    // Process call-graph SCCs in reverse topological order of the
    // condensation: comps are already emitted callees-first by Tarjan.
    for comp in &an.cg.sccs.comps {
        for &f in comp {
            let est = Estimator {
                checked,
                func_costs: &costs,
            };
            let counts = est.block(&checked.program.funcs[f].body);
            costs.insert(f, counts);
        }
    }
    costs
}

struct Estimator<'a> {
    checked: &'a Checked,
    func_costs: &'a HashMap<usize, OpCounts>,
}

impl<'a> Estimator<'a> {
    fn block(&self, b: &Block) -> OpCounts {
        let mut total = OpCounts::default();
        for s in &b.stmts {
            total.add(&self.stmt(s));
        }
        total
    }

    fn stmt(&self, s: &minic::ast::Stmt) -> OpCounts {
        match &s.kind {
            StmtKind::Decl { init, .. } => init.as_ref().map(|e| self.expr(e)).unwrap_or_default(),
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let mut c = self.expr(cond);
                c.branch += 1.0;
                let t = self.block(then_blk);
                let e = else_blk.as_ref().map(|b| self.block(b)).unwrap_or_default();
                // Expected cost: average of the branches (the lower bound
                // would take the min; the average tracks profiled C more
                // closely while remaining static).
                let avg = {
                    let mut sum = t;
                    sum.add(&e);
                    sum.scale(0.5)
                };
                c.add(&avg);
                c
            }
            StmtKind::While { cond, body } => self.loop_cost(Some(cond), None, body, false),
            StmtKind::DoWhile { body, cond } => self.loop_cost(Some(cond), None, body, true),
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut c = init.as_ref().map(|s| self.stmt(s)).unwrap_or_default();
                let trip = trip_estimate(init.as_deref(), cond.as_ref(), body);
                let mut per_iter = body_with_step(self, cond.as_ref(), step.as_ref(), body);
                per_iter = per_iter.scale(trip);
                c.add(&per_iter);
                c
            }
            StmtKind::Break | StmtKind::Continue => OpCounts {
                branch: 1.0,
                ..OpCounts::default()
            },
            StmtKind::Return(e) => e.as_ref().map(|e| self.expr(e)).unwrap_or_default(),
            StmtKind::Block(b) => self.block(b),
            StmtKind::Profile(p) => self.block(&p.body),
            StmtKind::Memo(m) => self.block(&m.body),
        }
    }

    fn loop_cost(
        &self,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Block,
        at_least_once: bool,
    ) -> OpCounts {
        let mut per_iter = OpCounts::default();
        if let Some(c) = cond {
            per_iter.add(&self.expr(c));
            per_iter.branch += 1.0;
        }
        if let Some(s) = step {
            per_iter.add(&self.expr(s));
        }
        per_iter.add(&self.block(body));
        let trip = if at_least_once {
            DEFAULT_TRIP.max(1.0)
        } else {
            DEFAULT_TRIP
        };
        per_iter.scale(trip)
    }

    fn expr(&self, e: &Expr) -> OpCounts {
        let mut c = OpCounts::default();
        self.expr_into(e, &mut c);
        c
    }

    fn is_float(&self, e: &Expr) -> bool {
        matches!(self.checked.info.expr_types.get(&e.id), Some(Type::Float))
    }

    fn expr_into(&self, e: &Expr, c: &mut OpCounts) {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) => {}
            ExprKind::Var(_) => c.mem += 0.5, // register-or-memory average
            ExprKind::Unary(UnOp::Deref, a) => {
                self.expr_into(a, c);
                c.mem += 1.0;
            }
            ExprKind::Unary(UnOp::Addr, a) => self.expr_into(a, c),
            ExprKind::Unary(_, a) => {
                self.expr_into(a, c);
                if self.is_float(e) {
                    c.float_alu += 1.0;
                } else {
                    c.int_alu += 1.0;
                }
            }
            ExprKind::Binary(op, a, b) => {
                self.expr_into(a, c);
                self.expr_into(b, c);
                let float = self.is_float(a) || self.is_float(b);
                charge_binop(*op, float, c);
            }
            ExprKind::IncDec(_, a) => {
                self.expr_into(a, c);
                c.int_alu += 1.0;
                c.mem += 0.5;
            }
            ExprKind::Assign(l, r) => {
                self.expr_into(r, c);
                self.expr_into(l, c);
                c.mem += 0.5;
            }
            ExprKind::AssignOp(op, l, r) => {
                self.expr_into(r, c);
                self.expr_into(l, c);
                let float = self.is_float(l) || self.is_float(r);
                charge_binop(*op, float, c);
                c.mem += 0.5;
            }
            ExprKind::Ternary(cond, t, f) => {
                self.expr_into(cond, c);
                c.branch += 1.0;
                let mut tc = OpCounts::default();
                self.expr_into(t, &mut tc);
                let mut fc = OpCounts::default();
                self.expr_into(f, &mut fc);
                tc.add(&fc);
                c.add(&tc.scale(0.5));
            }
            ExprKind::Call(callee, args) => {
                for a in args {
                    self.expr_into(a, c);
                }
                c.call += 1.0;
                // Fold in the callee's estimated cost when known.
                let mut target = callee.as_ref();
                while let ExprKind::Unary(UnOp::Deref, inner) = &target.kind {
                    target = inner;
                }
                if let Some(Res::Func(fi)) = self.checked.info.res.get(&target.id) {
                    if let Some(callee_cost) = self.func_costs.get(fi) {
                        c.add(callee_cost);
                    }
                }
            }
            ExprKind::Index(base, idx) => {
                self.expr_into(base, c);
                self.expr_into(idx, c);
                c.int_alu += 1.0; // address computation
                c.mem += 1.0;
            }
            ExprKind::Member(base, _) => {
                self.expr_into(base, c);
                c.mem += 0.5;
            }
            ExprKind::Arrow(base, _) => {
                self.expr_into(base, c);
                c.mem += 1.0;
            }
            ExprKind::Cast(_, a) => {
                self.expr_into(a, c);
                c.int_alu += 1.0;
            }
        }
    }
}

fn body_with_step(
    est: &Estimator<'_>,
    cond: Option<&Expr>,
    step: Option<&Expr>,
    body: &Block,
) -> OpCounts {
    let mut per_iter = OpCounts::default();
    if let Some(c) = cond {
        per_iter.add(&est.expr(c));
        per_iter.branch += 1.0;
    }
    if let Some(s) = step {
        per_iter.add(&est.expr(s));
    }
    per_iter.add(&est.block(body));
    per_iter
}

/// Heuristic trip count when bounds are not statically evident.
const DEFAULT_TRIP: f64 = 4.0;

/// Trip-count estimate for `for (i = 0; i < N; i++)`-shaped loops with a
/// constant bound: `N` when the body has no break, `N/2` with one.
fn trip_estimate(init: Option<&minic::ast::Stmt>, cond: Option<&Expr>, body: &Block) -> f64 {
    let bound = cond.and_then(constant_bound);
    let Some(n) = bound else {
        return DEFAULT_TRIP;
    };
    // Require a simple `i = 0` or `int i = 0` init to trust the bound.
    let init_zero = match init.map(|s| &s.kind) {
        Some(StmtKind::Decl { init: Some(e), .. }) => matches!(e.as_int_lit(), Some(0)),
        Some(StmtKind::Expr(e)) => match &e.kind {
            ExprKind::Assign(_, r) => matches!(r.as_int_lit(), Some(0)),
            _ => false,
        },
        _ => false,
    };
    if !init_zero {
        return DEFAULT_TRIP;
    }
    let has_break = block_has_break(body);
    if has_break {
        (n as f64 / 2.0).max(1.0)
    } else {
        n as f64
    }
}

fn constant_bound(cond: &Expr) -> Option<i64> {
    match &cond.kind {
        ExprKind::Binary(BinOp::Lt, _, b) => b.as_int_lit(),
        ExprKind::Binary(BinOp::Le, _, b) => b.as_int_lit().map(|v| v + 1),
        _ => None,
    }
}

fn block_has_break(b: &Block) -> bool {
    let mut has = false;
    // Only breaks at the loop's own level count, but a conservative "any
    // break anywhere" makes the estimate merely a bit lower.
    minic::visit::for_each_stmt(b, |s| {
        if matches!(s.kind, StmtKind::Break) {
            has = true;
        }
    });
    has
}

fn charge_binop(op: BinOp, float: bool, c: &mut OpCounts) {
    match (op, float) {
        (BinOp::Mul, false) => c.int_mul += 1.0,
        (BinOp::Div | BinOp::Rem, false) => c.int_div += 1.0,
        (BinOp::Mul, true) => c.float_mul += 1.0,
        (BinOp::Div, true) => c.float_div += 1.0,
        (_, true) => c.float_alu += 1.0,
        (_, false) => c.int_alu += 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments;

    fn setup(src: &str) -> (minic::Checked, Analyses, Vec<Segment>) {
        let checked = minic::compile(src).unwrap();
        let an = Analyses::build(&checked);
        let segs = segments::enumerate(&checked);
        (checked, an, segs)
    }

    #[test]
    fn quan_prefilter_passes() {
        let (checked, an, segs) = setup(
            "int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
             int quan(int val) {
                 int i;
                 for (i = 0; i < 15; i++) if (val < power2[i]) break;
                 return i;
             }
             int main() { return quan(7); }",
        );
        let seg = segs.iter().find(|s| s.name == "quan:body").unwrap();
        // One int in, return value out: key=1, out=1.
        let cost = seg_granularity(&checked, &an, seg, 1, 1);
        assert!(cost.granularity_cycles > cost.overhead_cycles);
        assert!(cost.passes_prefilter());
    }

    #[test]
    fn tiny_segment_fails_prefilter() {
        let (checked, an, segs) = setup(
            "int g;
             int tiny(int x) { return x + 1; }
             int main() { g = tiny(3); return g; }",
        );
        let seg = segs.iter().find(|s| s.name == "tiny:body").unwrap();
        let cost = seg_granularity(&checked, &an, seg, 1, 1);
        assert!(
            !cost.passes_prefilter(),
            "x+1 is cheaper than a table probe: C={} O={}",
            cost.granularity_cycles,
            cost.overhead_cycles
        );
    }

    #[test]
    fn big_block_interface_has_big_overhead() {
        // 64-word keys and outputs like MPEG2's fdct.
        let o_small = overhead_cycles(1, 1);
        let o_block = overhead_cycles(64, 64);
        assert!(o_block > 10.0 * o_small);
    }

    #[test]
    fn callee_costs_fold_into_callers() {
        let (checked, an, _) = setup(
            "int work(int x) {
                 int s = 0;
                 for (int i = 0; i < 100; i++) s += x * i;
                 return s;
             }
             int outer(int x) { return work(x) + work(x + 1); }
             int main() { return outer(2); }",
        );
        let costs = function_costs(&checked, &an);
        let work = checked.info.func_index["work"];
        let outer = checked.info.func_index["outer"];
        assert!(
            costs[&outer].cycles() > 2.0 * costs[&work].cycles(),
            "outer includes both calls: {} vs {}",
            costs[&outer].cycles(),
            costs[&work].cycles()
        );
    }

    #[test]
    fn recursion_converges() {
        let (checked, an, _) = setup(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
             int main() { return fib(10); }",
        );
        let costs = function_costs(&checked, &an);
        let fib = checked.info.func_index["fib"];
        assert!(costs[&fib].cycles() > 0.0);
        assert!(costs[&fib].cycles().is_finite());
    }

    #[test]
    fn constant_trip_counts_scale_granularity() {
        let (checked, an, segs) = setup(
            "int f10(int x) { int s = 0; for (int i = 0; i < 10; i++) s += x; return s; }
             int f1000(int x) { int s = 0; for (int i = 0; i < 1000; i++) s += x; return s; }
             int main() { return f10(1) + f1000(1); }",
        );
        let s10 = segs.iter().find(|s| s.name == "f10:body").unwrap();
        let s1000 = segs.iter().find(|s| s.name == "f1000:body").unwrap();
        let c10 = seg_granularity(&checked, &an, s10, 1, 1).granularity_cycles;
        let c1000 = seg_granularity(&checked, &an, s1000, 1, 1).granularity_cycles;
        assert!(c1000 > 50.0 * c10, "c10={c10} c1000={c1000}");
    }
}
