//! Dependency planning for incremental (red/green) reuse.
//!
//! §2.1 determines a segment's key from its upward-exposed, non-invariant
//! reads. That key is *sound* but can be needlessly wide: a function like
//! GNU Go's `density_bucket(pos)` reads the whole 361-word board, so exact
//! matching must hash 362 words per probe, and because the board is *in*
//! the key, every board change silently retires all stored entries — they
//! never match again even though most of the board is untouched.
//!
//! The dependency planner shrinks such keys. A large, directly-named,
//! *mutable* global array read by a ret-only segment is moved out of the
//! key into a validated dependency: the table entry stores a compact
//! content fingerprint of the region chunks the recording execution read,
//! and a probe whose key matches re-validates the fingerprint against the
//! VM's chunk epochs before trusting the entry (try-mark-green). Invariant
//! global regions already dropped from the key by the §2.1 filter are
//! recorded as *non-mutable* dependencies, so stored results also witness
//! their (expected-constant) contents instead of assuming them.
//!
//! Key reduction deliberately applies **only to segments with no memory
//! outputs** (`outputs` empty, a memoized return value present):
//!
//! 1. *Admission control* — a segment that writes global state would
//!    otherwise be admitted with a tiny key (its wide reads all become
//!    dependencies), displacing better candidates in §2.3 nesting
//!    resolution even though almost every probe would come back stale.
//! 2. *Fingerprint consistency* — a body that never writes tracked
//!    regions observes the same chunk epochs when it finishes recording
//!    as a later probe does at lookup time, so the recorded fingerprint
//!    can be built once from the read-set mask without re-walking memory.

use crate::inout::SegIo;
use minic::ast::{MemoDep, MemoOperand, OperandShape};

/// Minimum extent, in words, for a mutable global array input to be moved
/// out of the key into the validated dependency set. Below this, hashing
/// the contents into the key is cheaper than maintaining a fingerprint.
pub const MUTABLE_DEP_MIN_WORDS: usize = 16;

/// The planned key/dependency split for one candidate segment.
#[derive(Debug, Clone)]
pub struct DepPlan {
    /// Input operands remaining in the hash key after reduction.
    pub key_inputs: Vec<MemoOperand>,
    /// Validated dependency regions (non-mutable first is *not*
    /// guaranteed; sorted by region name).
    pub deps: Vec<MemoDep>,
    /// Key width in words after reduction.
    pub key_words: usize,
}

impl DepPlan {
    /// Whether the segment depends on mutable state outside its key. Such
    /// entries can be trusted only after fingerprint validation
    /// (try-mark-green) and are forced red under exact-match lookup.
    pub fn green(&self) -> bool {
        self.deps.iter().any(|d| d.mutable)
    }

    /// Fingerprint words stored per table entry: one `(chunk mask,
    /// chained-epoch sum)` pair per dependency region.
    pub fn fp_words(&self) -> usize {
        2 * self.deps.len()
    }
}

/// Plans the key/dependency split for a segment with interface `io`.
///
/// The reduced key is never left empty: if every input qualifies for
/// reduction, the narrowest one stays in the key so the table still has
/// something to index on.
pub fn plan_deps(io: &SegIo) -> DepPlan {
    let mut deps: Vec<MemoDep> = io
        .invariant_reads
        .iter()
        .map(|(name, words)| MemoDep {
            name: name.clone(),
            words: *words,
            mutable: false,
        })
        .collect();

    let ret_only = io.outputs.is_empty() && io.ret.is_some();
    let movable_words = |op: &MemoOperand| -> Option<usize> {
        if !ret_only || io.global_inputs.binary_search(&op.name).is_err() {
            return None;
        }
        match op.shape {
            OperandShape::Array(n) if n >= MUTABLE_DEP_MIN_WORDS => Some(n),
            _ => None,
        }
    };

    let mut movable: Vec<(usize, usize)> = io
        .inputs
        .iter()
        .enumerate()
        .filter_map(|(i, op)| movable_words(op).map(|w| (i, w)))
        .collect();
    if movable.len() == io.inputs.len() && !movable.is_empty() {
        let keep = movable
            .iter()
            .min_by_key(|&&(i, w)| (w, i))
            .map(|&(i, _)| i)
            .expect("non-empty");
        movable.retain(|&(i, _)| i != keep);
    }

    let mut key_inputs = Vec::with_capacity(io.inputs.len() - movable.len());
    for (i, op) in io.inputs.iter().enumerate() {
        match movable.iter().find(|&&(m, _)| m == i) {
            Some(&(_, words)) => deps.push(MemoDep {
                name: op.name.clone(),
                words,
                mutable: true,
            }),
            None => key_inputs.push(op.clone()),
        }
    }

    deps.sort_by(|a, b| a.name.cmp(&b.name));
    deps.dedup();
    let key_words = key_inputs.iter().map(|o| o.words()).sum();
    DepPlan {
        key_inputs,
        deps,
        key_words,
    }
}

/// An edge in the segment dependency graph: two selected segments whose
/// results depend on the same tracked region. Together with the §2.3
/// nesting relation this gives the per-program view of which memoized
/// results a region write can invalidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// First segment name (lexicographically smaller).
    pub a: String,
    /// Second segment name.
    pub b: String,
    /// The shared region's name.
    pub region: String,
    /// Whether the shared region is mutable for either endpoint.
    pub mutable: bool,
}

/// Builds the shared-region edges of the segment dependency graph from
/// per-segment plans, deduplicated and sorted.
pub fn shared_region_edges(plans: &[(String, DepPlan)]) -> Vec<DepEdge> {
    let mut edges = Vec::new();
    for (i, (na, pa)) in plans.iter().enumerate() {
        for (nb, pb) in plans.iter().skip(i + 1) {
            for da in &pa.deps {
                for db in &pb.deps {
                    if da.name == db.name {
                        let (a, b) = if na <= nb { (na, nb) } else { (nb, na) };
                        edges.push(DepEdge {
                            a: a.clone(),
                            b: b.clone(),
                            region: da.name.clone(),
                            mutable: da.mutable || db.mutable,
                        });
                    }
                }
            }
        }
    }
    edges.sort_by(|x, y| {
        (&x.a, &x.b, &x.region)
            .cmp(&(&y.a, &y.b, &y.region))
            .then(x.mutable.cmp(&y.mutable))
    });
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::ast::ScalarKind;

    fn op(name: &str, words: usize) -> MemoOperand {
        MemoOperand {
            name: name.into(),
            shape: if words == 1 {
                OperandShape::Scalar
            } else {
                OperandShape::Array(words)
            },
            elem: ScalarKind::Int,
        }
    }

    fn io(inputs: Vec<MemoOperand>, ret_only: bool) -> SegIo {
        let key_words = inputs.iter().map(|o| o.words()).sum();
        let global_inputs = inputs.iter().map(|o| o.name.clone()).collect();
        SegIo {
            inputs,
            outputs: if ret_only { vec![] } else { vec![op("out", 1)] },
            ret: Some(ScalarKind::Int),
            key_words,
            out_words: if ret_only { 1 } else { 2 },
            invariant_reads: vec![],
            global_inputs,
        }
    }

    #[test]
    fn large_mutable_array_moves_out_of_a_ret_only_key() {
        let mut sio = io(vec![op("board", 361), op("pos", 1)], true);
        sio.global_inputs = vec!["board".into()]; // pos is a parameter
        let plan = plan_deps(&sio);
        assert_eq!(plan.key_words, 1);
        assert_eq!(plan.key_inputs.len(), 1);
        assert_eq!(plan.key_inputs[0].name, "pos");
        assert_eq!(plan.deps.len(), 1);
        assert_eq!(plan.deps[0].name, "board");
        assert_eq!(plan.deps[0].words, 361);
        assert!(plan.deps[0].mutable);
        assert!(plan.green());
        assert_eq!(plan.fp_words(), 2);
    }

    #[test]
    fn segments_with_memory_outputs_keep_their_full_key() {
        let sio = io(vec![op("board", 361), op("pos", 1)], false);
        let plan = plan_deps(&sio);
        assert_eq!(plan.key_words, 362);
        assert!(plan.deps.is_empty());
        assert!(!plan.green());
        assert_eq!(plan.fp_words(), 0);
    }

    #[test]
    fn small_arrays_and_non_globals_stay_in_the_key() {
        let mut sio = io(vec![op("tiny", 8), op("big", 64)], true);
        sio.global_inputs = vec!["tiny".into()]; // `big` is a local array
        let plan = plan_deps(&sio);
        assert_eq!(plan.key_words, 72, "neither input qualifies");
        assert!(plan.deps.is_empty());
    }

    #[test]
    fn reduction_never_empties_the_key() {
        let sio = io(vec![op("huge", 361), op("table", 64)], true);
        let plan = plan_deps(&sio);
        // Both qualify; the narrower one stays behind as the key.
        assert_eq!(plan.key_inputs.len(), 1);
        assert_eq!(plan.key_inputs[0].name, "table");
        assert_eq!(plan.deps.len(), 1);
        assert_eq!(plan.deps[0].name, "huge");
    }

    #[test]
    fn invariant_reads_become_non_mutable_deps() {
        let mut sio = io(vec![op("x", 1)], true);
        sio.global_inputs = vec![];
        sio.invariant_reads = vec![("window".into(), 64)];
        let plan = plan_deps(&sio);
        assert_eq!(plan.key_words, 1);
        assert_eq!(plan.deps.len(), 1);
        assert_eq!(plan.deps[0].name, "window");
        assert!(!plan.deps[0].mutable);
        assert!(!plan.green(), "invariant-only deps are not green");
        assert_eq!(plan.fp_words(), 2);
    }

    #[test]
    fn shared_regions_produce_sorted_edges() {
        let a = plan_deps(&{
            let mut s = io(vec![op("board", 361), op("pos", 1)], true);
            s.global_inputs = vec!["board".into()];
            s
        });
        let b = a.clone();
        let plans = vec![
            ("dist:body".to_string(), b),
            ("density:body".to_string(), a),
        ];
        let edges = shared_region_edges(&plans);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].a, "density:body");
        assert_eq!(edges[0].b, "dist:body");
        assert_eq!(edges[0].region, "board");
        assert!(edges[0].mutable);
    }
}
