//! Unification-based (Steensgaard-style) pointer analysis — the paper's
//! "pointer analysis" module, after its citation of Das's unification
//! approach. Flow- and context-insensitive, field- and element-insensitive
//! (a struct or array is one abstract location), interprocedural ("we can
//! analyze a local pointer in one procedure which points to a local
//! variable in another procedure").

use crate::callgraph::CallGraph;
use crate::vars::VarId;
use minic::ast::{Expr, ExprKind, StmtKind, Type, UnOp};
use minic::sema::{Checked, Res};
use std::collections::HashMap;

/// The points-to relation over equivalence classes of locations.
#[derive(Debug)]
pub struct PointsTo {
    parent: Vec<usize>,
    /// Pointee class of each class (on representatives).
    pts: Vec<Option<usize>>,
    /// Concrete variables in each class (on representatives).
    members: Vec<Vec<VarId>>,
    var_node: HashMap<VarId, usize>,
    /// Return-value class per function.
    ret_node: Vec<usize>,
}

impl PointsTo {
    /// Runs the analysis over a checked program, using `cg` to bind
    /// actuals to formals at (direct and indirect) call sites.
    pub fn build(checked: &Checked, cg: &CallGraph) -> PointsTo {
        let mut p = PointsTo {
            parent: Vec::new(),
            pts: Vec::new(),
            members: Vec::new(),
            var_node: HashMap::new(),
            ret_node: Vec::new(),
        };
        for _ in 0..checked.program.funcs.len() {
            let n = p.fresh();
            p.ret_node.push(n);
        }
        let mut an = Analyzer {
            p: &mut p,
            checked,
            cg,
            func: 0,
        };
        // Global initializers carry no pointers (sema restricts them to
        // int/float constants), so only function bodies matter.
        for (fi, f) in checked.program.funcs.iter().enumerate() {
            an.func = fi;
            an.block(&f.body);
        }
        p
    }

    /// The variables a pointer variable may point to. Empty when `v` has
    /// no pointer uses (or is not a pointer).
    pub fn pointees(&self, v: VarId) -> Vec<VarId> {
        let Some(&node) = self.var_node.get(&v) else {
            return Vec::new();
        };
        let r = self.find(node);
        match self.pts[r] {
            Some(t) => {
                let tr = self.find(t);
                let mut m = self.members[tr].clone();
                m.sort_unstable();
                m.dedup();
                m
            }
            None => Vec::new(),
        }
    }

    /// Whether `a` and `b` may alias (same class, or one's pointees
    /// intersect the other). Conservative for whole variables.
    pub fn may_alias(&self, a: VarId, b: VarId) -> bool {
        if a == b {
            return true;
        }
        let pa = self.pointees(a);
        let pb = self.pointees(b);
        pa.contains(&b) || pb.contains(&a) || pa.iter().any(|x| pb.contains(x))
    }

    // -- union-find plumbing --

    fn fresh(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.pts.push(None);
        self.members.push(Vec::new());
        self.parent.len() - 1
    }

    fn node_of(&mut self, v: VarId) -> usize {
        if let Some(&n) = self.var_node.get(&v) {
            return n;
        }
        let n = self.fresh();
        self.members[n].push(v);
        self.var_node.insert(v, n);
        n
    }

    fn find(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    fn find_compress(&mut self, x: usize) -> usize {
        let r = self.find(x);
        let mut cur = x;
        while self.parent[cur] != r {
            let next = self.parent[cur];
            self.parent[cur] = r;
            cur = next;
        }
        r
    }

    /// Unifies two classes, cascading into their pointee classes.
    fn unify(&mut self, a: usize, b: usize) {
        let ra = self.find_compress(a);
        let rb = self.find_compress(b);
        if ra == rb {
            return;
        }
        self.parent[rb] = ra;
        let moved = std::mem::take(&mut self.members[rb]);
        self.members[ra].extend(moved);
        match (self.pts[ra], self.pts[rb]) {
            (Some(x), Some(y)) => {
                self.pts[ra] = Some(x);
                self.unify(x, y);
            }
            (None, Some(y)) => self.pts[ra] = Some(y),
            _ => {}
        }
    }

    /// The pointee class of `c`, created on demand.
    fn pts_class(&mut self, c: usize) -> usize {
        let r = self.find_compress(c);
        if let Some(t) = self.pts[r] {
            return self.find_compress(t);
        }
        let t = self.fresh();
        self.pts[r] = Some(t);
        t
    }
}

struct Analyzer<'a> {
    p: &'a mut PointsTo,
    checked: &'a Checked,
    cg: &'a CallGraph,
    func: usize,
}

impl<'a> Analyzer<'a> {
    fn is_ptr_like(&self, e: &Expr) -> bool {
        matches!(
            self.checked.info.expr_types.get(&e.id),
            Some(Type::Ptr(_)) | Some(Type::Array(..)) | Some(Type::Func(_))
        )
    }

    fn block(&mut self, b: &minic::ast::Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &minic::ast::Stmt) {
        match &s.kind {
            StmtKind::Decl { ty, init, .. } => {
                if let Some(e) = init {
                    self.expr(e);
                    if matches!(ty, Type::Ptr(_) | Type::Func(_)) {
                        let slot = self.checked.info.frames[self.func].decl_offsets[&s.id];
                        let lhs = self.p.node_of(VarId::Local {
                            func: self.func,
                            slot,
                        });
                        if let Some(rc) = self.ptr_class(e) {
                            let lp = self.p.pts_class(lhs);
                            let rp = self.p.pts_class(rc);
                            self.p.unify(lp, rp);
                        }
                    }
                }
            }
            StmtKind::Expr(e) => {
                self.expr(e);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond);
                self.block(then_blk);
                if let Some(b) = else_blk {
                    self.block(b);
                }
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.block(body);
                self.expr(cond);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(st) = init {
                    self.stmt(st);
                }
                if let Some(e) = cond {
                    self.expr(e);
                }
                if let Some(e) = step {
                    self.expr(e);
                }
                self.block(body);
            }
            StmtKind::Return(Some(e)) => {
                self.expr(e);
                if self.is_ptr_like(e) {
                    if let Some(rc) = self.ptr_class(e) {
                        let ret = self.p.ret_node[self.func];
                        let a = self.p.pts_class(ret);
                        let b = self.p.pts_class(rc);
                        self.p.unify(a, b);
                    }
                }
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
            StmtKind::Profile(p) => self.block(&p.body),
            StmtKind::Memo(m) => self.block(&m.body),
        }
    }

    /// Walks an expression, processing assignments and call bindings.
    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign(l, r) | ExprKind::AssignOp(_, l, r) => {
                self.expr(l);
                self.expr(r);
                if self.is_ptr_like(r) || self.is_ptr_like(l) {
                    self.assign(l, r);
                }
            }
            ExprKind::Call(callee, args) => {
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
                self.bind_call(callee, args);
            }
            _ => {
                // Recurse generically.
                match &e.kind {
                    ExprKind::Unary(_, a) | ExprKind::IncDec(_, a) | ExprKind::Cast(_, a) => {
                        self.expr(a)
                    }
                    ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                        self.expr(a);
                        self.expr(b);
                    }
                    ExprKind::Ternary(c, t, f) => {
                        self.expr(c);
                        self.expr(t);
                        self.expr(f);
                    }
                    ExprKind::Member(a, _) | ExprKind::Arrow(a, _) => self.expr(a),
                    _ => {}
                }
            }
        }
    }

    /// `lhs = rhs` where a pointer value may flow.
    fn assign(&mut self, lhs: &Expr, rhs: &Expr) {
        let Some(lc) = self.place_class(lhs) else {
            return;
        };
        let Some(rc) = self.ptr_class(rhs) else {
            return;
        };
        let lp = self.p.pts_class(lc);
        let rp = self.p.pts_class(rc);
        self.p.unify(lp, rp);
    }

    /// Class of the cells denoted by an lvalue.
    fn place_class(&mut self, lv: &Expr) -> Option<usize> {
        match &lv.kind {
            ExprKind::Var(_) => {
                let v = VarId::of_expr(&self.checked.info, self.func, lv)?;
                Some(self.p.node_of(v))
            }
            ExprKind::Unary(UnOp::Deref, p) => {
                let pc = self.ptr_class(p)?;
                Some(self.p.pts_class(pc))
            }
            ExprKind::Index(base, _) => {
                let bc = self.ptr_class(base)?;
                Some(self.p.pts_class(bc))
            }
            // Field-insensitive: a member is its base.
            ExprKind::Member(base, _) => self.place_class(base),
            ExprKind::Arrow(base, _) => {
                let bc = self.ptr_class(base)?;
                Some(self.p.pts_class(bc))
            }
            _ => None,
        }
    }

    /// Class representing a pointer-valued expression: dereferencing the
    /// value yields members of `pts(class)`.
    fn ptr_class(&mut self, e: &Expr) -> Option<usize> {
        match &e.kind {
            ExprKind::Var(_) => {
                match self.checked.info.res.get(&e.id)? {
                    Res::Func(_) => {
                        // A function value carries no data pointees.
                        None
                    }
                    _ => {
                        let v = VarId::of_expr(&self.checked.info, self.func, e)?;
                        let ty = self.checked.info.expr_types.get(&e.id)?;
                        if matches!(ty, Type::Array(..)) {
                            // Array decay: value points at the array itself.
                            let node = self.p.node_of(v);
                            let a = self.p.fresh();
                            let ap = self.p.pts_class(a);
                            self.p.unify(ap, node);
                            Some(a)
                        } else {
                            Some(self.p.node_of(v))
                        }
                    }
                }
            }
            ExprKind::Unary(UnOp::Addr, lv) => {
                let lc = self.place_class(lv)?;
                let a = self.p.fresh();
                let ap = self.p.pts_class(a);
                self.p.unify(ap, lc);
                Some(a)
            }
            ExprKind::Unary(UnOp::Deref, q) => {
                let qc = self.ptr_class(q)?;
                Some(self.p.pts_class(qc))
            }
            ExprKind::Index(base, _) => {
                // arr[i] as a pointer value (element of pointer array) or
                // decayed sub-array: its cells live in pts(base).
                let bc = self.ptr_class(base)?;
                Some(self.p.pts_class(bc))
            }
            ExprKind::Member(base, _) => self.place_class(base),
            ExprKind::Arrow(base, _) => {
                let bc = self.ptr_class(base)?;
                Some(self.p.pts_class(bc))
            }
            ExprKind::Binary(_, a, b) => {
                // Pointer arithmetic: the value stays within the same
                // object; take whichever side is pointer-like.
                if self.is_ptr_like(a) {
                    self.ptr_class(a)
                } else {
                    self.ptr_class(b)
                }
            }
            ExprKind::Ternary(_, t, f) => match (self.ptr_class(t), self.ptr_class(f)) {
                (Some(a), Some(b)) => {
                    self.p.unify(a, b);
                    Some(a)
                }
                (a, b) => a.or(b),
            },
            ExprKind::Assign(_, r) | ExprKind::AssignOp(_, _, r) => self.ptr_class(r),
            ExprKind::IncDec(_, lv) => self.ptr_class(lv),
            ExprKind::Cast(_, a) => self.ptr_class(a),
            ExprKind::Call(callee, _) => {
                let mut nodes = Vec::new();
                for target in self.may_callees(callee) {
                    nodes.push(self.p.ret_node[target]);
                }
                let mut iter = nodes.into_iter();
                let first = iter.next()?;
                for n in iter {
                    self.p.unify(first, n);
                }
                Some(first)
            }
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Unary(..) => None,
        }
    }

    fn may_callees(&self, callee: &Expr) -> Vec<usize> {
        let mut c = callee;
        while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
            c = inner;
        }
        if let ExprKind::Var(_) = &c.kind {
            if let Some(Res::Func(f)) = self.checked.info.res.get(&c.id) {
                return vec![*f];
            }
            if let Some(Res::Builtin(_)) = self.checked.info.res.get(&c.id) {
                return vec![];
            }
        }
        // Indirect: reuse the call graph's conservative resolution (all
        // matching address-taken functions of the caller's callee set).
        self.cg.callees[self.func].clone()
    }

    /// Binds pointer-typed actuals to formals for every may-callee.
    fn bind_call(&mut self, callee: &Expr, args: &[Expr]) {
        let targets = self.may_callees(callee);
        for target in targets {
            let f = &self.checked.program.funcs[target];
            let frame = &self.checked.info.frames[target];
            for ((param, &slot), arg) in f.params.iter().zip(&frame.param_offsets).zip(args) {
                if matches!(param.ty, Type::Ptr(_) | Type::Func(_)) {
                    if let Some(ac) = self.ptr_class(arg) {
                        let formal = self.p.node_of(VarId::Local { func: target, slot });
                        let fp = self.p.pts_class(formal);
                        let ap = self.p.pts_class(ac);
                        self.p.unify(fp, ap);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts_of(src: &str, func: &str, var_slot: usize) -> (minic::Checked, Vec<VarId>) {
        let checked = minic::compile(src).unwrap();
        let cg = CallGraph::build(&checked);
        let p = PointsTo::build(&checked, &cg);
        let fi = checked.info.func_index[func];
        let pointees = p.pointees(VarId::Local {
            func: fi,
            slot: var_slot,
        });
        (checked, pointees)
    }

    #[test]
    fn address_of_local() {
        let (checked, pts) = pts_of(
            "int main() { int x; int *p = &x; *p = 3; return x; }",
            "main",
            1, // p is the second slot
        );
        let main = checked.info.func_index["main"];
        assert_eq!(
            pts,
            vec![VarId::Local {
                func: main,
                slot: 0
            }]
        );
    }

    #[test]
    fn array_decay_points_to_array() {
        let (_, pts) = pts_of(
            "int table[8];
             int main() { int *p = table; return *p; }",
            "main",
            0,
        );
        assert_eq!(pts, vec![VarId::Global(0)]);
    }

    #[test]
    fn copy_merges_pointees() {
        let (checked, pts) = pts_of(
            "int a; int b;
             int main() { int *p = &a; int *q = &b; p = q; return *p; }",
            "main",
            0, // p
        );
        // Unification: p and q end up pointing into {a, b}.
        assert!(pts.contains(&VarId::Global(0)));
        assert!(pts.contains(&VarId::Global(1)));
        let _ = checked;
    }

    #[test]
    fn interprocedural_param_binding() {
        // The paper's claim: a local pointer in one procedure pointing to
        // a local variable in another procedure.
        let src = "void set(int *p) { *p = 42; }
             int main() { int x = 0; set(&x); return x; }";
        let checked = minic::compile(src).unwrap();
        let cg = CallGraph::build(&checked);
        let p = PointsTo::build(&checked, &cg);
        let set = checked.info.func_index["set"];
        let main = checked.info.func_index["main"];
        let pointees = p.pointees(VarId::Local { func: set, slot: 0 });
        assert_eq!(
            pointees,
            vec![VarId::Local {
                func: main,
                slot: 0
            }]
        );
    }

    #[test]
    fn quan_table_param_points_to_power2() {
        // The paper's original quan(val, table, size): `table` must be seen
        // to point to the global passed at the call site.
        let src = "
            int power2[15];
            int quan(int val, int *table, int size) {
                int i;
                for (i = 0; i < size; i++)
                    if (val < *(table + i))
                        break;
                return i;
            }
            int main() { return quan(7, power2, 15); }";
        let checked = minic::compile(src).unwrap();
        let cg = CallGraph::build(&checked);
        let p = PointsTo::build(&checked, &cg);
        let quan = checked.info.func_index["quan"];
        let pointees = p.pointees(VarId::Local {
            func: quan,
            slot: 1,
        });
        assert_eq!(pointees, vec![VarId::Global(0)]);
    }

    #[test]
    fn unrelated_pointers_do_not_alias() {
        let src = "int a; int b;
             int main() { int *p = &a; int *q = &b; return *p + *q; }";
        let checked = minic::compile(src).unwrap();
        let cg = CallGraph::build(&checked);
        let pts = PointsTo::build(&checked, &cg);
        let main = checked.info.func_index["main"];
        let p = VarId::Local {
            func: main,
            slot: 0,
        };
        let q = VarId::Local {
            func: main,
            slot: 1,
        };
        assert!(!pts.may_alias(p, q));
        assert!(pts.may_alias(p, VarId::Global(0)));
        assert!(!pts.may_alias(p, VarId::Global(1)));
    }

    #[test]
    fn returned_pointer_flows_to_caller() {
        let src = "int g;
             int *get() { return &g; }
             int main() { int *p = get(); return *p; }";
        let (_, pts) = pts_of(src, "main", 0);
        assert_eq!(pts, vec![VarId::Global(0)]);
    }
}
