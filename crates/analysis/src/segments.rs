//! Candidate code-segment enumeration and legality screening.
//!
//! Per the paper (§3.1): "We confine the candidate code segment to a
//! function body, a loop body, or an IF branch." Enumerating these per
//! function gives the "Analyzed CS" counts of Table 4; the legality filter
//! then removes segments whose memoized replay could not be semantically
//! transparent (I/O inside, control flow escaping the segment, ...).

use crate::callgraph::CallGraph;
use minic::ast::{Block, ExprKind, NodeId, Program, Stmt, StmtKind, UnOp};
use minic::sema::{Builtin, Checked, Res};
use std::collections::HashSet;
use std::fmt;

/// What part of a function a segment covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegKind {
    /// The whole function body.
    FuncBody,
    /// The body of the loop statement with this id.
    LoopBody(NodeId),
    /// One branch of the `if` statement with this id.
    IfBranch(NodeId, /* then-branch? */ bool),
    /// A bare `{ ... }` block statement with this id — the paper's future
    /// work ("a candidate code segment can be a part of a loop body, a
    /// function body, or an IF branch"): the sub-segment pass wraps
    /// eligible statement ranges into bare blocks so they enumerate here.
    BareBlock(NodeId),
}

/// A candidate code segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Dense id within the enumeration.
    pub id: usize,
    /// Owning function index.
    pub func: usize,
    /// Which region of the function.
    pub kind: SegKind,
    /// Human-readable name, e.g. `quan:body` or `main:loop#17`.
    pub name: String,
}

impl Segment {
    /// The segment's body block.
    ///
    /// # Panics
    ///
    /// Panics if the segment does not belong to `program` (stale ids).
    pub fn body<'p>(&self, program: &'p Program) -> &'p Block {
        let f = &program.funcs[self.func];
        match self.kind {
            SegKind::FuncBody => &f.body,
            SegKind::LoopBody(id) => find_block(&f.body, id, true).expect("loop body present"),
            SegKind::IfBranch(id, then) => {
                find_branch(&f.body, id, then).expect("if branch present")
            }
            SegKind::BareBlock(id) => find_bare_block(&f.body, id).expect("bare block present"),
        }
    }

    /// Ids of all statements inside the segment body (the CFG region).
    pub fn body_stmt_ids(&self, program: &Program) -> HashSet<NodeId> {
        let mut ids = HashSet::new();
        minic::visit::for_each_stmt(self.body(program), |s| {
            ids.insert(s.id);
        });
        ids
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

fn find_block<'p>(block: &'p Block, id: NodeId, _loop_body: bool) -> Option<&'p Block> {
    let mut found: Option<&'p Block> = None;
    visit_blocks(block, &mut |s: &'p Stmt| {
        if s.id == id {
            found = match &s.kind {
                StmtKind::While { body, .. }
                | StmtKind::DoWhile { body, .. }
                | StmtKind::For { body, .. } => Some(body),
                _ => None,
            };
        }
    });
    found
}

fn find_branch<'p>(block: &'p Block, id: NodeId, then: bool) -> Option<&'p Block> {
    let mut found: Option<&'p Block> = None;
    visit_blocks(block, &mut |s: &'p Stmt| {
        if s.id == id {
            if let StmtKind::If {
                then_blk, else_blk, ..
            } = &s.kind
            {
                found = if then {
                    Some(then_blk)
                } else {
                    else_blk.as_ref()
                };
            }
        }
    });
    found
}

fn find_bare_block<'p>(block: &'p Block, id: NodeId) -> Option<&'p Block> {
    let mut found: Option<&'p Block> = None;
    visit_blocks(block, &mut |s: &'p Stmt| {
        if s.id == id {
            if let StmtKind::Block(b) = &s.kind {
                found = Some(b);
            }
        }
    });
    found
}

/// Like `for_each_stmt` but with a lifetime tying the callback argument to
/// the block, so callers can keep references.
fn visit_blocks<'p>(block: &'p Block, f: &mut impl FnMut(&'p Stmt)) {
    for s in &block.stmts {
        f(s);
        match &s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                visit_blocks(then_blk, f);
                if let Some(b) = else_blk {
                    visit_blocks(b, f);
                }
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => visit_blocks(body, f),
            StmtKind::For { init, body, .. } => {
                if let Some(init) = init {
                    f(init);
                }
                visit_blocks(body, f);
            }
            StmtKind::Block(b) => visit_blocks(b, f),
            StmtKind::Profile(p) => visit_blocks(&p.body, f),
            StmtKind::Memo(m) => visit_blocks(&m.body, f),
            _ => {}
        }
    }
}

/// Enumerates every candidate segment of the program: one `FuncBody` per
/// function, one `LoopBody` per loop, one `IfBranch` per (non-empty)
/// `if`/`else` branch, and one `BareBlock` per bare `{ ... }` statement
/// (which the sub-segment pass synthesizes).
pub fn enumerate(checked: &Checked) -> Vec<Segment> {
    let mut segs = Vec::new();
    for (fi, f) in checked.program.funcs.iter().enumerate() {
        segs.push(Segment {
            id: segs.len(),
            func: fi,
            kind: SegKind::FuncBody,
            name: format!("{}:body", f.name),
        });
        visit_blocks(&f.body, &mut |s| match &s.kind {
            StmtKind::While { .. } | StmtKind::DoWhile { .. } | StmtKind::For { .. } => {
                segs.push(Segment {
                    id: 0,
                    func: fi,
                    kind: SegKind::LoopBody(s.id),
                    name: format!("{}:loop#{}", f.name, s.id.0),
                });
            }
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                if !then_blk.stmts.is_empty() {
                    segs.push(Segment {
                        id: 0,
                        func: fi,
                        kind: SegKind::IfBranch(s.id, true),
                        name: format!("{}:if#{}:then", f.name, s.id.0),
                    });
                }
                if else_blk.as_ref().is_some_and(|b| !b.stmts.is_empty()) {
                    segs.push(Segment {
                        id: 0,
                        func: fi,
                        kind: SegKind::IfBranch(s.id, false),
                        name: format!("{}:if#{}:else", f.name, s.id.0),
                    });
                }
            }
            StmtKind::Block(b) if !b.stmts.is_empty() => {
                segs.push(Segment {
                    id: 0,
                    func: fi,
                    kind: SegKind::BareBlock(s.id),
                    name: format!("{}:block#{}", f.name, s.id.0),
                });
            }
            _ => {}
        });
    }
    for (i, s) in segs.iter_mut().enumerate() {
        s.id = i;
    }
    segs
}

/// Why a segment was removed from consideration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// Body is empty.
    Empty,
    /// Performs I/O (directly or through a callee), so replaying recorded
    /// outputs would skip observable effects.
    HasIo,
    /// Contains `return`/`break`/`continue` that escapes the segment.
    EscapingControl,
    /// Already instrumented (contains Profile/Memo).
    Instrumented,
    /// Inputs or outputs not expressible as memo operands (structs,
    /// ambiguous pointers, pointer-valued outputs, ...).
    UnsupportedOperand(String),
    /// No inputs (nothing to key on).
    NoInputs,
    /// No outputs and no return value (nothing to reuse).
    NoOutputs,
    /// Static overhead bound is at least the static granularity bound
    /// (`O/C >= 1`, the paper's pre-profiling filter).
    OverheadDominates,
    /// Executed too rarely to be worth value-profiling.
    ColdCode,
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reject::Empty => write!(f, "empty body"),
            Reject::HasIo => write!(f, "performs I/O"),
            Reject::EscapingControl => write!(f, "control flow escapes the segment"),
            Reject::Instrumented => write!(f, "already instrumented"),
            Reject::UnsupportedOperand(why) => write!(f, "unsupported operand: {why}"),
            Reject::NoInputs => write!(f, "no inputs to key on"),
            Reject::NoOutputs => write!(f, "no outputs to reuse"),
            Reject::OverheadDominates => write!(f, "hashing overhead >= granularity"),
            Reject::ColdCode => write!(f, "executed too rarely"),
        }
    }
}

/// Screens a segment for structural legality (everything except operand
/// and cost checks, which need more context).
pub fn check_structure(
    checked: &Checked,
    cg: &CallGraph,
    io: &[bool],
    seg: &Segment,
) -> Result<(), Reject> {
    let body = seg.body(&checked.program);
    if body.stmts.is_empty() {
        return Err(Reject::Empty);
    }

    let mut has_io = false;
    let mut instrumented = false;
    let mut escaping = false;

    // Walk with loop-depth tracking for escape analysis.
    #[allow(clippy::too_many_arguments)]
    fn walk(
        checked: &Checked,
        cg: &CallGraph,
        io: &[bool],
        b: &Block,
        depth: usize,
        is_func_body: bool,
        has_io: &mut bool,
        instrumented: &mut bool,
        escaping: &mut bool,
    ) {
        for s in &b.stmts {
            match &s.kind {
                StmtKind::Break | StmtKind::Continue => {
                    if depth == 0 {
                        *escaping = true;
                    }
                }
                StmtKind::Return(e) => {
                    if !is_func_body {
                        *escaping = true;
                    }
                    if let Some(e) = e {
                        scan_expr(checked, cg, io, e, has_io);
                    }
                }
                StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
                    scan_expr(checked, cg, io, cond, has_io);
                    walk(
                        checked,
                        cg,
                        io,
                        body,
                        depth + 1,
                        is_func_body,
                        has_io,
                        instrumented,
                        escaping,
                    );
                }
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    if let Some(init) = init {
                        if let StmtKind::Decl { init: Some(e), .. } | StmtKind::Expr(e) = &init.kind
                        {
                            scan_expr(checked, cg, io, e, has_io);
                        }
                    }
                    if let Some(e) = cond {
                        scan_expr(checked, cg, io, e, has_io);
                    }
                    if let Some(e) = step {
                        scan_expr(checked, cg, io, e, has_io);
                    }
                    walk(
                        checked,
                        cg,
                        io,
                        body,
                        depth + 1,
                        is_func_body,
                        has_io,
                        instrumented,
                        escaping,
                    );
                }
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    scan_expr(checked, cg, io, cond, has_io);
                    walk(
                        checked,
                        cg,
                        io,
                        then_blk,
                        depth,
                        is_func_body,
                        has_io,
                        instrumented,
                        escaping,
                    );
                    if let Some(eb) = else_blk {
                        walk(
                            checked,
                            cg,
                            io,
                            eb,
                            depth,
                            is_func_body,
                            has_io,
                            instrumented,
                            escaping,
                        );
                    }
                }
                StmtKind::Block(inner) => walk(
                    checked,
                    cg,
                    io,
                    inner,
                    depth,
                    is_func_body,
                    has_io,
                    instrumented,
                    escaping,
                ),
                StmtKind::Decl { init: Some(e), .. } | StmtKind::Expr(e) => {
                    scan_expr(checked, cg, io, e, has_io)
                }
                StmtKind::Decl { init: None, .. } => {}
                StmtKind::Profile(_) | StmtKind::Memo(_) => *instrumented = true,
            }
        }
    }

    fn scan_expr(
        checked: &Checked,
        cg: &CallGraph,
        io: &[bool],
        e: &minic::ast::Expr,
        has_io: &mut bool,
    ) {
        minic_expr_walk(e, &mut |e| {
            if let ExprKind::Call(callee, _) = &e.kind {
                let mut c = callee.as_ref();
                while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
                    c = inner;
                }
                match checked.info.res.get(&c.id) {
                    Some(Res::Builtin(
                        Builtin::Print | Builtin::Input | Builtin::Eof | Builtin::Assert,
                    )) => *has_io = true,
                    Some(Res::Func(f)) => {
                        if io[*f] {
                            *has_io = true;
                        }
                    }
                    _ => {
                        // Indirect call: conservative — I/O if any possible
                        // callee does I/O.
                        let caller_sets: Vec<usize> =
                            cg.callees.iter().flatten().copied().collect();
                        let _ = caller_sets;
                        if io.iter().any(|&b| b) {
                            // Over-approximate only when the program has
                            // any I/O function that is address-taken.
                            if cg
                                .address_taken
                                .iter()
                                .enumerate()
                                .any(|(i, &taken)| taken && io[i])
                            {
                                *has_io = true;
                            }
                        }
                    }
                }
            }
        });
    }

    fn minic_expr_walk(e: &minic::ast::Expr, f: &mut impl FnMut(&minic::ast::Expr)) {
        f(e);
        match &e.kind {
            ExprKind::Unary(_, a) | ExprKind::IncDec(_, a) | ExprKind::Cast(_, a) => {
                minic_expr_walk(a, f)
            }
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(a, b)
            | ExprKind::AssignOp(_, a, b)
            | ExprKind::Index(a, b) => {
                minic_expr_walk(a, f);
                minic_expr_walk(b, f);
            }
            ExprKind::Ternary(c, t, fl) => {
                minic_expr_walk(c, f);
                minic_expr_walk(t, f);
                minic_expr_walk(fl, f);
            }
            ExprKind::Call(c, args) => {
                minic_expr_walk(c, f);
                for a in args {
                    minic_expr_walk(a, f);
                }
            }
            ExprKind::Member(a, _) | ExprKind::Arrow(a, _) => minic_expr_walk(a, f),
            _ => {}
        }
    }

    let is_func_body = matches!(seg.kind, SegKind::FuncBody);
    walk(
        checked,
        cg,
        io,
        body,
        0,
        is_func_body,
        &mut has_io,
        &mut instrumented,
        &mut escaping,
    );
    if instrumented {
        return Err(Reject::Instrumented);
    }
    if has_io {
        return Err(Reject::HasIo);
    }
    if escaping {
        return Err(Reject::EscapingControl);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str) -> (minic::Checked, CallGraph, Vec<bool>, Vec<Segment>) {
        let checked = minic::compile(src).unwrap();
        let cg = CallGraph::build(&checked);
        let io = cg.io_closure();
        let segs = enumerate(&checked);
        (checked, cg, io, segs)
    }

    #[test]
    fn enumerates_all_three_kinds() {
        let (_, _, _, segs) = setup(
            "int f(int x) {
                 int s = 0;
                 for (int i = 0; i < x; i++) {
                     if (i % 2) { s += i; } else { s -= i; }
                 }
                 while (s > 100) { s /= 2; }
                 return s;
             }",
        );
        let kinds: Vec<_> = segs.iter().map(|s| s.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, SegKind::FuncBody)));
        assert_eq!(
            kinds
                .iter()
                .filter(|k| matches!(k, SegKind::LoopBody(_)))
                .count(),
            2
        );
        assert_eq!(
            kinds
                .iter()
                .filter(|k| matches!(k, SegKind::IfBranch(..)))
                .count(),
            2
        );
        // Ids are dense.
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn body_accessor_returns_right_block() {
        let (checked, _, _, segs) = setup("int f(int x) { while (x > 0) { x--; } return x; }");
        let loop_seg = segs
            .iter()
            .find(|s| matches!(s.kind, SegKind::LoopBody(_)))
            .unwrap();
        let body = loop_seg.body(&checked.program);
        assert_eq!(body.stmts.len(), 1);
        assert_eq!(loop_seg.body_stmt_ids(&checked.program).len(), 1);
    }

    #[test]
    fn io_segments_rejected() {
        let (checked, cg, io, segs) = setup(
            "void log_it(int x) { print(x); }
             int quiet(int x) { return x * 2; }
             int main() { log_it(quiet(3)); return 0; }",
        );
        let log_body = segs.iter().find(|s| s.name == "log_it:body").unwrap();
        let quiet_body = segs.iter().find(|s| s.name == "quiet:body").unwrap();
        assert_eq!(
            check_structure(&checked, &cg, &io, log_body),
            Err(Reject::HasIo)
        );
        assert!(check_structure(&checked, &cg, &io, quiet_body).is_ok());
    }

    #[test]
    fn escaping_control_rejected_for_non_func_segments() {
        let (checked, cg, io, segs) = setup(
            "int f(int x) {
                 int s = 0;
                 for (int i = 0; i < x; i++) {
                     if (i == 5) break;
                     s += i;
                 }
                 while (x > 0) {
                     if (x == 2) return s;
                     x--;
                 }
                 return s;
             }",
        );
        // The for-loop body contains `break` at segment depth 0 → escapes.
        let for_body = segs
            .iter()
            .find(|s| matches!(s.kind, SegKind::LoopBody(_)))
            .unwrap();
        assert_eq!(
            check_structure(&checked, &cg, &io, for_body),
            Err(Reject::EscapingControl)
        );
        // The while body contains a return → escapes.
        let while_body = segs
            .iter()
            .filter(|s| matches!(s.kind, SegKind::LoopBody(_)))
            .nth(1)
            .unwrap();
        assert_eq!(
            check_structure(&checked, &cg, &io, while_body),
            Err(Reject::EscapingControl)
        );
        // The function body itself is fine: its break/return are internal.
        let func_body = segs.iter().find(|s| s.name == "f:body").unwrap();
        assert!(check_structure(&checked, &cg, &io, func_body).is_ok());
    }

    #[test]
    fn inner_loop_break_does_not_escape() {
        let (checked, cg, io, segs) = setup(
            "int f(int x) {
                 int s = 0;
                 while (x > 0) {
                     for (int i = 0; i < 10; i++) {
                         if (i == 3) break;
                         s += i;
                     }
                     x--;
                 }
                 return s;
             }",
        );
        // The while body contains a for whose break targets the for — the
        // while body segment is still legal.
        let while_body = segs
            .iter()
            .find(|s| matches!(s.kind, SegKind::LoopBody(_)))
            .unwrap();
        assert!(check_structure(&checked, &cg, &io, while_body).is_ok());
    }

    #[test]
    fn quan_body_is_legal() {
        let (checked, cg, io, segs) = setup(
            "int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
             int quan(int val) {
                 int i;
                 for (i = 0; i < 15; i++)
                     if (val < power2[i])
                         break;
                 return i;
             }
             int main() { return quan(7); }",
        );
        let quan_body = segs.iter().find(|s| s.name == "quan:body").unwrap();
        assert!(check_structure(&checked, &cg, &io, quan_body).is_ok());
        // Its inner loop body contains an if-branch with break → escapes.
        let loop_body = segs
            .iter()
            .find(|s| matches!(s.kind, SegKind::LoopBody(_)) && s.name.starts_with("quan"))
            .unwrap();
        assert_eq!(
            check_structure(&checked, &cg, &io, loop_body),
            Err(Reject::EscapingControl)
        );
    }
}
