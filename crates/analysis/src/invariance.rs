//! Code-coverage (invariance) analysis — paper §2.4.
//!
//! > "To identify whether a variable is invariant in the execution of the
//! > code segment, our scheme performs a *code coverage analysis* to find
//! > all basic blocks which are in the execution paths from the first
//! > execution instance to the last execution instance of the code
//! > segment. If the variable remains unchanged in all these basic blocks,
//! > then it is invariant for the code segment."
//!
//! Invariant variables are dropped from the hash key ("An invariant never
//! needs to be included in the hash key") — this is what turns the paper's
//! `quan` example into a one-input segment: `power2` is initialized once
//! at startup and never changes between `quan` executions.
//!
//! We implement a sound over-approximation of the coverage region:
//!
//! 1. a variable with **no definitions anywhere** is invariant;
//! 2. otherwise, if **all** definitions sit in `main` and, within `main`'s
//!    CFG, none is reachable *after* a call that can (transitively) reach
//!    the segment's function, the variable is invariant — this covers the
//!    ubiquitous "fill tables during startup, then run" pattern;
//! 3. everything else is treated as varying (never wrongly invariant).

use crate::usedef::{instr_effects, EffectCtx};
use crate::vars::VarId;
use crate::{Analyses, Segment};
use flow::cfg::{Cfg, InstrKind};
use minic::ast::{ExprKind, UnOp};
use minic::sema::{Checked, Res};
use std::collections::HashSet;

/// Returns the subset of `candidates` that are invariant for `seg`.
pub fn invariant_vars(
    checked: &Checked,
    an: &Analyses,
    seg: &Segment,
    candidates: &HashSet<VarId>,
) -> HashSet<VarId> {
    // Only globals can be invariant: parameters are (re)bound at every
    // call without an explicit definition, and a local's definitions are
    // necessarily inside its own function, where the segment lives.
    let candidates: HashSet<VarId> = candidates
        .iter()
        .copied()
        .filter(|v| matches!(v, VarId::Global(_)))
        .collect();
    let ever = an.modref.ever_modified();
    let mut result: HashSet<VarId> = candidates
        .iter()
        .copied()
        .filter(|v| !ever.contains(v))
        .collect();

    // Phase 2: init-before-use pattern. Only meaningful when the segment
    // is not inside main itself.
    let Some(&main_idx) = checked.info.func_index.get("main") else {
        return result;
    };
    if seg.func == main_idx {
        return result;
    }

    let remaining: Vec<VarId> = candidates
        .iter()
        .copied()
        .filter(|v| !result.contains(v))
        .collect();
    if remaining.is_empty() {
        return result;
    }

    // Definitions must be confined to main.
    let confined: Vec<VarId> = remaining
        .into_iter()
        .filter(|v| {
            an.modref
                .direct_modifies
                .iter()
                .enumerate()
                .all(|(fi, mods)| fi == main_idx || !mods.contains(v))
        })
        .collect();
    if confined.is_empty() {
        return result;
    }

    // Build main's CFG; find trigger blocks (instructions whose calls can
    // reach the segment's function) and, per candidate, its def blocks.
    let main_fn = &checked.program.funcs[main_idx];
    let cfg = Cfg::build(&main_fn.body);
    let ctx = an.effect_ctx(checked, main_idx);

    // Which functions can reach the segment's function?
    let reaches_seg: Vec<bool> = (0..checked.program.funcs.len())
        .map(|f| an.cg.reachable_from(f).contains(&seg.func))
        .collect();

    // Per block: position of the first trigger instruction (if any), and
    // per candidate the position of its last def instruction.
    let mut trigger_first: Vec<Option<usize>> = vec![None; cfg.len()];
    let mut def_positions: Vec<Vec<(VarId, usize)>> = vec![Vec::new(); cfg.len()];
    for (bid, blk) in cfg.blocks.iter().enumerate() {
        for (pos, instr) in blk.instrs.iter().enumerate() {
            if trigger_first[bid].is_none() && instr_triggers(checked, &ctx, instr, &reaches_seg) {
                trigger_first[bid] = Some(pos);
            }
            let fx = instr_effects(ctx, instr);
            for v in fx.all_defs() {
                if confined.contains(&v) {
                    def_positions[bid].push((v, pos));
                }
            }
        }
    }

    // Blocks reachable strictly after a trigger: successors of trigger
    // blocks, transitively.
    let g = cfg.graph();
    let mut after: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = Vec::new();
    for (bid, t) in trigger_first.iter().enumerate() {
        if t.is_some() {
            stack.extend(g.succs(bid).iter().copied());
        }
    }
    while let Some(b) = stack.pop() {
        if after.insert(b) {
            stack.extend(g.succs(b).iter().copied());
        }
    }

    'cand: for v in confined {
        for (bid, defs) in def_positions.iter().enumerate() {
            for &(dv, pos) in defs {
                if dv != v {
                    continue;
                }
                // A def in a block reachable after some trigger: varies.
                if after.contains(&bid) {
                    continue 'cand;
                }
                // A def after a trigger within the same block: varies.
                if let Some(tpos) = trigger_first[bid] {
                    if pos >= tpos {
                        continue 'cand;
                    }
                }
            }
        }
        result.insert(v);
    }
    result
}

/// Whether an instruction may (transitively) trigger an execution of the
/// segment's function.
fn instr_triggers(
    checked: &Checked,
    ctx: &EffectCtx<'_>,
    instr: &flow::cfg::Instr<'_>,
    reaches_seg: &[bool],
) -> bool {
    let expr = match instr.kind {
        InstrKind::Expr(e) | InstrKind::Cond(e) => Some(e),
        InstrKind::Return(e) => e,
        InstrKind::Decl(s) => match &s.kind {
            minic::ast::StmtKind::Decl { init, .. } => init.as_ref(),
            _ => None,
        },
        InstrKind::Memo(_) | InstrKind::Profile(_) => None,
    };
    let Some(expr) = expr else {
        return false;
    };
    let mut triggers = false;
    walk(expr, &mut |e| {
        if let ExprKind::Call(callee, _) = &e.kind {
            let mut c = callee.as_ref();
            while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
                c = inner;
            }
            match checked.info.res.get(&c.id) {
                Some(Res::Func(f)) => {
                    if reaches_seg[*f] {
                        triggers = true;
                    }
                }
                Some(Res::Builtin(_)) => {}
                _ => {
                    // Indirect call: any may-callee reaching the segment.
                    if ctx.callees[ctx.func].iter().any(|&f| reaches_seg[f]) {
                        triggers = true;
                    }
                }
            }
        }
    });
    return triggers;

    fn walk(e: &minic::ast::Expr, f: &mut impl FnMut(&minic::ast::Expr)) {
        f(e);
        match &e.kind {
            ExprKind::Unary(_, a) | ExprKind::IncDec(_, a) | ExprKind::Cast(_, a) => walk(a, f),
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(a, b)
            | ExprKind::AssignOp(_, a, b)
            | ExprKind::Index(a, b) => {
                walk(a, f);
                walk(b, f);
            }
            ExprKind::Ternary(c, t, fl) => {
                walk(c, f);
                walk(t, f);
                walk(fl, f);
            }
            ExprKind::Call(c, args) => {
                walk(c, f);
                for a in args {
                    walk(a, f);
                }
            }
            ExprKind::Member(a, _) | ExprKind::Arrow(a, _) => walk(a, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments;

    fn setup(src: &str) -> (minic::Checked, Analyses, Vec<Segment>) {
        let checked = minic::compile(src).unwrap();
        let an = Analyses::build(&checked);
        let segs = segments::enumerate(&checked);
        (checked, an, segs)
    }

    fn seg_named<'s>(segs: &'s [Segment], name: &str) -> &'s Segment {
        segs.iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn never_written_global_is_invariant() {
        let (checked, an, segs) = setup(
            "int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
             int quan(int val) {
                 int i;
                 for (i = 0; i < 15; i++) if (val < power2[i]) break;
                 return i;
             }
             int main() { return quan(5); }",
        );
        let seg = seg_named(&segs, "quan:body");
        let cands: HashSet<VarId> = [VarId::Global(0)].into();
        let inv = invariant_vars(&checked, &an, seg, &cands);
        assert!(inv.contains(&VarId::Global(0)));
    }

    #[test]
    fn init_before_first_call_is_invariant() {
        // The paper's real G721 shape: a table filled during startup, then
        // the hot function runs inside a loop.
        let (checked, an, segs) = setup(
            "int table[8];
             int lookup(int v) {
                 int i;
                 for (i = 0; i < 8; i++) if (v < table[i]) break;
                 return i;
             }
             int main() {
                 for (int i = 0; i < 8; i++) table[i] = 1 << i;
                 int s = 0;
                 for (int k = 0; k < 100; k++) s += lookup(k % 9);
                 return s;
             }",
        );
        let seg = seg_named(&segs, "lookup:body");
        let cands: HashSet<VarId> = [VarId::Global(0)].into();
        let inv = invariant_vars(&checked, &an, seg, &cands);
        assert!(
            inv.contains(&VarId::Global(0)),
            "table is filled before lookup ever runs"
        );
    }

    #[test]
    fn written_between_executions_is_not_invariant() {
        let (checked, an, segs) = setup(
            "int table[8];
             int lookup(int v) {
                 int i;
                 for (i = 0; i < 8; i++) if (v < table[i]) break;
                 return i;
             }
             int main() {
                 int s = 0;
                 for (int k = 0; k < 100; k++) {
                     table[k % 8] = k;
                     s += lookup(k % 9);
                 }
                 return s;
             }",
        );
        let seg = seg_named(&segs, "lookup:body");
        let cands: HashSet<VarId> = [VarId::Global(0)].into();
        let inv = invariant_vars(&checked, &an, seg, &cands);
        assert!(
            !inv.contains(&VarId::Global(0)),
            "table mutates between lookups"
        );
    }

    #[test]
    fn written_by_other_function_is_not_invariant() {
        let (checked, an, segs) = setup(
            "int g;
             void clobber() { g = 1; }
             int user(int v) { return v + g; }
             int main() { clobber(); return user(2); }",
        );
        let seg = seg_named(&segs, "user:body");
        let cands: HashSet<VarId> = [VarId::Global(0)].into();
        let inv = invariant_vars(&checked, &an, seg, &cands);
        assert!(!inv.contains(&VarId::Global(0)));
    }

    #[test]
    fn segment_inside_main_uses_strict_rule() {
        let (checked, an, segs) = setup(
            "int g = 5;
             int main() {
                 int s = 0;
                 g = 7;
                 for (int i = 0; i < 10; i++) { s += g; }
                 return s;
             }",
        );
        let loop_seg = segs
            .iter()
            .find(|s| matches!(s.kind, crate::SegKind::LoopBody(_)))
            .unwrap();
        let cands: HashSet<VarId> = [VarId::Global(0)].into();
        let inv = invariant_vars(&checked, &an, loop_seg, &cands);
        assert!(!inv.contains(&VarId::Global(0)), "defs in main: varying");
    }
}

#[cfg(test)]
mod conservatism_tests {
    use super::*;
    use crate::segments;
    use std::collections::HashSet;

    /// Documented conservatism: tables initialized by a *helper* called
    /// from main are not recognized as invariant (defs are not confined to
    /// main). The scheme then keys on the table — slower but sound.
    #[test]
    fn helper_initialized_table_is_conservatively_varying() {
        let checked = minic::compile(
            "int table[8];
             void init_tables() { for (int i = 0; i < 8; i++) table[i] = 1 << i; }
             int lookup(int v) {
                 int i;
                 for (i = 0; i < 8; i++) if (v < table[i]) break;
                 return i;
             }
             int main() {
                 init_tables();
                 int s = 0;
                 for (int k = 0; k < 50; k++) s += lookup(k % 9);
                 return s;
             }",
        )
        .unwrap();
        let an = crate::Analyses::build(&checked);
        let segs = segments::enumerate(&checked);
        let seg = segs.iter().find(|s| s.name == "lookup:body").unwrap();
        let cands: HashSet<VarId> = [VarId::Global(0)].into();
        let inv = invariant_vars(&checked, &an, seg, &cands);
        assert!(
            !inv.contains(&VarId::Global(0)),
            "helper-initialized tables stay varying (conservative, sound)"
        );
        // The interface analysis then keys on the table contents.
        let io = crate::inout::seg_io(&checked, &an, seg).unwrap();
        assert_eq!(io.key_words, 9, "v + 8 table words");
    }

    /// A table written through a pointer alias in main (not by name) is
    /// still detected as varying via the points-to-backed MOD sets.
    #[test]
    fn aliased_write_defeats_invariance() {
        let checked = minic::compile(
            "int table[8];
             int lookup(int v) {
                 int i;
                 for (i = 0; i < 8; i++) if (v < table[i]) break;
                 return i;
             }
             int main() {
                 int *p = table;
                 int s = 0;
                 for (int k = 0; k < 50; k++) {
                     p[k % 8] = k;
                     s += lookup(k % 9);
                 }
                 return s;
             }",
        )
        .unwrap();
        let an = crate::Analyses::build(&checked);
        let segs = segments::enumerate(&checked);
        let seg = segs.iter().find(|s| s.name == "lookup:body").unwrap();
        let cands: HashSet<VarId> = [VarId::Global(0)].into();
        let inv = invariant_vars(&checked, &an, seg, &cands);
        assert!(!inv.contains(&VarId::Global(0)), "alias write must count");
    }
}
