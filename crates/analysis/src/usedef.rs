//! Per-instruction use/def extraction (the paper's "def-use chains
//! construction", made global by resolving pointer dereferences with the
//! points-to analysis and call effects with the MOD/REF summaries).
//!
//! A *strong* definition overwrites a whole scalar variable and kills
//! prior values; writes to arrays, struct members, and through pointers
//! are *weak* (may-writes) and kill nothing.

use crate::modref::ModRef;
use crate::pointsto::PointsTo;
use crate::vars::VarId;
use flow::cfg::{Instr, InstrKind};
use minic::ast::{Expr, ExprKind, StmtKind, Type, UnOp};
use minic::sema::{Checked, Res};
use std::collections::HashSet;

/// Use/def sets of one instruction.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    /// Variables possibly read.
    pub uses: HashSet<VarId>,
    /// Scalar variables definitely overwritten.
    pub strong_defs: HashSet<VarId>,
    /// Variables possibly (partially) written.
    pub weak_defs: HashSet<VarId>,
}

impl Effects {
    /// All definitions, strong and weak.
    pub fn all_defs(&self) -> impl Iterator<Item = VarId> + '_ {
        self.strong_defs
            .iter()
            .chain(self.weak_defs.iter())
            .copied()
    }
}

/// Context shared by effect extraction.
#[derive(Debug, Clone, Copy)]
pub struct EffectCtx<'a> {
    /// The checked program.
    pub checked: &'a Checked,
    /// Points-to results.
    pub pts: &'a PointsTo,
    /// MOD/REF summaries.
    pub modref: &'a ModRef,
    /// May-callees per function (for indirect call effects).
    pub callees: &'a [Vec<usize>],
    /// The function being analyzed.
    pub func: usize,
}

/// Effects of a CFG instruction.
pub fn instr_effects(ctx: EffectCtx<'_>, instr: &Instr<'_>) -> Effects {
    let mut fx = Effects::default();
    match instr.kind {
        InstrKind::Decl(stmt) => {
            if let StmtKind::Decl { init: Some(e), .. } = &stmt.kind {
                expr_effects(ctx, e, &mut fx);
                if let Some(&slot) = ctx.checked.info.frames[ctx.func].decl_offsets.get(&stmt.id) {
                    fx.strong_defs.insert(VarId::Local {
                        func: ctx.func,
                        slot,
                    });
                }
            }
        }
        InstrKind::Expr(e) | InstrKind::Cond(e) => expr_effects(ctx, e, &mut fx),
        InstrKind::Return(Some(e)) => expr_effects(ctx, e, &mut fx),
        InstrKind::Return(None) => {}
        InstrKind::Memo(m) => {
            // Opaque: uses its inputs, weakly defines its outputs, plus the
            // body's effects (a miss runs it).
            for s in &m.body.stmts {
                stmt_effects_rec(ctx, s, &mut fx);
            }
        }
        InstrKind::Profile(p) => {
            for s in &p.body.stmts {
                stmt_effects_rec(ctx, s, &mut fx);
            }
        }
    }
    fx
}

fn stmt_effects_rec(ctx: EffectCtx<'_>, s: &minic::ast::Stmt, fx: &mut Effects) {
    // For opaque bodies we only need conservative aggregate effects: all
    // defs become weak.
    match &s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                expr_effects(ctx, e, fx);
            }
        }
        StmtKind::Expr(e) => expr_effects(ctx, e, fx),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            expr_effects(ctx, cond, fx);
            for s in &then_blk.stmts {
                stmt_effects_rec(ctx, s, fx);
            }
            if let Some(b) = else_blk {
                for s in &b.stmts {
                    stmt_effects_rec(ctx, s, fx);
                }
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            expr_effects(ctx, cond, fx);
            for s in &body.stmts {
                stmt_effects_rec(ctx, s, fx);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(st) = init {
                stmt_effects_rec(ctx, st, fx);
            }
            if let Some(e) = cond {
                expr_effects(ctx, e, fx);
            }
            if let Some(e) = step {
                expr_effects(ctx, e, fx);
            }
            for s in &body.stmts {
                stmt_effects_rec(ctx, s, fx);
            }
        }
        StmtKind::Return(Some(e)) => expr_effects(ctx, e, fx),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => {
            for s in &b.stmts {
                stmt_effects_rec(ctx, s, fx);
            }
        }
        StmtKind::Profile(p) => {
            for s in &p.body.stmts {
                stmt_effects_rec(ctx, s, fx);
            }
        }
        StmtKind::Memo(m) => {
            for s in &m.body.stmts {
                stmt_effects_rec(ctx, s, fx);
            }
        }
    }
}

/// Effects of evaluating `e` as an rvalue (recursive).
pub fn expr_effects(ctx: EffectCtx<'_>, e: &Expr, fx: &mut Effects) {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) => {}
        ExprKind::Var(_) => {
            if let Some(v) = VarId::of_expr(&ctx.checked.info, ctx.func, e) {
                fx.uses.insert(v);
            }
        }
        ExprKind::Unary(UnOp::Addr, lv) => lvalue_subreads(ctx, lv, fx),
        ExprKind::Unary(UnOp::Deref, p) => {
            expr_effects(ctx, p, fx);
            for t in pointer_targets(ctx, p) {
                fx.uses.insert(t);
            }
        }
        ExprKind::Unary(_, a) | ExprKind::Cast(_, a) => expr_effects(ctx, a, fx),
        ExprKind::Binary(_, a, b) => {
            expr_effects(ctx, a, fx);
            expr_effects(ctx, b, fx);
        }
        ExprKind::IncDec(_, lv) => write_lvalue(ctx, lv, true, fx),
        ExprKind::Assign(l, r) => {
            expr_effects(ctx, r, fx);
            write_lvalue(ctx, l, false, fx);
        }
        ExprKind::AssignOp(_, l, r) => {
            expr_effects(ctx, r, fx);
            write_lvalue(ctx, l, true, fx);
        }
        ExprKind::Ternary(c, t, f) => {
            expr_effects(ctx, c, fx);
            expr_effects(ctx, t, fx);
            expr_effects(ctx, f, fx);
        }
        ExprKind::Call(callee, args) => {
            for a in args {
                expr_effects(ctx, a, fx);
            }
            call_effects(ctx, callee, fx);
        }
        ExprKind::Index(base, idx) => {
            expr_effects(ctx, idx, fx);
            read_indexed(ctx, base, fx);
        }
        ExprKind::Member(base, _) => expr_effects(ctx, base, fx),
        ExprKind::Arrow(base, _) => {
            expr_effects(ctx, base, fx);
            for t in pointer_targets(ctx, base) {
                fx.uses.insert(t);
            }
        }
    }
}

fn read_indexed(ctx: EffectCtx<'_>, base: &Expr, fx: &mut Effects) {
    match &base.kind {
        ExprKind::Var(_) => {
            if let Some(v) = VarId::of_expr(&ctx.checked.info, ctx.func, base) {
                fx.uses.insert(v);
                if matches!(
                    ctx.checked.info.expr_types.get(&base.id),
                    Some(Type::Ptr(_))
                ) {
                    for t in ctx.pts.pointees(v) {
                        fx.uses.insert(t);
                    }
                }
            }
        }
        _ => {
            expr_effects(ctx, base, fx);
            for t in pointer_targets(ctx, base) {
                fx.uses.insert(t);
            }
        }
    }
}

fn call_effects(ctx: EffectCtx<'_>, callee: &Expr, fx: &mut Effects) {
    let mut c = callee;
    while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
        c = inner;
    }
    let targets: Vec<usize> = if let ExprKind::Var(_) = &c.kind {
        match ctx.checked.info.res.get(&c.id) {
            Some(Res::Func(f)) => vec![*f],
            Some(Res::Builtin(_)) => Vec::new(),
            _ => {
                expr_effects(ctx, c, fx);
                ctx.callees[ctx.func].clone()
            }
        }
    } else {
        expr_effects(ctx, c, fx);
        ctx.callees[ctx.func].clone()
    };
    for t in targets {
        for &v in &ctx.modref.refs[t] {
            if relevant(ctx, v) {
                fx.uses.insert(v);
            }
        }
        for &v in &ctx.modref.modifies[t] {
            if relevant(ctx, v) {
                fx.weak_defs.insert(v);
            }
        }
    }
}

/// Whether a callee effect on `v` is visible in the current function's
/// universe (globals and this function's own locals).
fn relevant(ctx: EffectCtx<'_>, v: VarId) -> bool {
    match v {
        VarId::Global(_) => true,
        VarId::Local { func, .. } => func == ctx.func,
    }
}

fn pointer_targets(ctx: EffectCtx<'_>, p: &Expr) -> Vec<VarId> {
    match &p.kind {
        ExprKind::Var(_) => match VarId::of_expr(&ctx.checked.info, ctx.func, p) {
            Some(v) => {
                if matches!(
                    ctx.checked.info.expr_types.get(&p.id),
                    Some(Type::Array(..))
                ) {
                    vec![v]
                } else {
                    ctx.pts.pointees(v)
                }
            }
            None => Vec::new(),
        },
        ExprKind::Unary(UnOp::Addr, lv) => match &lv.kind {
            ExprKind::Var(_) => VarId::of_expr(&ctx.checked.info, ctx.func, lv)
                .into_iter()
                .collect(),
            ExprKind::Index(base, _) => pointer_targets(ctx, base),
            ExprKind::Member(base, _) => {
                let mut cur = base.as_ref();
                loop {
                    match &cur.kind {
                        ExprKind::Var(_) => {
                            return VarId::of_expr(&ctx.checked.info, ctx.func, cur)
                                .into_iter()
                                .collect()
                        }
                        ExprKind::Member(b, _) => cur = b,
                        _ => return Vec::new(),
                    }
                }
            }
            _ => Vec::new(),
        },
        ExprKind::Binary(_, a, b) => {
            let mut t = pointer_targets(ctx, a);
            t.extend(pointer_targets(ctx, b));
            t
        }
        ExprKind::Cast(_, a) | ExprKind::IncDec(_, a) => pointer_targets(ctx, a),
        ExprKind::Assign(_, r) | ExprKind::AssignOp(_, _, r) => pointer_targets(ctx, r),
        ExprKind::Ternary(_, t, f) => {
            let mut v = pointer_targets(ctx, t);
            v.extend(pointer_targets(ctx, f));
            v
        }
        ExprKind::Index(base, _) | ExprKind::Unary(UnOp::Deref, base) => {
            // Element of a pointer array / double indirection: fall back
            // to the pointees of the base's pointees — approximate with
            // the base's own targets (field/element-insensitive).
            pointer_targets(ctx, base)
        }
        _ => Vec::new(),
    }
}

/// Index/pointer sub-expressions of an lvalue are evaluated (read) even
/// though the lvalue cell itself is written.
fn lvalue_subreads(ctx: EffectCtx<'_>, lv: &Expr, fx: &mut Effects) {
    match &lv.kind {
        ExprKind::Var(_) => {}
        ExprKind::Unary(UnOp::Deref, p) => expr_effects(ctx, p, fx),
        ExprKind::Index(base, idx) => {
            expr_effects(ctx, idx, fx);
            match &base.kind {
                ExprKind::Var(_) => {
                    if matches!(
                        ctx.checked.info.expr_types.get(&base.id),
                        Some(Type::Ptr(_))
                    ) {
                        expr_effects(ctx, base, fx);
                    }
                }
                _ => lvalue_subreads(ctx, base, fx),
            }
        }
        ExprKind::Member(base, _) => lvalue_subreads(ctx, base, fx),
        ExprKind::Arrow(base, _) => expr_effects(ctx, base, fx),
        _ => expr_effects(ctx, lv, fx),
    }
}

fn write_lvalue(ctx: EffectCtx<'_>, lv: &Expr, also_read: bool, fx: &mut Effects) {
    lvalue_subreads(ctx, lv, fx);
    match &lv.kind {
        ExprKind::Var(_) => {
            if let Some(v) = VarId::of_expr(&ctx.checked.info, ctx.func, lv) {
                let ty = ctx.checked.info.expr_types.get(&lv.id);
                let scalar = matches!(
                    ty,
                    Some(Type::Int) | Some(Type::Float) | Some(Type::Ptr(_)) | Some(Type::Func(_))
                );
                if also_read {
                    fx.uses.insert(v);
                }
                if scalar {
                    fx.strong_defs.insert(v);
                } else {
                    fx.weak_defs.insert(v);
                }
            }
        }
        ExprKind::Unary(UnOp::Deref, p) => {
            for t in pointer_targets(ctx, p) {
                if also_read {
                    fx.uses.insert(t);
                }
                fx.weak_defs.insert(t);
            }
        }
        ExprKind::Index(base, _) => match &base.kind {
            ExprKind::Var(_)
                if matches!(
                    ctx.checked.info.expr_types.get(&base.id),
                    Some(Type::Array(..))
                ) =>
            {
                if let Some(v) = VarId::of_expr(&ctx.checked.info, ctx.func, base) {
                    if also_read {
                        fx.uses.insert(v);
                    }
                    fx.weak_defs.insert(v);
                }
            }
            _ => {
                for t in pointer_targets(ctx, base) {
                    if also_read {
                        fx.uses.insert(t);
                    }
                    fx.weak_defs.insert(t);
                }
            }
        },
        ExprKind::Member(base, _) => {
            let mut cur = base.as_ref();
            loop {
                match &cur.kind {
                    ExprKind::Var(_) => {
                        if let Some(v) = VarId::of_expr(&ctx.checked.info, ctx.func, cur) {
                            if also_read {
                                fx.uses.insert(v);
                            }
                            fx.weak_defs.insert(v);
                        }
                        break;
                    }
                    ExprKind::Member(b, _) => cur = b,
                    _ => break,
                }
            }
        }
        ExprKind::Arrow(base, _) => {
            for t in pointer_targets(ctx, base) {
                if also_read {
                    fx.uses.insert(t);
                }
                fx.weak_defs.insert(t);
            }
        }
        _ => expr_effects(ctx, lv, fx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    struct Built {
        checked: minic::Checked,
        cg: CallGraph,
        pts: PointsTo,
        modref: ModRef,
    }

    fn build(src: &str) -> Built {
        let checked = minic::compile(src).unwrap();
        let cg = CallGraph::build(&checked);
        let pts = PointsTo::build(&checked, &cg);
        let modref = ModRef::build(&checked, &cg, &pts);
        Built {
            checked,
            cg,
            pts,
            modref,
        }
    }

    fn effects_of_stmt(b: &Built, func: &str, stmt_idx: usize) -> Effects {
        let fi = b.checked.info.func_index[func];
        let f = &b.checked.program.funcs[fi];
        let ctx = EffectCtx {
            checked: &b.checked,
            pts: &b.pts,
            modref: &b.modref,
            callees: &b.cg.callees,
            func: fi,
        };
        let s = &f.body.stmts[stmt_idx];
        let instr = Instr {
            origin: s.id,
            kind: match &s.kind {
                StmtKind::Expr(e) => InstrKind::Expr(e),
                StmtKind::Decl { .. } => InstrKind::Decl(s),
                StmtKind::Return(v) => InstrKind::Return(v.as_ref()),
                other => panic!("test uses simple stmts, got {other:?}"),
            },
        };
        instr_effects(ctx, &instr)
    }

    #[test]
    fn scalar_assign_is_strong_def() {
        let b = build("int g; int main() { int x; x = g + 1; return x; }");
        let fx = effects_of_stmt(&b, "main", 1);
        let main = b.checked.info.func_index["main"];
        let x = VarId::Local {
            func: main,
            slot: 0,
        };
        assert!(fx.strong_defs.contains(&x));
        assert!(fx.uses.contains(&VarId::Global(0)));
        assert!(!fx.uses.contains(&x));
    }

    #[test]
    fn array_write_is_weak() {
        let b = build("int a[4]; int main() { a[2] = 5; return a[0]; }");
        let fx = effects_of_stmt(&b, "main", 0);
        assert!(fx.weak_defs.contains(&VarId::Global(0)));
        assert!(fx.strong_defs.is_empty());
    }

    #[test]
    fn compound_assign_reads_and_writes() {
        let b = build("int main() { int x = 1; x += 2; return x; }");
        let fx = effects_of_stmt(&b, "main", 1);
        let main = b.checked.info.func_index["main"];
        let x = VarId::Local {
            func: main,
            slot: 0,
        };
        assert!(fx.uses.contains(&x));
        assert!(fx.strong_defs.contains(&x));
    }

    #[test]
    fn deref_write_defines_pointees_weakly() {
        let b = build(
            "int g;
             int main() { int *p = &g; *p = 3; return g; }",
        );
        let fx = effects_of_stmt(&b, "main", 1);
        assert!(fx.weak_defs.contains(&VarId::Global(0)));
        let main = b.checked.info.func_index["main"];
        assert!(fx.uses.contains(&VarId::Local {
            func: main,
            slot: 0
        }));
    }

    #[test]
    fn call_imports_callee_effects() {
        let b = build(
            "int g; int h;
             void touch() { g = h; }
             int main() { touch(); return 0; }",
        );
        let fx = effects_of_stmt(&b, "main", 0);
        assert!(fx.weak_defs.contains(&VarId::Global(0)));
        assert!(fx.uses.contains(&VarId::Global(1)));
    }

    #[test]
    fn callee_locals_are_not_imported() {
        let b = build(
            "void work() { int t = 1; t = t + 1; }
             int main() { work(); return 0; }",
        );
        let fx = effects_of_stmt(&b, "main", 0);
        assert!(
            fx.weak_defs.is_empty() && fx.uses.is_empty(),
            "callee-private locals are invisible to the caller: {fx:?}"
        );
    }

    #[test]
    fn address_of_is_not_a_read() {
        let b = build("int g; int *take() { return &g; } int main() { take(); return 0; }");
        let fi = b.checked.info.func_index["take"];
        let f = &b.checked.program.funcs[fi];
        let ctx = EffectCtx {
            checked: &b.checked,
            pts: &b.pts,
            modref: &b.modref,
            callees: &b.cg.callees,
            func: fi,
        };
        let s = &f.body.stmts[0];
        let instr = Instr {
            origin: s.id,
            kind: match &s.kind {
                StmtKind::Return(v) => InstrKind::Return(v.as_ref()),
                _ => unreachable!(),
            },
        };
        let fx = instr_effects(ctx, &instr);
        assert!(!fx.uses.contains(&VarId::Global(0)));
    }

    #[test]
    fn pointer_read_uses_pointee() {
        let b = build(
            "int table[8];
             int main() { int *p = table; int s = 0; s = *(p + 2) + p[3]; return s; }",
        );
        let fx = effects_of_stmt(&b, "main", 2);
        assert!(
            fx.uses.contains(&VarId::Global(0)),
            "reads through p use table: {fx:?}"
        );
    }
}
