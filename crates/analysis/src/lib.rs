//! # analysis — compiler analyses for computation reuse
//!
//! The supporting-analysis layer of the `compreuse` workspace (a
//! reproduction of Ding & Li, *A Compiler Scheme for Reusing Intermediate
//! Computation Results*, CGO 2004). The paper lists the GCC modules it
//! implemented; each has a counterpart here:
//!
//! | paper module | here |
//! |---|---|
//! | call graph construction (function pointers, recursion SCCs) | [`callgraph`] |
//! | pointer analysis (unification-based, interprocedural) | [`pointsto`] |
//! | control flow graph construction | `flow::cfg` |
//! | def-use chains construction (global) | [`usedef`] + [`modref`] |
//! | code segment analysis | [`segments`] |
//! | — granularity analysis | [`granularity`] |
//! | — hashing overhead analysis | [`granularity`] |
//! | — code coverage analysis | [`invariance`] |
//! | — array reference analysis for array input/output | [`inout`] |
//!
//! [`Analyses::build`] runs the whole-program analyses once; the
//! per-segment queries ([`inout::seg_io`], [`granularity::seg_granularity`])
//! answer the reuse pipeline's questions.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod callgraph;
pub mod deps;
pub mod granularity;
pub mod inout;
pub mod invariance;
pub mod modref;
pub mod pointsto;
pub mod segments;
pub mod usedef;
pub mod vars;

pub use callgraph::CallGraph;
pub use modref::ModRef;
pub use pointsto::PointsTo;
pub use segments::{Reject, SegKind, Segment};
pub use vars::VarId;

use minic::sema::Checked;

/// All whole-program analysis results, built once per program.
#[derive(Debug)]
pub struct Analyses {
    /// Call graph with recursion SCCs.
    pub cg: CallGraph,
    /// Points-to relation.
    pub pts: PointsTo,
    /// MOD/REF summaries.
    pub modref: ModRef,
    /// Transitive I/O flags per function.
    pub io: Vec<bool>,
}

impl Analyses {
    /// Runs the call-graph, pointer, and MOD/REF analyses.
    ///
    /// # Examples
    ///
    /// ```
    /// let checked = minic::compile("int main() { return 0; }").unwrap();
    /// let an = analysis::Analyses::build(&checked);
    /// assert_eq!(an.cg.callees.len(), 1);
    /// ```
    pub fn build(checked: &Checked) -> Analyses {
        let cg = CallGraph::build(checked);
        let pts = PointsTo::build(checked, &cg);
        let modref = ModRef::build(checked, &cg, &pts);
        let io = cg.io_closure();
        Analyses {
            cg,
            pts,
            modref,
            io,
        }
    }

    /// Effect-extraction context for `func`.
    pub fn effect_ctx<'a>(&'a self, checked: &'a Checked, func: usize) -> usedef::EffectCtx<'a> {
        usedef::EffectCtx {
            checked,
            pts: &self.pts,
            modref: &self.modref,
            callees: &self.cg.callees,
            func,
        }
    }
}
