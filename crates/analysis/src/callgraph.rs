//! Interprocedural call graph with function-pointer resolution (the
//! paper's "call graph construction" module: "we take into account
//! function pointers and recursive functions. For recursive functions we
//! compute their strongly-connected-component").
//!
//! Indirect calls are resolved conservatively to the *address-taken*
//! functions whose signature matches the call's static callee type.

use flow::graph::{DiGraph, Sccs};
use minic::ast::{Expr, ExprKind, FuncSig, Type, UnOp};
use minic::sema::{Checked, Res};
use std::collections::HashSet;

/// A call graph over function indices.
#[derive(Debug)]
pub struct CallGraph {
    /// Edges caller → callee (indices into `Program::funcs`).
    pub graph: DiGraph,
    /// SCCs (recursion groups) of the graph.
    pub sccs: Sccs,
    /// Per function: may-callees, deduplicated and sorted.
    pub callees: Vec<Vec<usize>>,
    /// Functions whose address is taken (referenced outside call position).
    pub address_taken: Vec<bool>,
    /// Per function: whether it (directly) performs I/O (`input`, `eof`,
    /// `print`) — transitive closure in [`CallGraph::io_closure`].
    pub direct_io: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of a checked program.
    ///
    /// # Examples
    ///
    /// ```
    /// let checked = minic::compile(
    ///     "int f(int x) { return x; }
    ///      int main() { return f(1); }").unwrap();
    /// let cg = analysis::callgraph::CallGraph::build(&checked);
    /// assert_eq!(cg.callees[1], vec![0]);
    /// ```
    pub fn build(checked: &Checked) -> CallGraph {
        let n = checked.program.funcs.len();
        let mut address_taken = vec![false; n];
        let mut direct_io = vec![false; n];
        let mut direct_calls: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        let mut indirect_sigs: Vec<Vec<FuncSig>> = vec![Vec::new(); n];

        for (fi, f) in checked.program.funcs.iter().enumerate() {
            minic::visit::for_each_expr(&f.body, |e| {
                match &e.kind {
                    ExprKind::Call(callee, _) => {
                        match resolve_callee(checked, callee) {
                            CalleeKind::Direct(target) => {
                                direct_calls[fi].insert(target);
                            }
                            CalleeKind::Builtin(b) => {
                                use minic::sema::Builtin;
                                if matches!(b, Builtin::Print | Builtin::Input | Builtin::Eof) {
                                    direct_io[fi] = true;
                                }
                            }
                            CalleeKind::Indirect(sig) => {
                                indirect_sigs[fi].push(sig);
                            }
                        }
                        // Function names among the *arguments* are address
                        // takes; handled by the blanket Var case below.
                    }
                    ExprKind::Var(_) => {
                        if let Some(Res::Func(target)) = checked.info.res.get(&e.id) {
                            // A function name whose resolution reached Var
                            // typing (i.e. not consumed as a direct callee)
                            // is conservatively "address taken" unless this
                            // very node is a direct callee — direct callees
                            // are not type-checked through the Var path's
                            // res map exclusively, so over-approximating
                            // here only when used as a value would require
                            // parent links. Over-approximation is safe.
                            address_taken[*target] = true;
                        }
                    }
                    _ => {}
                }
            });
        }

        // Direct callees marked address-taken above include plain `f(x)`
        // call sites (their callee Var also resolves to Res::Func). Refine:
        // a function is address-taken only if some Var reference is NOT the
        // callee of a Call. Do a second pass tracking callee node ids.
        let mut callee_ids = HashSet::new();
        for f in &checked.program.funcs {
            minic::visit::for_each_expr(&f.body, |e| {
                if let ExprKind::Call(callee, _) = &e.kind {
                    let mut c = callee.as_ref();
                    while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
                        c = inner;
                    }
                    callee_ids.insert(c.id);
                }
            });
        }
        address_taken = vec![false; n];
        for f in &checked.program.funcs {
            minic::visit::for_each_expr(&f.body, |e| {
                if let (ExprKind::Var(_), false) = (&e.kind, callee_ids.contains(&e.id)) {
                    if let Some(Res::Func(target)) = checked.info.res.get(&e.id) {
                        address_taken[*target] = true;
                    }
                }
            });
        }

        // Resolve indirect calls: all address-taken functions with a
        // matching signature.
        let sig_of: Vec<FuncSig> = checked.program.funcs.iter().map(|f| f.sig()).collect();
        let mut callees: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut graph = DiGraph::new(n);
        for fi in 0..n {
            let mut set: HashSet<usize> = direct_calls[fi].clone();
            for sig in &indirect_sigs[fi] {
                for (ti, tsig) in sig_of.iter().enumerate() {
                    if address_taken[ti] && tsig == sig {
                        set.insert(ti);
                    }
                }
            }
            let mut v: Vec<usize> = set.into_iter().collect();
            v.sort_unstable();
            for &t in &v {
                graph.add_edge(fi, t);
            }
            callees.push(v);
        }
        let sccs = graph.sccs();
        CallGraph {
            graph,
            sccs,
            callees,
            address_taken,
            direct_io,
        }
    }

    /// Whether `f` participates in recursion (nontrivial SCC or self-loop).
    pub fn is_recursive(&self, f: usize) -> bool {
        self.sccs.in_cycle(f) || self.graph.has_edge(f, f)
    }

    /// Functions transitively reachable from `f` (including `f`).
    pub fn reachable_from(&self, f: usize) -> HashSet<usize> {
        let mut seen = HashSet::new();
        let mut stack = vec![f];
        while let Some(u) = stack.pop() {
            if seen.insert(u) {
                stack.extend(self.callees[u].iter().copied());
            }
        }
        seen
    }

    /// Per-function transitive I/O flag (calls `input`/`eof`/`print`
    /// directly or through any callee).
    pub fn io_closure(&self) -> Vec<bool> {
        let n = self.callees.len();
        let mut io = self.direct_io.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for f in 0..n {
                if !io[f] && self.callees[f].iter().any(|&c| io[c]) {
                    io[f] = true;
                    changed = true;
                }
            }
        }
        io
    }
}

enum CalleeKind {
    Direct(usize),
    Builtin(minic::sema::Builtin),
    Indirect(FuncSig),
}

fn resolve_callee(checked: &Checked, callee: &Expr) -> CalleeKind {
    // Peel (*fp).
    let mut c = callee;
    while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
        if matches!(checked.info.expr_types.get(&inner.id), Some(Type::Func(_))) {
            c = inner;
        } else {
            break;
        }
    }
    if let ExprKind::Var(_) = &c.kind {
        match checked.info.res.get(&c.id) {
            Some(Res::Func(f)) => return CalleeKind::Direct(*f),
            Some(Res::Builtin(b)) => return CalleeKind::Builtin(*b),
            _ => {}
        }
    }
    // Indirect: the static type gives the signature.
    let sig = match checked.info.expr_types.get(&c.id) {
        Some(Type::Func(sig)) => (**sig).clone(),
        Some(Type::Ptr(inner)) => match inner.as_ref() {
            Type::Func(sig) => (**sig).clone(),
            _ => FuncSig {
                params: vec![],
                ret: Type::Void,
            },
        },
        _ => FuncSig {
            params: vec![],
            ret: Type::Void,
        },
    };
    CalleeKind::Indirect(sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cg_of(src: &str) -> (minic::Checked, CallGraph) {
        let checked = minic::compile(src).unwrap();
        let cg = CallGraph::build(&checked);
        (checked, cg)
    }

    #[test]
    fn direct_calls_and_recursion() {
        let (checked, cg) = cg_of(
            "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
             int helper(int x) { return fact(x); }
             int main() { return helper(5); }",
        );
        let fact = checked.info.func_index["fact"];
        let helper = checked.info.func_index["helper"];
        let main = checked.info.func_index["main"];
        assert!(cg.is_recursive(fact));
        assert!(!cg.is_recursive(helper));
        assert_eq!(cg.callees[helper], vec![fact]);
        assert_eq!(cg.callees[main], vec![helper]);
        assert!(cg.reachable_from(main).contains(&fact));
    }

    #[test]
    fn mutual_recursion_scc() {
        let (checked, cg) = cg_of(
            "int is_odd(int n);
             int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
             int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
             int main() { return is_even(10); }",
        );
        let even = checked.info.func_index["is_even"];
        let odd = checked.info.func_index["is_odd"];
        assert!(cg.is_recursive(even));
        assert!(cg.is_recursive(odd));
        assert_eq!(cg.sccs.comp_of[even], cg.sccs.comp_of[odd]);
    }

    #[test]
    fn function_pointers_resolve_by_signature() {
        let (checked, cg) = cg_of(
            "int add(int a, int b) { return a + b; }
             int mul(int a, int b) { return a * b; }
             float fdiv(float a, float b) { return a / b; }
             int apply(int (*op)(int, int)) { return op(1, 2); }
             int main() {
                 int (*f)(int, int);
                 f = add;
                 f = mul;
                 return apply(f);
             }",
        );
        let apply = checked.info.func_index["apply"];
        let add = checked.info.func_index["add"];
        let mul = checked.info.func_index["mul"];
        let fdiv = checked.info.func_index["fdiv"];
        assert!(cg.address_taken[add]);
        assert!(cg.address_taken[mul]);
        assert!(!cg.address_taken[fdiv]);
        assert!(cg.callees[apply].contains(&add));
        assert!(cg.callees[apply].contains(&mul));
        assert!(
            !cg.callees[apply].contains(&fdiv),
            "signature mismatch must exclude fdiv"
        );
    }

    #[test]
    fn plain_call_is_not_address_taken() {
        let (checked, cg) = cg_of(
            "int f(int x) { return x; }
             int main() { return f(3); }",
        );
        let f = checked.info.func_index["f"];
        assert!(!cg.address_taken[f]);
    }

    #[test]
    fn io_closure_propagates() {
        let (checked, cg) = cg_of(
            "int leaf(int x) { return x * 2; }
             void noisy(int x) { print(x); }
             void wrapper(int x) { noisy(x); }
             int main() { wrapper(leaf(2)); return 0; }",
        );
        let io = cg.io_closure();
        assert!(!io[checked.info.func_index["leaf"]]);
        assert!(io[checked.info.func_index["noisy"]]);
        assert!(io[checked.info.func_index["wrapper"]]);
        assert!(io[checked.info.func_index["main"]]);
    }
}
