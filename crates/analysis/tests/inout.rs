//! Integration tests for segment input/output determination — the
//! analyses behind the paper's worked examples (quan, fdct, UNEPIC's loop).

use analysis::inout::seg_io;
use analysis::segments::{self, Reject};
use analysis::{Analyses, SegKind, Segment};
use minic::ast::{OperandShape, ScalarKind};

fn setup(src: &str) -> (minic::Checked, Analyses, Vec<Segment>) {
    let checked = minic::compile(src).unwrap();
    let an = Analyses::build(&checked);
    let segs = segments::enumerate(&checked);
    (checked, an, segs)
}

fn seg_named<'s>(segs: &'s [Segment], name: &str) -> &'s Segment {
    segs.iter().find(|s| s.name == name).unwrap_or_else(|| {
        panic!(
            "segment {name} not found in {:?}",
            segs.iter().map(|s| &s.name).collect::<Vec<_>>()
        )
    })
}

const QUAN: &str = "
    int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
    int quan(int val) {
        int i;
        for (i = 0; i < 15; i++)
            if (val < power2[i])
                break;
        return i;
    }
    int main() { int s = 0; for (int v = 0; v < 100; v++) s += quan(v); return s; }";

#[test]
fn quan_has_one_input_and_the_return() {
    let (checked, an, segs) = setup(QUAN);
    let seg = seg_named(&segs, "quan:body");
    let io = seg_io(&checked, &an, seg).expect("quan is analyzable");
    assert_eq!(io.inputs.len(), 1, "power2 is invariant → only val remains");
    assert_eq!(io.inputs[0].name, "val");
    assert_eq!(io.inputs[0].shape, OperandShape::Scalar);
    assert_eq!(io.inputs[0].elem, ScalarKind::Int);
    assert!(io.outputs.is_empty(), "i is dead after the return");
    assert_eq!(io.ret, Some(ScalarKind::Int));
    assert_eq!(io.key_words, 1);
    assert_eq!(io.out_words, 1);
}

#[test]
fn mutated_table_becomes_an_input() {
    // Same quan, but main rewrites the table between calls: power2 must
    // join the key.
    let src = "
        int power2[15];
        int quan(int val) {
            int i;
            for (i = 0; i < 15; i++)
                if (val < power2[i])
                    break;
            return i;
        }
        int main() {
            int s = 0;
            for (int v = 0; v < 100; v++) {
                power2[v % 15] = v;
                s += quan(v);
            }
            return s;
        }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "quan:body");
    let io = seg_io(&checked, &an, seg).expect("analyzable");
    assert_eq!(io.inputs.len(), 2);
    let names: Vec<&str> = io.inputs.iter().map(|o| o.name.as_str()).collect();
    assert_eq!(names, vec!["power2", "val"], "sorted by name");
    assert_eq!(io.inputs[0].shape, OperandShape::Array(15));
    assert_eq!(io.key_words, 16);
}

#[test]
fn loop_body_segment_like_unepic() {
    // A loop body with one scalar input and one scalar output.
    let src = "
        int main() {
            int acc = 0;
            int v = 0;
            int out = 0;
            for (int i = 0; i < 100; i++) {
                v = i % 10;
                {
                    int t = v * v;
                    out = t * 3 + v;
                }
                acc += out;
            }
            return acc;
        }";
    let (checked, an, segs) = setup(src);
    // The inner bare block is not a segment kind; use the loop body: its
    // inputs include the loop index (varies every iteration) — the paper's
    // cost-benefit would kill it, but the interface must still compute.
    let seg = segs
        .iter()
        .find(|s| matches!(s.kind, SegKind::LoopBody(_)))
        .unwrap();
    let io = seg_io(&checked, &an, seg).expect("analyzable");
    let in_names: Vec<&str> = io.inputs.iter().map(|o| o.name.as_str()).collect();
    assert!(
        in_names.contains(&"i"),
        "loop index is upward-exposed: {in_names:?}"
    );
    let out_names: Vec<&str> = io.outputs.iter().map(|o| o.name.as_str()).collect();
    assert!(
        out_names.contains(&"acc"),
        "accumulator is live out: {out_names:?}"
    );
    assert!(
        out_names.contains(&"v") || !out_names.contains(&"t"),
        "t is scoped to the block"
    );
}

#[test]
fn pointer_param_becomes_block_operand_like_fdct() {
    // MPEG2's fdct shape: a function taking a pointer to a 64-entry block,
    // reading and writing it in place.
    let src = "
        int frame[64];
        void fdct(int *block) {
            for (int i = 0; i < 64; i++) {
                block[i] = block[i] * 2 + 1;
            }
        }
        int main() {
            for (int i = 0; i < 64; i++) frame[i] = i;
            fdct(frame);
            return frame[0];
        }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "fdct:body");
    let io = seg_io(&checked, &an, seg).expect("fdct analyzable");
    assert_eq!(io.inputs.len(), 1);
    assert_eq!(io.inputs[0].name, "block");
    assert_eq!(io.inputs[0].shape, OperandShape::Deref(64));
    assert_eq!(io.outputs.len(), 1);
    assert_eq!(io.outputs[0].name, "block");
    assert_eq!(io.outputs[0].shape, OperandShape::Deref(64));
    assert_eq!(io.ret, None);
    assert_eq!(io.key_words, 64);
    assert_eq!(io.out_words, 64);
}

#[test]
fn stepped_pointer_is_rejected() {
    // `*table++` breaks the base-address invariant; the original quan
    // (pre-specialization) must be rejected, pushing the pipeline toward
    // the specialized one-input version as in the paper.
    let src = "
        int power2[15];
        int quan(int val, int *table, int size) {
            int i;
            for (i = 0; i < size; i++)
                if (val < *table++)
                    break;
            return i;
        }
        int main() { return quan(5, power2, 15); }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "quan:body");
    let err = seg_io(&checked, &an, seg).unwrap_err();
    assert!(matches!(err, Reject::UnsupportedOperand(_)), "got {err:?}");
}

#[test]
fn indexed_pointer_param_is_fine() {
    // Same quan but with table[i] instead of *table++ — analyzable.
    let src = "
        int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
        int quan(int val, int *table, int size) {
            int i;
            for (i = 0; i < size; i++)
                if (val < table[i])
                    break;
            return i;
        }
        int main() { return quan(5, power2, 15); }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "quan:body");
    let io = seg_io(&checked, &an, seg).expect("analyzable");
    let names: Vec<&str> = io.inputs.iter().map(|o| o.name.as_str()).collect();
    // Three inputs: size, table (as contents), val.
    assert_eq!(names, vec!["size", "table", "val"]);
    let table = io.inputs.iter().find(|o| o.name == "table").unwrap();
    assert_eq!(table.shape, OperandShape::Deref(15));
    assert_eq!(io.key_words, 17);
}

#[test]
fn global_outputs_are_kept() {
    let src = "
        int result_a; int result_b;
        void compute(int x) {
            result_a = x * x;
            result_b = x + x;
        }
        int main() { compute(3); return result_a + result_b; }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "compute:body");
    let io = seg_io(&checked, &an, seg).expect("analyzable");
    let out_names: Vec<&str> = io.outputs.iter().map(|o| o.name.as_str()).collect();
    assert_eq!(out_names, vec!["result_a", "result_b"]);
    assert_eq!(io.ret, None);
    assert_eq!(io.out_words, 2);
}

#[test]
fn no_input_segment_rejected() {
    let src = "
        int g;
        void constant() { g = 42; }
        int main() { constant(); return g; }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "constant:body");
    assert_eq!(seg_io(&checked, &an, seg).unwrap_err(), Reject::NoInputs);
}

#[test]
fn no_output_segment_rejected() {
    // All computation is dead at exit.
    let src = "
        void pointless(int x) { int t = x * 2; t = t + 1; }
        int main() { pointless(3); return 0; }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "pointless:body");
    assert_eq!(seg_io(&checked, &an, seg).unwrap_err(), Reject::NoOutputs);
}

#[test]
fn float_operands_typed_correctly() {
    let src = "
        float gain;
        float amplify(float sample) {
            float y = sample * gain;
            return y * y;
        }
        int main() { gain = 2.0; return (int)amplify(1.5); }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "amplify:body");
    let io = seg_io(&checked, &an, seg).expect("analyzable");
    // gain is assigned in main before any amplify call → invariant.
    assert_eq!(io.inputs.len(), 1, "{:?}", io.inputs);
    assert_eq!(io.inputs[0].name, "sample");
    assert_eq!(io.inputs[0].elem, ScalarKind::Float);
    assert_eq!(io.ret, Some(ScalarKind::Float));
}

#[test]
fn rasta_like_one_input_many_outputs() {
    let src = "
        float band0; float band1; float band2;
        void fr4tr(int idx) {
            float base = 0.0;
            for (int i = 0; i < 50; i++) base += idx * i;
            band0 = base;
            band1 = base * 2.0;
            band2 = base * 3.0;
        }
        int main() { fr4tr(3); return (int)(band0 + band1 + band2); }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "fr4tr:body");
    let io = seg_io(&checked, &an, seg).expect("analyzable");
    assert_eq!(io.inputs.len(), 1);
    assert_eq!(io.outputs.len(), 3);
    assert_eq!(io.out_words, 3);
    assert!(io.outputs.iter().all(|o| o.elem == ScalarKind::Float));
}

#[test]
fn if_branch_segment_interface() {
    let src = "
        int cache;
        int main() {
            int s = 0;
            for (int i = 0; i < 50; i++) {
                int x = i % 4;
                if (x > 1) {
                    int heavy = 0;
                    for (int k = 0; k < 20; k++) heavy += x * k;
                    cache = heavy;
                    s += cache;
                } else {
                    s += 1;
                }
            }
            return s;
        }";
    let (checked, an, segs) = setup(src);
    let seg = segs
        .iter()
        .find(|s| matches!(s.kind, SegKind::IfBranch(_, true)))
        .unwrap();
    let io = seg_io(&checked, &an, seg).expect("then-branch analyzable");
    let in_names: Vec<&str> = io.inputs.iter().map(|o| o.name.as_str()).collect();
    assert!(in_names.contains(&"x"));
    assert!(in_names.contains(&"s"), "s += reads s: {in_names:?}");
    let out_names: Vec<&str> = io.outputs.iter().map(|o| o.name.as_str()).collect();
    assert!(out_names.contains(&"cache"));
    assert!(out_names.contains(&"s"));
}

#[test]
fn shadowed_global_input_rejected() {
    let src = "
        int v;
        int f(int x) {
            int s = v + x;   // reads the global...
            {
                int v = 9;   // ...but a local shadows the name elsewhere
                s += v;
            }
            return s;
        }
        int main() { v = 2; return f(1); }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "f:body");
    // `v` (the global, mutated nowhere after main's init... actually main
    // writes it before calling f, so it is invariant and excluded — force
    // the conflict by also making f read it non-invariantly: simpler, just
    // accept either outcome but never a silent wrong binding.
    match seg_io(&checked, &an, seg) {
        Ok(io) => {
            // If accepted, the global must not be among operands by name.
            assert!(io.inputs.iter().all(|o| o.name != "v"));
        }
        Err(e) => assert!(matches!(e, Reject::UnsupportedOperand(_)), "{e:?}"),
    }
}

#[test]
fn ambiguous_pointer_target_rejected() {
    let src = "
        int buf_a[8]; int buf_b[8];
        int sum(int *p) {
            int s = 0;
            for (int i = 0; i < 8; i++) s += p[i];
            return s;
        }
        int main() { return sum(buf_a) + sum(buf_b); }";
    let (checked, an, segs) = setup(src);
    let seg = seg_named(&segs, "sum:body");
    let err = seg_io(&checked, &an, seg).unwrap_err();
    // Steensgaard unifies both targets into one class — both appear as
    // pointees → ambiguous.
    assert!(matches!(err, Reject::UnsupportedOperand(_)), "{err:?}");
}
