//! UNEPIC image decompression: the `collapse_pyr` coefficient transform.
//!
//! Paper: UNEPIC's reused segment has "a single input variable and a
//! single output variable, both integers", a 65.1% input repetition rate,
//! and — at 22,902 distinct patterns — the kind of working set no 64-entry
//! hardware buffer can hold (Table 5's UNEPIC hit ratios stay ≈1%), while
//! the software table gives the paper's best speedup (2.30×).
//!
//! Our `collapse_pyr` dequantizes one pyramid coefficient through a
//! 48-tap integer filter whose taps are initialized at startup (invariant
//! for the segment). EPIC coefficient streams are Laplacian-quantized:
//! a heavily repeated small-value center plus an essentially unique tail —
//! exactly what the generator synthesizes.

use crate::inputs::{pyramid_coefficients, scaled};
use crate::{PaperData, Table3Row, Table4Row, Workload};

const SOURCE: &str = "
int qtab[48];
int image_sum = 0;

int collapse_pyr(int c) {
    int mag = c < 0 ? -c : c;
    int acc = 0;
    int phase = mag & 7;
    for (int t = 0; t < 48; t++) {
        int tap = qtab[t];
        acc = acc + ((mag + t) * tap >> 3) + ((phase * tap) >> 5);
        acc = acc & 16777215;
    }
    return c < 0 ? -(acc & 65535) : acc & 65535;
}

int main() {
    for (int t = 0; t < 48; t++) {
        qtab[t] = ((t * 2654435 + 12345) >> 7) & 255;
    }
    int t = 0;
    while (!eof()) {
        int c = input();
        t = t + 1;
        int post = 0;
        for (int k = 0; k < 4; k++) {
            post = post + ((c + t + k) * 5 >> 2);
        }
        image_sum = (image_sum + collapse_pyr(c) + (post & 255)) & 1048575;
    }
    print(image_sum);
    return 0;
}
";

/// Full-scale coefficient count (paper: 22,902 DIPs at 65.1% reuse
/// ⇒ ≈65.6k coefficients).
const COEFFICIENTS: usize = 65_600;

fn default_input(scale: f64) -> Vec<i64> {
    pyramid_coefficients(scaled(COEFFICIENTS, scale), 0xE91C_0001, 0.70)
}

fn alt_input(scale: f64) -> Vec<i64> {
    // baboon.tif stand-in: a much more textured image — bigger stream,
    // *higher* repetition of small coefficients (the paper's alt UNEPIC
    // speedup jumps to 4.25×).
    pyramid_coefficients(scaled(COEFFICIENTS * 3, scale), 0xE91C_0002, 0.90)
}

/// UNEPIC.
pub fn unepic() -> Workload {
    Workload {
        name: "UNEPIC",
        hot_functions: "main, collapse_pyr",
        source: SOURCE.to_string(),
        default_input,
        alt_input,
        alt_source: "EPIC web-site(baboon.tif)",
        paper: PaperData {
            speedup_o0: 2.30,
            speedup_o3: 2.28,
            table3: Some(Table3Row {
                c_us: 29.45,
                o_us: 0.61,
                dip: 22902,
                reuse_pct: 65.1,
                table_size: "512KB",
            }),
            table4: Some(Table4Row {
                analyzed: 69,
                profiled: 1,
                transformed: 1,
                code_lines: "0.9K",
            }),
            table5: Some([1.1, 1.1, 1.2, 1.4]),
            energy_saving: Some((55.8, 55.1)),
            alt_speedup: Some(4.25),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_runs() {
        let w = unepic();
        let out = vm::run(
            &vm::lower(&w.checked()),
            vm::RunConfig {
                input: (w.default_input)(0.01),
                ..vm::RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.output.len(), 1);
    }

    #[test]
    fn collapse_pyr_reuse_matches_paper_band() {
        let w = unepic();
        let program = minic::parse(&w.source).unwrap();
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: (w.default_input)(0.15),
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let cp = outcome
            .report
            .decisions
            .iter()
            .find(|d| d.name == "collapse_pyr:body")
            .expect("collapse_pyr profiled");
        assert!(
            (0.50..0.80).contains(&cp.reuse_rate),
            "paper band is 65.1%: {cp:?}"
        );
        assert_eq!(cp.key_words, 1, "qtab is invariant after init");
        assert!(cp.chosen);
    }

    #[test]
    fn qtab_initialization_is_invariant_for_the_segment() {
        // The init loop runs in main before any collapse_pyr call; the
        // invariance (code-coverage) analysis must keep qtab out of the
        // key — otherwise key_words would be 49.
        let w = unepic();
        let program = minic::parse(&w.source).unwrap();
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: (w.default_input)(0.05),
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let cp = outcome
            .report
            .decisions
            .iter()
            .find(|d| d.name == "collapse_pyr:body")
            .unwrap();
        assert_eq!(cp.key_words, 1);
    }

    #[test]
    fn alt_input_has_higher_reuse() {
        let w = unepic();
        let d = (w.default_input)(0.1);
        let a = (w.alt_input)(0.05);
        let distinct = |v: &[i64]| {
            let s: std::collections::HashSet<i64> = v.iter().copied().collect();
            1.0 - s.len() as f64 / v.len() as f64
        };
        assert!(
            distinct(&a) > distinct(&d) + 0.1,
            "baboon stand-in repeats more: {} vs {}",
            distinct(&a),
            distinct(&d)
        );
    }
}
