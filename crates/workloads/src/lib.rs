//! # workloads — the paper's benchmark programs, rebuilt for MiniC
//!
//! The paper evaluates on six Mediabench programs and GNU Go, run from
//! their default input files on an iPAQ. This crate rebuilds each
//! benchmark's *reuse-relevant* structure as a MiniC program — the hot
//! function the paper names (Table 4), its input/output interface
//! (Table 3), and the surrounding program shape — plus synthetic input
//! generators calibrated to the paper's reported value-repetition
//! statistics. See `DESIGN.md` §2 for the substitution argument.
//!
//! Each [`Workload`] carries the paper's published numbers ([`PaperData`])
//! so the benchmark harness can print measured-vs-paper tables.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod g721;
pub mod gnugo;
pub mod inputs;
pub mod mpeg2;
pub mod rasta;
pub mod rng;
pub mod unepic;

/// The paper's Table 3 row (factors affecting the decision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Granularity `C` in µs.
    pub c_us: f64,
    /// Overhead `O` in µs.
    pub o_us: f64,
    /// Distinct input patterns.
    pub dip: u64,
    /// Reuse rate in percent.
    pub reuse_pct: f64,
    /// Hash table size as printed in the paper.
    pub table_size: &'static str,
}

/// The paper's Table 4 row (segment counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// "Analyzed CS".
    pub analyzed: u32,
    /// "Profiled CS".
    pub profiled: u32,
    /// "Transformed CS".
    pub transformed: u32,
    /// "code size (lines)" as printed.
    pub code_lines: &'static str,
}

/// Published numbers for one benchmark, for measured-vs-paper reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperData {
    /// Table 6 speedup (O0).
    pub speedup_o0: f64,
    /// Table 7 speedup (O3).
    pub speedup_o3: f64,
    /// Table 3 row (absent for the `_s`/`_b` code variants).
    pub table3: Option<Table3Row>,
    /// Table 4 row.
    pub table4: Option<Table4Row>,
    /// Table 5 hit ratios (%) for 1/4/16/64-entry LRU buffers.
    pub table5: Option<[f64; 4]>,
    /// Tables 8/9 energy savings (%) under O0 and O3.
    pub energy_saving: Option<(f64, f64)>,
    /// Table 10 speedup on alternate inputs (O3).
    pub alt_speedup: Option<f64>,
}

/// One runnable benchmark.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Program name as the paper prints it (e.g. `G721_encode`).
    pub name: &'static str,
    /// The hot functions the paper names in Table 4.
    pub hot_functions: &'static str,
    /// MiniC source text.
    pub source: String,
    /// Default-input generator; the argument scales the input length
    /// (1.0 = full size).
    pub default_input: fn(f64) -> Vec<i64>,
    /// Alternate-input generator (the paper's Table 10 inputs).
    pub alt_input: fn(f64) -> Vec<i64>,
    /// Label for the alternate input's provenance (Table 10 column 2).
    pub alt_source: &'static str,
    /// Published numbers.
    pub paper: PaperData,
}

impl Workload {
    /// Source length in lines (our analogue of Table 4's last column).
    pub fn code_lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Parses and checks the workload's source.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source fails the front end (a bug in this
    /// crate, covered by tests).
    pub fn checked(&self) -> minic::Checked {
        minic::compile(&self.source)
            .unwrap_or_else(|e| panic!("workload {} does not compile: {e}", self.name))
    }
}

/// The seven main programs, in the paper's table order.
pub fn main_seven() -> Vec<Workload> {
    vec![
        g721::encode(),
        g721::decode(),
        mpeg2::encode(),
        mpeg2::decode(),
        rasta::rasta(),
        unepic::unepic(),
        gnugo::gnugo(),
    ]
}

/// All eleven rows of Tables 6/7: the seven programs plus the `_s`
/// (shift) and `_b` (binary search) G721 code variants.
pub fn all_eleven() -> Vec<Workload> {
    vec![
        g721::encode(),
        g721::encode_s(),
        g721::encode_b(),
        g721::decode(),
        g721::decode_s(),
        g721::decode_b(),
        mpeg2::encode(),
        mpeg2::decode(),
        rasta::rasta(),
        unepic::unepic(),
        gnugo::gnugo(),
    ]
}

/// Looks a workload up by its paper name.
pub fn by_name(name: &str) -> Option<Workload> {
    all_eleven().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(main_seven().len(), 7);
        assert_eq!(all_eleven().len(), 11);
        assert!(by_name("G721_encode").is_some());
        assert!(by_name("GNUGO").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_sources_compile() {
        for w in all_eleven() {
            let checked = w.checked();
            assert!(
                checked.info.func_index.contains_key("main"),
                "{} has a main",
                w.name
            );
            assert!(w.code_lines() > 20, "{} suspiciously small", w.name);
        }
    }

    #[test]
    fn generators_produce_input() {
        for w in all_eleven() {
            let d = (w.default_input)(0.01);
            let a = (w.alt_input)(0.01);
            assert!(!d.is_empty(), "{} default input empty", w.name);
            assert!(!a.is_empty(), "{} alt input empty", w.name);
            assert_ne!(d, a, "{} alt input must differ", w.name);
        }
    }
}
