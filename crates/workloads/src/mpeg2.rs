//! MPEG2 encode (`fdct`) and decode (`Reference_IDCT`).
//!
//! The paper's reuse segments are the 8×8 block transforms: `fdct` in the
//! encoder and the double-precision `Reference_IDCT` in the decoder, both
//! with "input and output of a 64-entry block" — the large-key case of
//! Table 3 (high hashing overhead, but granularity is larger still). The
//! decoder's quantized coefficient blocks repeat at 48.6%; the encoder's
//! pixel blocks mostly don't (9.8%), which is why MPEG2_encode is the
//! paper's weakest speedup.
//!
//! Both kernels here are real separable 8×8 transforms; the surrounding
//! codec (motion estimation, VLC) is reduced to the block loop that feeds
//! the reuse segment, per DESIGN.md §9.

use crate::inputs::{coefficient_blocks, scaled, video_blocks};
use crate::{PaperData, Table3Row, Table4Row, Workload};
use std::fmt::Write as _;

/// Scaled integer DCT basis: `round(cos((2k+1)·j·π/16) · 2^11 · c(j))`.
fn dct_table_literal() -> String {
    let mut rows = Vec::new();
    for j in 0..8 {
        for k in 0..8 {
            let c = if j == 0 { (0.5f64).sqrt() } else { 1.0 };
            let v =
                (c * ((2 * k + 1) as f64 * j as f64 * std::f64::consts::PI / 16.0).cos() * 2048.0)
                    .round() as i64;
            rows.push(v.to_string());
        }
    }
    rows.join(", ")
}

/// Float IDCT basis (transposed DCT), printed as float literals.
fn idct_table_literal() -> String {
    let mut rows = Vec::new();
    for k in 0..8 {
        for j in 0..8 {
            let c = if j == 0 { (0.5f64).sqrt() } else { 1.0 };
            let v = c * ((2 * k + 1) as f64 * j as f64 * std::f64::consts::PI / 16.0).cos() * 0.5;
            rows.push(format!("{v:.9}"));
        }
    }
    rows.join(", ")
}

fn encode_source() -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "
int dctcoef[64] = {{{table}}};

int block[64];
int checksum = 0;

void fdct(int *blk) {{
    int tmp[64];
    for (int i = 0; i < 8; i++) {{
        for (int j = 0; j < 8; j++) {{
            int acc = 0;
            for (int k = 0; k < 8; k++) {{
                acc = acc + blk[i * 8 + k] * dctcoef[j * 8 + k];
            }}
            tmp[i * 8 + j] = acc >> 8;
        }}
    }}
    for (int j = 0; j < 8; j++) {{
        for (int i = 0; i < 8; i++) {{
            int acc = 0;
            for (int k = 0; k < 8; k++) {{
                acc = acc + tmp[k * 8 + j] * dctcoef[i * 8 + k];
            }}
            blk[i * 8 + j] = acc >> 14;
        }}
    }}
}}

int main() {{
    while (!eof()) {{
        for (int k = 0; k < 64; k++) {{
            block[k] = input();
        }}
        fdct(block);
        int s = 0;
        for (int k = 0; k < 64; k++) {{
            s = s + block[k];
        }}
        checksum = (checksum + (s & 65535)) & 1048575;
    }}
    print(checksum);
    return 0;
}}
",
        table = dct_table_literal()
    );
    s
}

fn decode_source() -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "
float idctcoef[64] = {{{table}}};

int block[64];
int checksum = 0;

void ref_idct(int *blk) {{
    float tmp[64];
    for (int i = 0; i < 8; i++) {{
        for (int j = 0; j < 8; j++) {{
            float acc = 0.0;
            for (int k = 0; k < 8; k++) {{
                acc = acc + (float)blk[i * 8 + k] * idctcoef[j * 8 + k];
            }}
            tmp[i * 8 + j] = acc;
        }}
    }}
    for (int j = 0; j < 8; j++) {{
        for (int i = 0; i < 8; i++) {{
            float acc = 0.0;
            for (int k = 0; k < 8; k++) {{
                acc = acc + tmp[k * 8 + j] * idctcoef[i * 8 + k];
            }}
            int v = (int)acc;
            if (v > 255)
                v = 255;
            if (v < -256)
                v = -256;
            blk[i * 8 + j] = v;
        }}
    }}
}}

int main() {{
    while (!eof()) {{
        for (int k = 0; k < 64; k++) {{
            block[k] = input();
        }}
        ref_idct(block);
        int s = 0;
        for (int k = 0; k < 64; k++) {{
            s = s + block[k];
        }}
        checksum = (checksum + (s & 65535)) & 1048575;
    }}
    print(checksum);
    return 0;
}}
",
        table = idct_table_literal()
    );
    s
}

/// Full-scale block counts (paper: 7617 DIP at 9.8% reuse ≈ 8.4k encode
/// blocks; 4068 DIP at 48.6% ≈ 7.9k decode blocks).
const ENCODE_BLOCKS: usize = 8400;
const DECODE_BLOCKS: usize = 7900;

fn encode_default(scale: f64) -> Vec<i64> {
    video_blocks(scaled(ENCODE_BLOCKS, scale), 0x0003_3301, 0.10, 14)
}

fn encode_alt(scale: f64) -> Vec<i64> {
    // Tektronix table-tennis stand-in: static table surface → more
    // repeated background blocks (the paper's alt speedup 1.19 > 1.07).
    video_blocks(scaled(ENCODE_BLOCKS, scale), 0x0003_3302, 0.28, 10)
}

fn decode_default(scale: f64) -> Vec<i64> {
    coefficient_blocks(scaled(DECODE_BLOCKS, scale), 0x0004_4401, 0.58)
}

fn decode_alt(scale: f64) -> Vec<i64> {
    // Table-tennis clip: more motion → fewer repeated coefficient blocks
    // (paper alt speedup 1.48 < 1.82).
    coefficient_blocks(scaled(DECODE_BLOCKS, scale), 0x0004_4402, 0.33)
}

/// MPEG2_encode.
pub fn encode() -> Workload {
    Workload {
        name: "MPEG2_encode",
        hot_functions: "fdct",
        source: encode_source(),
        default_input: encode_default,
        alt_input: encode_alt,
        alt_source: "Tektronix(table tennis)",
        paper: PaperData {
            speedup_o0: 1.07,
            speedup_o3: 1.06,
            table3: Some(Table3Row {
                c_us: 13859.0,
                o_us: 49.4,
                dip: 7617,
                reuse_pct: 9.8,
                table_size: "1.98MB",
            }),
            table4: Some(Table4Row {
                analyzed: 10,
                profiled: 7,
                transformed: 1,
                code_lines: "7.6K",
            }),
            table5: Some([3.1, 5.1, 5.2, 5.4]),
            energy_saving: Some((6.3, 5.9)),
            alt_speedup: Some(1.19),
        },
    }
}

/// MPEG2_decode.
pub fn decode() -> Workload {
    Workload {
        name: "MPEG2_decode",
        hot_functions: "Reference_IDCT",
        source: decode_source(),
        default_input: decode_default,
        alt_input: decode_alt,
        alt_source: "Tektronix(table tennis)",
        paper: PaperData {
            speedup_o0: 1.82,
            speedup_o3: 1.80,
            table3: Some(Table3Row {
                c_us: 12029.0,
                o_us: 52.7,
                dip: 4068,
                reuse_pct: 48.6,
                table_size: "1.98MB",
            }),
            table4: Some(Table4Row {
                analyzed: 11,
                profiled: 5,
                transformed: 1,
                code_lines: "8.2K",
            }),
            table5: Some([33.5, 44.7, 44.7, 44.7]),
            energy_saving: Some((45.0, 44.3)),
            alt_speedup: Some(1.48),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compile_and_run() {
        for w in [encode(), decode()] {
            let checked = w.checked();
            let out = vm::run(
                &vm::lower(&checked),
                vm::RunConfig {
                    input: (w.default_input)(0.01),
                    ..vm::RunConfig::default()
                },
            )
            .unwrap_or_else(|t| panic!("{} trapped: {t}", w.name));
            assert_eq!(out.output.len(), 1);
        }
    }

    #[test]
    fn fdct_concentrates_energy_in_dc() {
        // A flat block transforms to a large DC coefficient and small ACs —
        // sanity of the DCT basis.
        let src = encode_source().replace(
            "int main() {",
            "int probe() {
                for (int k = 0; k < 64; k++) block[k] = 100;
                fdct(block);
                print(block[0]);
                int acsum = 0;
                for (int k = 1; k < 64; k++) acsum += block[k] < 0 ? -block[k] : block[k];
                print(acsum);
                return 0;
            }
            int main() { if (1) { return probe(); }",
        );
        let out = vm::compile_and_run(&src, vm::RunConfig::default()).unwrap();
        let vals: Vec<i64> = out
            .output_text()
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert!(vals[0] > 300, "DC dominates: {vals:?}");
        assert!(vals[1] < vals[0] / 4, "ACs nearly vanish: {vals:?}");
    }

    #[test]
    fn idct_of_dc_block_is_flat() {
        let src = decode_source().replace(
            "int main() {",
            "int probe() {
                for (int k = 0; k < 64; k++) block[k] = 0;
                block[0] = 128;
                ref_idct(block);
                print(block[0]);
                int spread = 0;
                for (int k = 1; k < 64; k++) {
                    int d = block[k] - block[0];
                    spread += d < 0 ? -d : d;
                }
                print(spread);
                return 0;
            }
            int main() { if (1) { return probe(); }",
        );
        let out = vm::compile_and_run(&src, vm::RunConfig::default()).unwrap();
        let vals: Vec<i64> = out
            .output_text()
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert!(vals[0] > 10, "DC-only block yields uniform level: {vals:?}");
        assert!(vals[1] <= 64, "pixels are (nearly) equal: {vals:?}");
    }

    #[test]
    fn decode_pipeline_memoizes_idct_with_block_key() {
        let w = decode();
        let program = minic::parse(&w.source).unwrap();
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: (w.default_input)(0.03),
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let idct = outcome
            .report
            .decisions
            .iter()
            .find(|d| d.name == "ref_idct:body")
            .expect("idct profiled");
        assert_eq!(idct.key_words, 64, "64-entry block key");
        assert_eq!(idct.out_words, 64);
        assert!(idct.reuse_rate > 0.30, "{idct:?}");
        assert!(idct.chosen, "{idct:?}");
    }

    #[test]
    fn encode_reuse_rate_is_low_like_the_paper() {
        let w = encode();
        let program = minic::parse(&w.source).unwrap();
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: (w.default_input)(0.05),
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let fdct = outcome
            .report
            .decisions
            .iter()
            .find(|d| d.name == "fdct:body")
            .expect("fdct profiled");
        assert!(
            fdct.reuse_rate < 0.30,
            "textured blocks barely repeat: {fdct:?}"
        );
    }
}
