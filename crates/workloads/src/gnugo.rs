//! GNU Go: the eight `accumulate_influence` segments and merged tables.
//!
//! Paper: "The function accumulate_influence contains eight code segments,
//! each with four input variables and one output variable. Based on
//! profiling, the input values fall in the range \[0,19\]." All eight share
//! the same input set, so §2.5 merges their hash tables — without merging
//! the transformed program ran the iPAQ out of memory; with it, GNU Go
//! speeds up >20%.
//!
//! Our `accumulate_influence(pos)` derives four small features from the
//! board (coordinates, distance-to-stone bucket, local density bucket) and
//! feeds them to eight influence kernels with identical signatures. The
//! board mutates every move, so the enclosing function bodies see
//! ever-fresh inputs and lose to the eight inner segments — the nesting
//! and merging machinery both fire on this workload.

use crate::inputs::{go_moves, scaled};
use crate::{PaperData, Table3Row, Table4Row, Workload};
use std::fmt::Write as _;

fn influence_kernel(i: usize) -> String {
    // Eight kernels with the same signature and interface but different
    // mixing constants, so their outputs (and tables-slots) differ.
    let m1 = 3 + i * 2;
    let m2 = 5 + i;
    let m3 = 7 + (i * 3) % 11;
    format!(
        "
int influence{i}(int a, int b, int c, int d) {{
    int acc = {seed};
    for (int k = 0; k < 20; k++) {{
        acc = acc + (a * {m1} + k) * (b + {m2}) + ((c << (k & 3)) ^ (d * {m3}));
        acc = acc & 1048575;
    }}
    return acc;
}}
",
        i = i,
        seed = 11 + i,
        m1 = m1,
        m2 = m2,
        m3 = m3
    )
}

fn source() -> String {
    let mut s = String::new();
    s.push_str(
        "
int board[361];
int infl[361];
int total = 0;

int dist_bucket(int pos) {
    int x = pos / 19;
    int y = pos % 19;
    int best = 19;
    for (int p = 0; p < 361; p++) {
        if (board[p] != 0) {
            int px = p / 19;
            int py = p % 19;
            int dx = px > x ? px - x : x - px;
            int dy = py > y ? py - y : y - py;
            int d = dx + dy;
            if (d < best)
                best = d;
        }
    }
    return best > 19 ? 19 : best;
}

int density_bucket(int pos) {
    int x = pos / 19;
    int y = pos % 19;
    int count = 0;
    for (int dx = -2; dx <= 2; dx++) {
        for (int dy = -2; dy <= 2; dy++) {
            int px = x + dx;
            int py = y + dy;
            if (px >= 0 && px < 19 && py >= 0 && py < 19) {
                if (board[px * 19 + py] != 0)
                    count++;
            }
        }
    }
    return count > 19 ? 19 : count;
}
",
    );
    for i in 0..8 {
        s.push_str(&influence_kernel(i));
    }
    s.push_str(
        "
void accumulate_influence(int pos) {
    int a = pos / 19;
    int b = pos % 19;
    int c = dist_bucket(pos);
    int d = density_bucket(pos);
    int v = 0;
    v = v + influence0(a, b, c, d);
    v = v + influence1(a, b, c, d);
    v = v + influence2(a, b, c, d);
    v = v + influence3(a, b, c, d);
    v = v + influence4(a, b, c, d);
    v = v + influence5(a, b, c, d);
    v = v + influence6(a, b, c, d);
    v = v + influence7(a, b, c, d);
    infl[pos] = v & 1048575;
}

int main() {
    while (!eof()) {
        int mv = input() % 361;
        if (mv < 0)
            mv = -mv;
        board[mv] = (board[mv] + 1) % 3;
        for (int p = 0; p < 361; p++) {
            accumulate_influence(p);
        }
        total = (total + infl[mv]) & 1048575;
    }
    print(total);
    return 0;
}
",
    );
    let mut out = String::new();
    let _ = write!(out, "{s}");
    out
}

/// Full-scale move count: 56 moves × 361 points ≈ 20k executions per
/// influence kernel (the paper's "-b 6" run reaches 2.57M total; we scale
/// the board sweep down for the tree-walking interpreter and report
/// measured statistics in EXPERIMENTS.md).
const MOVES: usize = 56;

fn default_input(scale: f64) -> Vec<i64> {
    go_moves(scaled(MOVES, scale), 0x6060_0001)
}

fn alt_input(scale: f64) -> Vec<i64> {
    // The paper's Table 10 row changes "-b 6" to "-b 9": a half-longer
    // game.
    go_moves(scaled(MOVES * 3 / 2, scale), 0x6060_0002)
}

/// GNUGO.
pub fn gnugo() -> Workload {
    Workload {
        name: "GNUGO",
        hot_functions: "accumulate_influence",
        source: source(),
        default_input,
        alt_input,
        alt_source: "\"-b 9 -r 2\"",
        paper: PaperData {
            speedup_o0: 1.31,
            speedup_o3: 1.20,
            table3: Some(Table3Row {
                c_us: 26.3,
                o_us: 2.14,
                dip: 46283,
                reuse_pct: 98.2,
                table_size: "4.47MB",
            }),
            table4: Some(Table4Row {
                analyzed: 106,
                profiled: 16,
                transformed: 8,
                code_lines: "40K",
            }),
            table5: Some([0.0, 0.01, 0.06, 0.3]),
            energy_saving: Some((23.2, 16.7)),
            alt_speedup: Some(1.20),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_runs() {
        let w = gnugo();
        let out = vm::run(
            &vm::lower(&w.checked()),
            vm::RunConfig {
                input: (w.default_input)(0.06),
                ..vm::RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.output.len(), 1);
    }

    #[test]
    fn eight_segments_merge_into_one_table() {
        let w = gnugo();
        let program = minic::parse(&w.source).unwrap();
        // This test reproduces the paper's §2.5/Table 2 structure, so it
        // plans the published exact-match scheme; §8g key reduction (on
        // by default) additionally merges the dep-keyed bucket segments
        // into a second table, which is covered by the serve A/B suite.
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: (w.default_input)(0.15),
                enable_validation: false,
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let influence_chosen: Vec<_> = outcome
            .report
            .decisions
            .iter()
            .filter(|d| d.name.starts_with("influence") && d.chosen)
            .collect();
        assert_eq!(
            influence_chosen.len(),
            8,
            "all eight kernels transformed: {:?}",
            outcome.report.decisions
        );
        assert_eq!(outcome.report.merged_tables, 1);
        // One merged spec hosting eight output groups.
        let merged = outcome
            .specs
            .iter()
            .find(|s| s.out_words.len() == 8)
            .expect("merged spec");
        assert_eq!(merged.key_words, 4);
        // All four inputs are small ints named a,b,c,d. At 15% scale the
        // reuse rate is already well above half; it approaches the paper's
        // 98.2% as the game grows.
        for d in &influence_chosen {
            assert_eq!(d.key_words, 4);
            assert!(d.reuse_rate > 0.6, "{d:?}");
        }
    }

    #[test]
    fn merged_run_preserves_semantics_and_wins() {
        let w = gnugo();
        let program = minic::parse(&w.source).unwrap();
        let input = (w.default_input)(0.12);
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: input.clone(),
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            vm::RunConfig {
                input: input.clone(),
                ..vm::RunConfig::default()
            },
        )
        .unwrap();
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            vm::RunConfig {
                input,
                tables: outcome.make_tables(),
                ..vm::RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(base.output_text(), memo.output_text());
        assert!(
            memo.cycles < base.cycles,
            "merged reuse wins: {} vs {}",
            memo.cycles,
            base.cycles
        );
    }

    #[test]
    fn merging_saves_memory_vs_unmerged() {
        let w = gnugo();
        let program = minic::parse(&w.source).unwrap();
        let input = (w.default_input)(0.1);
        let merged = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: input.clone(),
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let unmerged = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: input,
                enable_merging: false,
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        assert!(
            merged.report.total_table_bytes < unmerged.report.total_table_bytes,
            "merging is the paper's memory fix: {} vs {}",
            merged.report.total_table_bytes,
            unmerged.report.total_table_bytes
        );
    }
}
