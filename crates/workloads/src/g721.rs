//! G721 voice compression (encode/decode) and the paper's two code
//! variants of `quan`.
//!
//! The reuse-relevant structure follows Mediabench's `g721`: a hot
//! `quan(val, table, size)` linear search over the `power2` table (paper
//! Fig. 4), called from the sample loop and from the `fmult`-based step
//! adaptation. All call sites pass `(…, power2, 15)`, so the pipeline's
//! §2.4 specialization shrinks it to the one-input `quan` of Fig. 2(a) —
//! exactly the paper's G721 story.
//!
//! The `_s` variant replaces the table with shift operations (paper
//! Fig. 10) and the `_b` variant uses a fully unrolled binary search
//! (Fig. 9); both keep the same driver so Tables 6/7's variant rows can be
//! reproduced.

use crate::inputs::{adpcm_codes, scaled, speech_pcm};
use crate::{PaperData, Table3Row, Table4Row, Workload};

/// Which `quan` implementation the source uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuanVariant {
    /// Linear search over `power2` (the Mediabench original).
    Linear,
    /// Shift operations instead of the table (paper Fig. 10).
    Shift,
    /// Fully unrolled binary search (paper Fig. 9).
    Binary,
}

fn quan_def(variant: QuanVariant) -> &'static str {
    match variant {
        QuanVariant::Linear => {
            "
int quan(int val, int *table, int size) {
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}
"
        }
        QuanVariant::Shift => {
            "
int quan(int val, int *table, int size) {
    int i;
    int j;
    j = 1;
    for (i = 0; i < 15; i++) {
        if (val < j)
            break;
        j = j << 1;
    }
    return (i);
}
"
        }
        QuanVariant::Binary => {
            "
int quan(int val, int *table, int size) {
    int i;
    if (val < power2[7]) {
        if (val < power2[3]) {
            if (val < power2[1])
                i = val < power2[0] ? 0 : 1;
            else
                i = val < power2[2] ? 2 : 3;
        } else {
            if (val < power2[5])
                i = val < power2[4] ? 4 : 5;
            else
                i = val < power2[6] ? 6 : 7;
        }
    } else {
        if (val < power2[11]) {
            if (val < power2[9])
                i = val < power2[8] ? 8 : 9;
            else
                i = val < power2[10] ? 10 : 11;
        } else {
            if (val < power2[13])
                i = val < power2[12] ? 12 : 13;
            else
                i = val < power2[14] ? 14 : 15;
        }
    }
    return (i);
}
"
        }
    }
}

/// Shared state, `fmult`, and step adaptation (simplified from g721.c but
/// structurally faithful: `fmult` calls `quan` to find the exponent).
const COMMON: &str = "
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

int pred_s = 0;
int step_y = 544;
int checksum = 0;

int fmult(int an, int srn) {
    int anmag;
    int anexp;
    int anmant;
    int wanexp;
    int retval;
    anmag = an > 0 ? an : (-an) & 8191;
    anexp = quan(anmag, power2, 15) - 6;
    anmant = anmag == 0 ? 32 : (anexp >= 0 ? anmag >> anexp : anmag << (-anexp));
    wanexp = anexp + ((srn >> 6) & 15) - 13;
    retval = (anmant * (srn & 63)) >> 3;
    if (wanexp >= 0) {
        retval = (retval << (wanexp & 15)) & 32767;
    } else {
        retval = retval >> ((-wanexp) & 15);
    }
    return (an ^ srn) < 0 ? -retval : retval;
}

void update(int code) {
    int yup;
    int ylow;
    yup = fmult(((step_y >> 2) + code * 37) & 2047, step_y >> 5);
    ylow = fmult(((step_y >> 3) + code * 11) & 1023, step_y >> 7);
    step_y = step_y + ((yup - ylow) >> 6) + (code & 7) * ((code >> 3) * 2 - 1) * 9;
    if (step_y < 544)
        step_y = 544;
    if (step_y > 17408)
        step_y = 17408;
}
";

const ENCODE_MAIN: &str = "
int tick = 0;

int postfilter(int sl, int t) {
    int acc = sl;
    for (int k = 0; k < 26; k++) {
        acc = acc + ((sl + t + k) * (k + 3) >> 4);
        acc = acc & 65535;
    }
    return acc;
}

int encode_sample(int sl) {
    int d;
    int dmag;
    int code;
    int dq;
    d = sl - pred_s;
    dmag = d < 0 ? -d : d;
    code = quan(dmag >> 1, power2, 15);
    dq = (step_y >> 4) * code;
    if (d < 0) {
        pred_s = pred_s - (dq >> 3);
    } else {
        pred_s = pred_s + (dq >> 3);
    }
    if (pred_s > 16384)
        pred_s = 16384;
    if (pred_s < -16384)
        pred_s = -16384;
    update(code);
    return code;
}

int main() {
    while (!eof()) {
        int sl = input();
        tick = tick + 1;
        checksum = (checksum + encode_sample(sl) + postfilter(sl, tick)) & 1048575;
    }
    print(checksum);
    print(pred_s);
    print(step_y);
    return 0;
}
";

const DECODE_MAIN: &str = "
int tick = 0;

int postfilter(int sl, int t) {
    int acc = sl;
    for (int k = 0; k < 12; k++) {
        acc = acc + ((sl + t + k) * (k + 3) >> 4);
        acc = acc & 65535;
    }
    return acc;
}

int decode_sample(int code) {
    int dq;
    int mag;
    dq = (step_y >> 4) * (code & 7) + ((pred_s >> 3) & 255) + (step_y >> 5);
    mag = quan(dq >> 2, power2, 15);
    if (code > 7) {
        pred_s = pred_s - (dq >> 3);
    } else {
        pred_s = pred_s + (dq >> 3);
    }
    if (pred_s > 16384)
        pred_s = 16384;
    if (pred_s < -16384)
        pred_s = -16384;
    update(code ^ (mag & 1));
    return pred_s;
}

int main() {
    while (!eof()) {
        int code = input() & 15;
        int sl = decode_sample(code);
        tick = tick + 1;
        checksum = (checksum + (sl & 4095) + postfilter(sl, tick)) & 1048575;
    }
    print(checksum);
    print(pred_s);
    print(step_y);
    return 0;
}
";

fn source(variant: QuanVariant, encode: bool) -> String {
    // `quan` first so the binary variant's direct power2 references sit
    // after the global — order doesn't matter to sema, but keep the
    // paper's reading order: globals, quan, fmult/update, driver.
    let mut s = String::new();
    s.push_str(COMMON);
    s.push_str(quan_def(variant));
    s.push_str(if encode { ENCODE_MAIN } else { DECODE_MAIN });
    s
}

/// Full-scale default sample counts (scaled down from Mediabench's
/// clinton.pcm so a tree-walking interpreter finishes in seconds; the
/// encode:decode call ratio follows the paper's 1.6M : 2.9M).
const ENCODE_SAMPLES: usize = 220_000;
const DECODE_SAMPLES: usize = 390_000;

fn encode_default(scale: f64) -> Vec<i64> {
    speech_pcm(scaled(ENCODE_SAMPLES, scale), 0xC117_0001, 0.061, 9200.0)
}

fn encode_alt(scale: f64) -> Vec<i64> {
    // MiBench's small.pcm stand-in: different speaker pitch and level.
    speech_pcm(
        scaled(ENCODE_SAMPLES * 2, scale),
        0x5A11_0077,
        0.043,
        6400.0,
    )
}

fn decode_default(scale: f64) -> Vec<i64> {
    adpcm_codes(scaled(DECODE_SAMPLES, scale), 0xC117_0002, 3.2)
}

fn decode_alt(scale: f64) -> Vec<i64> {
    adpcm_codes(scaled(DECODE_SAMPLES, scale), 0x5A11_0078, 2.2)
}

fn encode_paper(variant: QuanVariant) -> PaperData {
    match variant {
        QuanVariant::Linear => PaperData {
            speedup_o0: 1.56,
            speedup_o3: 1.31,
            table3: Some(Table3Row {
                c_us: 1.28,
                o_us: 0.12,
                dip: 9155,
                reuse_pct: 99.4,
                table_size: "86KB",
            }),
            table4: Some(Table4Row {
                analyzed: 81,
                profiled: 4,
                transformed: 2,
                code_lines: "1.3K",
            }),
            table5: Some([0.1, 0.8, 3.1, 12.2]),
            energy_saving: Some((35.6, 22.4)),
            alt_speedup: Some(1.35),
        },
        QuanVariant::Shift => PaperData {
            speedup_o0: 1.48,
            speedup_o3: 1.21,
            table3: None,
            table4: None,
            table5: None,
            energy_saving: None,
            alt_speedup: None,
        },
        QuanVariant::Binary => PaperData {
            speedup_o0: 1.11,
            speedup_o3: 1.08,
            table3: None,
            table4: None,
            table5: None,
            energy_saving: None,
            alt_speedup: None,
        },
    }
}

fn decode_paper(variant: QuanVariant) -> PaperData {
    match variant {
        QuanVariant::Linear => PaperData {
            speedup_o0: 1.60,
            speedup_o3: 1.34,
            table3: Some(Table3Row {
                c_us: 1.38,
                o_us: 0.15,
                dip: 8884,
                reuse_pct: 99.7,
                table_size: "86KB",
            }),
            table4: Some(Table4Row {
                analyzed: 84,
                profiled: 7,
                transformed: 2,
                code_lines: "1.2K",
            }),
            table5: Some([0.04, 0.5, 2.3, 9.9]),
            energy_saving: Some((37.2, 23.3)),
            alt_speedup: Some(1.36),
        },
        QuanVariant::Shift => PaperData {
            speedup_o0: 1.50,
            speedup_o3: 1.25,
            table3: None,
            table4: None,
            table5: None,
            energy_saving: None,
            alt_speedup: None,
        },
        QuanVariant::Binary => PaperData {
            speedup_o0: 1.13,
            speedup_o3: 1.10,
            table3: None,
            table4: None,
            table5: None,
            energy_saving: None,
            alt_speedup: None,
        },
    }
}

/// G721_encode (linear-search quan).
pub fn encode() -> Workload {
    Workload {
        name: "G721_encode",
        hot_functions: "quan, fmult, update",
        source: source(QuanVariant::Linear, true),
        default_input: encode_default,
        alt_input: encode_alt,
        alt_source: "MiBench",
        paper: encode_paper(QuanVariant::Linear),
    }
}

/// G721_encode_s: shift-based quan (paper Fig. 10).
pub fn encode_s() -> Workload {
    Workload {
        name: "G721_encode_s",
        hot_functions: "quan, fmult, update",
        source: source(QuanVariant::Shift, true),
        default_input: encode_default,
        alt_input: encode_alt,
        alt_source: "MiBench",
        paper: encode_paper(QuanVariant::Shift),
    }
}

/// G721_encode_b: binary-search quan (paper Fig. 9).
pub fn encode_b() -> Workload {
    Workload {
        name: "G721_encode_b",
        hot_functions: "quan, fmult, update",
        source: source(QuanVariant::Binary, true),
        default_input: encode_default,
        alt_input: encode_alt,
        alt_source: "MiBench",
        paper: encode_paper(QuanVariant::Binary),
    }
}

/// G721_decode (linear-search quan).
pub fn decode() -> Workload {
    Workload {
        name: "G721_decode",
        hot_functions: "quan, fmult, update",
        source: source(QuanVariant::Linear, false),
        default_input: decode_default,
        alt_input: decode_alt,
        alt_source: "MiBench",
        paper: decode_paper(QuanVariant::Linear),
    }
}

/// G721_decode_s: shift-based quan.
pub fn decode_s() -> Workload {
    Workload {
        name: "G721_decode_s",
        hot_functions: "quan, fmult, update",
        source: source(QuanVariant::Shift, false),
        default_input: decode_default,
        alt_input: decode_alt,
        alt_source: "MiBench",
        paper: decode_paper(QuanVariant::Shift),
    }
}

/// G721_decode_b: binary-search quan.
pub fn decode_b() -> Workload {
    Workload {
        name: "G721_decode_b",
        hot_functions: "quan, fmult, update",
        source: source(QuanVariant::Binary, false),
        default_input: decode_default,
        alt_input: decode_alt,
        alt_source: "MiBench",
        paper: decode_paper(QuanVariant::Binary),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_compile_and_run() {
        for w in [
            encode(),
            encode_s(),
            encode_b(),
            decode(),
            decode_s(),
            decode_b(),
        ] {
            let checked = w.checked();
            let module = vm::lower(&checked);
            let out = vm::run(
                &module,
                vm::RunConfig {
                    input: (w.default_input)(0.002),
                    ..vm::RunConfig::default()
                },
            )
            .unwrap_or_else(|t| panic!("{} trapped: {t}", w.name));
            assert_eq!(out.output.len(), 3, "{} prints checksum/pred/step", w.name);
        }
    }

    #[test]
    fn variants_agree_on_quantization_semantics() {
        // quan / quan_s / quan_b must produce identical codes, so the
        // three encode variants print identical checksums.
        let input = (encode().default_input)(0.005);
        let mut outputs = Vec::new();
        for w in [encode(), encode_s(), encode_b()] {
            let out = vm::run(
                &vm::lower(&w.checked()),
                vm::RunConfig {
                    input: input.clone(),
                    ..vm::RunConfig::default()
                },
            )
            .unwrap();
            outputs.push(out.output_text());
        }
        assert_eq!(outputs[0], outputs[1], "shift variant diverged");
        assert_eq!(outputs[0], outputs[2], "binary variant diverged");
    }

    #[test]
    fn binary_variant_is_fastest_baseline() {
        // Paper Table 6: original runtimes order b < s < linear.
        let input = (encode().default_input)(0.01);
        let mut cycles = Vec::new();
        for w in [encode(), encode_s(), encode_b()] {
            let out = vm::run(
                &vm::lower(&w.checked()),
                vm::RunConfig {
                    input: input.clone(),
                    ..vm::RunConfig::default()
                },
            )
            .unwrap();
            cycles.push(out.cycles);
        }
        assert!(cycles[2] < cycles[0], "binary beats linear: {cycles:?}");
    }

    #[test]
    fn quan_input_repetition_is_high() {
        // The heart of the G721 story: the quan argument stream repeats
        // heavily on speech-like input.
        let w = encode();
        let program = minic::parse(&w.source).unwrap();
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: (w.default_input)(0.02),
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let quan_dec = outcome
            .report
            .decisions
            .iter()
            .find(|d| d.name.contains("quan"))
            .expect("quan profiled");
        // At 2% input scale the reuse rate is already ≈0.8; it climbs
        // toward the paper's 99.4% at full scale (DIP saturates while N
        // keeps growing).
        assert!(
            quan_dec.reuse_rate > 0.75,
            "speech input must repeat: {quan_dec:?}"
        );
        assert!(quan_dec.chosen);
        // Specialization shrank quan to one input.
        assert_eq!(quan_dec.key_words, 1);
        assert!(!outcome.report.specializations.is_empty());
    }
}
