//! RASTA speech front-end: the `FR4TR` filter-bank segment.
//!
//! Paper: "Its most time-consuming function FR4TR contains a code segment
//! with one input variable and six output variables. The input repetition
//! rate is 99.6%" — with only 31 distinct input patterns (Table 3), which
//! is also why RASTA is the one program whose 64-entry hardware buffer
//! reaches a 99.6% hit ratio in Table 5: the whole working set fits.
//!
//! Our `fr4tr` runs a float filter-bank recurrence over a cosine window
//! table (initialized once at startup — the invariance analysis must
//! exclude it from the key) and leaves six spectral-band accumulators in
//! globals.

use crate::inputs::{band_schedule, scaled};
use crate::{PaperData, Table3Row, Table4Row, Workload};

fn source() -> String {
    // Window table literals computed here (MiniC has no cos()).
    let window: Vec<String> = (0..64)
        .map(|i| {
            let v = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / 63.0).cos();
            format!("{v:.9}")
        })
        .collect();
    format!(
        "
float window[64] = {{{window}}};

float band0 = 0.0;
float band1 = 0.0;
float band2 = 0.0;
float band3 = 0.0;
float band4 = 0.0;
float band5 = 0.0;

void fr4tr(int band) {{
    float acc0 = 0.0;
    float acc1 = 0.0;
    float acc2 = 0.0;
    float acc3 = 0.0;
    float acc4 = 0.0;
    float acc5 = 0.0;
    float carry = 1.0;
    for (int k = 0; k < 48; k++) {{
        float w = window[(band * 7 + k) % 64];
        float t = w * carry + (float)(band + 1) * 0.015625;
        acc0 = acc0 + t;
        acc1 = acc1 + t * w;
        acc2 = acc2 + t * t * 0.5;
        acc3 = acc3 + w * (float)(k + 1) * 0.03125;
        acc4 = acc4 + (acc0 - acc1) * 0.25;
        acc5 = acc5 + (t - w) * 0.125;
        carry = carry * 0.96875 + w * 0.03125;
    }}
    band0 = acc0;
    band1 = acc1;
    band2 = acc2;
    band3 = acc3;
    band4 = acc4;
    band5 = acc5;
}}

float frame_state = 1.0;

float frame_work(int band, int t) {{
    float acc = frame_state;
    float x = (float)(band + t % 97 + 1) * 0.001953125;
    for (int k = 0; k < 620; k++) {{
        acc = acc * 0.9990234375 + x * window[k % 64];
        x = x + 0.0078125;
    }}
    frame_state = acc;
    return acc;
}}

int main() {{
    float total = 0.0;
    int tick = 0;
    while (!eof()) {{
        int band = input() % 31;
        if (band < 0)
            band = -band;
        tick = tick + 1;
        fr4tr(band);
        total = total + band0 + band1 * 0.5 + band2 * 0.25
              + band3 * 0.125 + band4 * 0.0625 + band5 * 0.03125
              + frame_work(band, tick) * 0.0625;
    }}
    print((int)(total * 100.0));
    return 0;
}}
",
        window = window.join(", ")
    )
}

/// Full-scale frame count: 250 frames × 31 bands ≈ the paper's ~7.8k
/// FR4TR executions.
const FRAMES: usize = 250;

fn default_input(scale: f64) -> Vec<i64> {
    band_schedule(scaled(FRAMES, scale), 31, 0x07A5_7A01, 0.0)
}

fn alt_input(scale: f64) -> Vec<i64> {
    // ICSI's 1998 test suite stand-in: longer run, a few irregular band
    // requests (the paper's alt run is 2× longer with the same speedup
    // band).
    band_schedule(scaled(FRAMES * 2, scale), 31, 0x07A5_7A02, 0.02)
}

/// RASTA.
pub fn rasta() -> Workload {
    Workload {
        name: "RASTA",
        hot_functions: "FR4TR",
        source: source(),
        default_input,
        alt_input,
        alt_source: "ICSI(rasta_testsuite_1998)",
        paper: PaperData {
            speedup_o0: 1.17,
            speedup_o3: 1.18,
            table3: Some(Table3Row {
                c_us: 333.7,
                o_us: 59.5,
                dip: 31,
                reuse_pct: 99.6,
                table_size: "2KB",
            }),
            table4: Some(Table4Row {
                analyzed: 27,
                profiled: 3,
                transformed: 1,
                code_lines: "6.1K",
            }),
            table5: Some([2.6, 17.9, 58.8, 99.6]),
            energy_saving: Some((14.3, 15.2)),
            alt_speedup: Some(1.18),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_runs() {
        let w = rasta();
        let out = vm::run(
            &vm::lower(&w.checked()),
            vm::RunConfig {
                input: (w.default_input)(0.05),
                ..vm::RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.output.len(), 1);
    }

    #[test]
    fn fr4tr_has_31_patterns_and_six_outputs() {
        let w = rasta();
        let program = minic::parse(&w.source).unwrap();
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: (w.default_input)(0.2),
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let fr = outcome
            .report
            .decisions
            .iter()
            .find(|d| d.name == "fr4tr:body")
            .expect("fr4tr profiled");
        assert_eq!(fr.dip, 31, "exactly the paper's 31 patterns");
        assert!(fr.reuse_rate > 0.97, "{fr:?}");
        assert_eq!(fr.key_words, 1, "window table is invariant");
        assert_eq!(fr.out_words, 6, "six band outputs");
        assert!(fr.chosen);
    }

    #[test]
    fn memoized_rasta_matches_and_wins() {
        let w = rasta();
        let program = minic::parse(&w.source).unwrap();
        let input = (w.default_input)(0.2);
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: input.clone(),
                ..compreuse::PipelineConfig::default()
            },
        )
        .unwrap();
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            vm::RunConfig {
                input: input.clone(),
                ..vm::RunConfig::default()
            },
        )
        .unwrap();
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            vm::RunConfig {
                input,
                tables: outcome.make_tables(),
                ..vm::RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(base.output_text(), memo.output_text());
        assert!(memo.cycles < base.cycles);
    }
}
