//! Deterministic input-stream generators.
//!
//! The paper runs Mediabench programs on their default input files
//! (speech PCM, MPEG streams, EPIC images) and, for Table 10, on inputs
//! from other sources (MiBench, Tektronix, ICSI). We cannot ship those
//! files; instead each workload has two generator families calibrated to
//! reproduce the *value-repetition statistics* the paper reports (Table 3:
//! distinct input patterns and reuse rates) — which is all the reuse
//! scheme ever observes about an input.

use crate::rng::StdRng;

/// Deterministic RNG for input synthesis.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Scales a full-size count: `scale` in `(0, 1]`, minimum 16.
pub fn scaled(full: usize, scale: f64) -> usize {
    ((full as f64 * scale) as usize).max(16)
}

/// Speech-like PCM: a sum of slowly-modulated sinusoids plus small noise,
/// quantized to 16-bit-ish integer samples. Drives the G721 workloads.
pub fn speech_pcm(samples: usize, seed: u64, base_freq: f64, amplitude: f64) -> Vec<i64> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(samples);
    let mut phase1 = 0.0f64;
    let mut phase2 = 0.0f64;
    for i in 0..samples {
        // Slow amplitude envelope (syllable-ish) keeps differences small
        // most of the time — the source of G721's high reuse rate.
        let env = 0.4 + 0.6 * (0.5 + 0.5 * (i as f64 * 0.00037).sin());
        phase1 += base_freq;
        phase2 += base_freq * 2.31;
        let s = amplitude * env * (0.7 * phase1.sin() + 0.3 * phase2.sin());
        let noise: f64 = r.gen_range(-220.0..220.0);
        out.push((s + noise) as i64);
    }
    out
}

/// ADPCM-style 4-bit code stream with a small-code bias (differential
/// speech coding emits small codes most of the time). Drives G721 decode.
pub fn adpcm_codes(samples: usize, seed: u64, spread: f64) -> Vec<i64> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        // 4-bit sign-magnitude: high bit is the sign, low three bits a
        // geometric magnitude (differential coders emit small steps most
        // of the time, in both directions).
        let u: f64 = r.gen();
        let mag = (-(1.0 - u).ln() * spread).min(7.0) as i64;
        let sign = i64::from(r.gen::<bool>()) * 8;
        out.push(sign + mag);
    }
    out
}

/// 8×8 blocks for MPEG2 encode: a fraction of blocks repeat exactly
/// (flat background patches), the rest are unique textures.
///
/// Returns a flat stream of `blocks × 64` values.
pub fn video_blocks(
    blocks: usize,
    seed: u64,
    repeat_fraction: f64,
    background_patterns: usize,
) -> Vec<i64> {
    let mut r = rng(seed);
    // Pre-build the repeating background patterns.
    let patterns: Vec<[i64; 64]> = (0..background_patterns.max(1))
        .map(|p| {
            let base = 64 + (p as i64 * 7) % 96;
            let mut blk = [0i64; 64];
            for (k, cell) in blk.iter_mut().enumerate() {
                *cell = base + ((k as i64 % 8) - 4) * (p as i64 % 3);
            }
            blk
        })
        .collect();
    let mut out = Vec::with_capacity(blocks * 64);
    for _ in 0..blocks {
        if r.gen::<f64>() < repeat_fraction {
            let p = &patterns[r.gen_range(0..patterns.len())];
            out.extend_from_slice(p);
        } else {
            // Unique textured block.
            let base: i64 = r.gen_range(0..224);
            for k in 0..64 {
                let t: i64 = r.gen_range(-24..24);
                out.push((base + t + (k % 8)).clamp(0, 255));
            }
        }
    }
    out
}

/// Quantized-coefficient blocks for MPEG2 decode: sparse 8×8 blocks whose
/// DC and few AC terms come from small sets, so many blocks coincide.
pub fn coefficient_blocks(blocks: usize, seed: u64, repeat_fraction: f64) -> Vec<i64> {
    let mut r = rng(seed);
    let mut seen: Vec<[i64; 64]> = Vec::new();
    let mut out = Vec::with_capacity(blocks * 64);
    for _ in 0..blocks {
        if !seen.is_empty() && r.gen::<f64>() < repeat_fraction {
            let p = seen[r.gen_range(0..seen.len())];
            out.extend_from_slice(&p);
            continue;
        }
        let mut blk = [0i64; 64];
        blk[0] = r.gen_range(-32..32) * 8; // DC
        let nonzero = r.gen_range(1..6usize);
        for _ in 0..nonzero {
            let pos = r.gen_range(1..20usize); // low-frequency positions
            blk[pos] = r.gen_range(-8..8) * 4;
        }
        seen.push(blk);
        if seen.len() > 4096 {
            seen.remove(0);
        }
        out.extend_from_slice(&blk);
    }
    out
}

/// RASTA band schedule: each frame visits bands `0..bands`; optionally a
/// fraction of entries are randomized (the alternate test suite's effect).
pub fn band_schedule(frames: usize, bands: usize, seed: u64, jitter: f64) -> Vec<i64> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(frames * bands);
    for _ in 0..frames {
        for b in 0..bands {
            if r.gen::<f64>() < jitter {
                out.push(r.gen_range(0..bands as i64 * 4));
            } else {
                out.push(b as i64);
            }
        }
    }
    out
}

/// EPIC-style pyramid coefficients: a head of heavily repeated small
/// values plus a tail of (mostly) unique large magnitudes, tuned so
/// `distinct/total ≈ 1 − reuse_rate`.
pub fn pyramid_coefficients(count: usize, seed: u64, reuse_rate: f64) -> Vec<i64> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(count);
    let mut unique_cursor: i64 = 1000;
    for _ in 0..count {
        if r.gen::<f64>() < reuse_rate {
            // Small, heavily repeated quantized values (Laplacian center).
            let v: i64 = r.gen_range(-320..=320);
            out.push(v);
        } else {
            // Tail values, essentially unique.
            unique_cursor += r.gen_range(1..9);
            let sign = if r.gen::<bool>() { 1 } else { -1 };
            out.push(sign * unique_cursor);
        }
    }
    out
}

/// Go move stream: positions biased toward earlier hot areas of the board
/// (openings cluster moves), `moves` entries in `0..361`.
pub fn go_moves(moves: usize, seed: u64) -> Vec<i64> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(moves);
    for i in 0..moves {
        // Cluster around corners early, spread later — shapes the
        // influence-input distribution.
        let cluster = match (i / 8) % 4 {
            0 => (3, 3),
            1 => (15, 3),
            2 => (3, 15),
            _ => (9, 9),
        };
        let dx: i64 = r.gen_range(-3..=3);
        let dy: i64 = r.gen_range(-3..=3);
        let x = (cluster.0 + dx).clamp(0, 18);
        let y = (cluster.1 + dy).clamp(0, 18);
        out.push(x * 19 + y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            speech_pcm(100, 7, 0.05, 8000.0),
            speech_pcm(100, 7, 0.05, 8000.0)
        );
        assert_eq!(adpcm_codes(100, 7, 3.0), adpcm_codes(100, 7, 3.0));
        assert_eq!(go_moves(50, 7), go_moves(50, 7));
        assert_ne!(
            speech_pcm(100, 7, 0.05, 8000.0),
            speech_pcm(100, 8, 0.05, 8000.0)
        );
    }

    #[test]
    fn speech_amplitude_bounded() {
        let pcm = speech_pcm(10_000, 1, 0.06, 9000.0);
        assert!(pcm.iter().all(|&s| s.abs() < 16_000));
        // Not constant.
        let distinct: HashSet<i64> = pcm.iter().copied().collect();
        assert!(distinct.len() > 1000);
    }

    #[test]
    fn codes_in_range_and_biased_small() {
        let codes = adpcm_codes(10_000, 2, 3.0);
        assert!(codes.iter().all(|&c| (0..16).contains(&c)));
        // Sign-magnitude: the low three bits carry a geometric magnitude.
        let small = codes.iter().filter(|&&c| c & 7 < 4).count();
        assert!(small > 5000, "small magnitudes dominate: {small}");
        // Both signs occur.
        let neg = codes.iter().filter(|&&c| c >= 8).count();
        assert!((3000..7000).contains(&neg), "signs balanced: {neg}");
    }

    #[test]
    fn video_blocks_hit_target_repeat_rate() {
        let stream = video_blocks(2000, 3, 0.10, 12);
        assert_eq!(stream.len(), 2000 * 64);
        let mut distinct = HashSet::new();
        for b in stream.chunks(64) {
            distinct.insert(b.to_vec());
        }
        let reuse = 1.0 - distinct.len() as f64 / 2000.0;
        assert!(
            (0.04..0.25).contains(&reuse),
            "encode-like reuse, got {reuse}"
        );
    }

    #[test]
    fn coefficient_blocks_repeat_heavily() {
        let stream = coefficient_blocks(2000, 4, 0.50);
        let mut distinct = HashSet::new();
        for b in stream.chunks(64) {
            distinct.insert(b.to_vec());
        }
        let reuse = 1.0 - distinct.len() as f64 / 2000.0;
        assert!(
            (0.35..0.65).contains(&reuse),
            "decode-like reuse, got {reuse}"
        );
    }

    #[test]
    fn band_schedule_has_31_patterns_when_clean() {
        let s = band_schedule(250, 31, 5, 0.0);
        let distinct: HashSet<i64> = s.iter().copied().collect();
        assert_eq!(distinct.len(), 31);
        assert_eq!(s.len(), 250 * 31);
    }

    #[test]
    fn pyramid_coefficients_match_reuse_target() {
        let n = 60_000;
        let coefs = pyramid_coefficients(n, 6, 0.651);
        let distinct: HashSet<i64> = coefs.iter().copied().collect();
        let r = 1.0 - distinct.len() as f64 / n as f64;
        assert!((0.55..0.75).contains(&r), "UNEPIC-like reuse, got {r}");
    }

    #[test]
    fn go_moves_valid_positions() {
        let mv = go_moves(500, 9);
        assert!(mv.iter().all(|&m| (0..361).contains(&m)));
        let distinct: HashSet<i64> = mv.iter().copied().collect();
        assert!(distinct.len() > 50);
    }

    #[test]
    fn scaled_has_floor() {
        assert_eq!(scaled(100_000, 0.5), 50_000);
        assert_eq!(scaled(100, 0.0001), 16);
    }
}
