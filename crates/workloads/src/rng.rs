//! A small deterministic pseudo-random generator (SplitMix64) exposing the
//! `rand`-style surface the input generators use (`gen`, `gen_range`), so
//! the workloads build without external crates. Streams are fixed per
//! seed: the generated inputs are part of the reproduction's test
//! expectations and must never change between runs.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator with `rand::rngs::StdRng`-shaped methods.
#[derive(Debug, Clone)]
pub struct StdRng(u64);

impl StdRng {
    /// Seeds the generator (same entry point name as `rand`'s
    /// `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut r = StdRng(seed ^ 0x1CEB_00DA_5EED);
        // Warm up so small seeds decorrelate immediately.
        r.next_u64();
        r
    }

    /// Next raw 64-bit value (SplitMix64).
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (for `gen::<f64>()`), uniform `bool`
    /// (for `gen::<bool>()`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive ranges of the
    /// [`SampleUniform`] types).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Types `StdRng::gen` can produce.
pub trait Sample {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Sample for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Element types `gen_range` can draw uniformly.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut StdRng) -> $t {
                let (lo, span) = (lo as i128, hi as i128 - lo as i128);
                assert!(span > 0, "gen_range on empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut StdRng) -> $t {
                let (lo, span) = (lo as i128, hi as i128 - lo as i128 + 1);
                assert!(span > 0, "gen_range on empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: f64, hi: f64, rng: &mut StdRng) -> f64 {
        assert!(hi > lo, "gen_range on empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut StdRng) -> f64 {
        f64::sample_half_open(lo, hi, rng)
    }
}

/// Ranges `StdRng::gen_range` accepts. A single generic impl per range
/// shape (rather than one per element type) so untyped integer literals
/// in the range infer `T` from the call site, as with `rand`.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(-24i64..24);
            assert!((-24..24).contains(&v));
            let w = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            let f = r.gen_range(-220.0..220.0);
            assert!((-220.0..220.0).contains(&f));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
