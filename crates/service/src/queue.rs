//! Bounded multi-producer multi-consumer request queue.
//!
//! Built from `std` primitives only (`Mutex` + two `Condvar`s), matching
//! the workspace's offline-build constraint. The queue is *bounded*:
//! producers block once `capacity` items are in flight, so a burst of
//! requests exerts back-pressure instead of growing without limit.
//! `close` wakes everyone; consumers then drain the remaining items and
//! receive `None`.
//!
//! A queue built with [`BoundedQueue::with_faults`] can additionally
//! reject pushes at the installed [`FaultPlan`]'s
//! [`FailPoint::QueueReject`] rate, modelling a transiently full or
//! failing admission path; a rejected item is returned to the caller
//! (never enqueued), who may retry it.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use memo_runtime::{FailPoint, FaultPlan};

/// Why a [`BoundedQueue::push`] returned the item instead of enqueuing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was closed; no later push can succeed (terminal).
    Closed(T),
    /// The push was rejected by the fault plane, as a transiently failing
    /// admission path would; a retry may succeed (retryable).
    Rejected(T),
}

impl<T> PushError<T> {
    /// The item that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Closed(item) | PushError::Rejected(item) => item,
        }
    }
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO channel usable from any number of threads by shared
/// reference.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Chaos plane; `None` (the default) costs one branch per push.
    faults: Option<Arc<FaultPlan>>,
}

// The queue is a cache-free FIFO: a poisoned mutex only means another
// thread panicked mid-push/pop, and the VecDeque itself is still
// structurally sound, so every lock recovers the guard.
fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// Creates a queue whose pushes can be rejected by `plan`'s
    /// [`FailPoint::QueueReject`] fires.
    pub fn with_faults(capacity: usize, plan: Option<Arc<FaultPlan>>) -> Self {
        Self::build(capacity, plan)
    }

    fn build(capacity: usize, faults: Option<Arc<FaultPlan>>) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            faults,
        }
    }

    /// Maximum number of buffered items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] when the queue was closed before the
    /// item could be enqueued (terminal), or [`PushError::Rejected`] when
    /// the fault plane rejected the push (retryable); either way the item
    /// is handed back and was never enqueued.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        if let Some(plan) = &self.faults {
            if plan.fire(FailPoint::QueueReject) {
                return Err(PushError::Rejected(item));
            }
        }
        let mut inner = recover(self.inner.lock());
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = recover(self.not_full.wait(inner));
        }
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = recover(self.inner.lock());
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = recover(self.not_empty.wait(inner));
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what is left
    /// and then see `None`.
    pub fn close(&self) {
        recover(self.inner.lock()).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently buffered (racy snapshot; for tests, telemetry, and
    /// the service's watermark checks).
    pub fn len(&self) -> usize {
        recover(self.inner.lock()).items.len()
    }

    /// Whether the buffer is empty right now (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_order_single_thread() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_after_close_returns_item() {
        let q = BoundedQueue::new(2);
        q.close();
        assert_eq!(q.push(7), Err(PushError::Closed(7)));
        assert_eq!(PushError::Closed(7).into_inner(), 7);
    }

    #[test]
    fn bounded_capacity_blocks_and_drains() {
        let q = BoundedQueue::new(2);
        let consumed = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                while let Some(v) = q.pop() {
                    consumed.fetch_add(v, Ordering::Relaxed);
                }
            });
            // 100 pushes through a capacity-2 queue must all land.
            for i in 1..=100u64 {
                q.push(i).unwrap();
            }
            q.close();
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn many_producers_many_consumers() {
        let q = BoundedQueue::new(4);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while let Some(v) = q.pop() {
                        total.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            std::thread::scope(|p| {
                for t in 0..4u64 {
                    let q = &q;
                    p.spawn(move || {
                        for i in 0..50 {
                            q.push(t * 50 + i).unwrap();
                        }
                    });
                }
            });
            q.close();
        });
        // sum 0..200 = 19900
        assert_eq!(total.load(Ordering::Relaxed), 19900);
    }

    #[test]
    fn injected_rejections_hand_the_item_back() {
        let plan = Arc::new(FaultPlan::new(5).with_rate(FailPoint::QueueReject, 1.0));
        let q = BoundedQueue::with_faults(4, Some(plan.clone()));
        assert_eq!(q.push(9), Err(PushError::Rejected(9)));
        assert!(q.is_empty(), "rejected items are never enqueued");
        assert_eq!(plan.fired(FailPoint::QueueReject), 1);
    }

    #[test]
    fn zero_rate_plan_never_rejects() {
        let plan = Arc::new(FaultPlan::new(5));
        let q = BoundedQueue::with_faults(4, Some(plan));
        for i in 0..100 {
            q.push(i).unwrap();
            assert_eq!(q.pop(), Some(i));
        }
    }
}
