//! Log2-bucketed latency histogram.
//!
//! Request latencies span several orders of magnitude (a warm memo hit
//! returns in microseconds, a cold full run can take milliseconds), so
//! buckets double in width: bucket 0 holds exactly 0 ns and bucket *b*
//! holds latencies in `[2^(b-1), 2^b)` ns. Per-worker histograms merge
//! losslessly — bucket counts are plain sums — so the service can report
//! one aggregate distribution without sharing state on the hot path.

/// Number of buckets: bucket 0 plus one per bit of a `u64` latency.
pub const BUCKETS: usize = 65;

/// A fixed-size log2 histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One non-empty bucket, for reports: `lo..=hi` nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketRow {
    /// Inclusive lower bound in nanoseconds.
    pub lo_ns: u64,
    /// Inclusive upper bound in nanoseconds.
    pub hi_ns: u64,
    /// Samples that landed in the bucket.
    pub count: u64,
}

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        64 - ns.leading_zeros() as usize
    }
}

fn bucket_bounds(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (b - 1);
        let hi = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
        (lo, hi)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram in (bucket-wise sum; lossless).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The quantile `q` in `[0, 1]`, interpolated within the covering
    /// bucket: the rank-`⌈q·count⌉` sample is located in its bucket and
    /// the bucket's samples are assumed uniformly spread over `[lo, hi]`,
    /// so a distribution concentrated in one bucket no longer collapses
    /// every quantile onto the bucket ceiling (the old behaviour reported
    /// p50 == p99 == `max_ns`). The estimate is clamped into
    /// `[min_ns, max_ns]` so a quantile never reports a latency outside
    /// the observed range; `quantile_ns(1.0)` is exactly `max_ns`, and
    /// the result is monotone in `q`. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(b);
                let fraction = (rank - seen) as f64 / n as f64;
                // `(hi - lo) as f64` can round up past the true width
                // (bucket 64 spans nearly 2^63), so saturate before the
                // clamp rather than risk overflow.
                let est = lo.saturating_add(((hi - lo) as f64 * fraction) as u64);
                return est.clamp(self.min_ns, self.max_ns);
            }
            seen += n;
        }
        self.max_ns
    }

    /// The non-empty buckets in ascending latency order.
    pub fn nonzero_buckets(&self) -> Vec<BucketRow> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                let (lo_ns, hi_ns) = bucket_bounds(b);
                BucketRow {
                    lo_ns,
                    hi_ns,
                    count: n,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_double_in_width() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
        }
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for ns in [0u64, 1, 5, 17, 1000, 65_536, 3] {
            whole.record(ns);
            if ns % 2 == 0 {
                a.record(ns);
            } else {
                b.record(ns);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.nonzero_buckets(), whole.nonzero_buckets());
        assert_eq!(a.min_ns(), whole.min_ns());
        assert_eq!(a.max_ns(), whole.max_ns());
        assert!((a.mean_ns() - whole.mean_ns()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 15]
        }
        h.record(1_000_000); // bucket [2^19, 2^20-1]
                             // The median sits partway through bucket [8, 15] — not at its
                             // ceiling — and stays within the observed range.
        let p50 = h.quantile_ns(0.5);
        assert!((10..15).contains(&p50), "p50 = {p50}");
        assert!(h.quantile_ns(0.99) <= 15);
        // The last bucket's ceiling (2^20 - 1) exceeds the largest
        // observed sample; the clamp reports max_ns instead.
        assert_eq!(h.quantile_ns(1.0), 1_000_000);
        assert_eq!(LatencyHistogram::new().quantile_ns(0.5), 0);
        // A single-sample histogram answers that sample at every q.
        let mut one = LatencyHistogram::new();
        one.record(10);
        assert_eq!(one.quantile_ns(0.0), 10);
        assert_eq!(one.quantile_ns(1.0), 10);
    }

    #[test]
    fn quantile_is_monotone_and_bounded_on_random_samples() {
        // Property over pseudo-random sample sets: quantile_ns is
        // monotone non-decreasing in q, and
        //   quantile_ns(0.0) <= quantile_ns(0.5) <= quantile_ns(1.0)
        // with quantile_ns(1.0) == max_ns exactly.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..32 {
            let mut h = LatencyHistogram::new();
            let samples = 1 + (next() % 500) as usize;
            for _ in 0..samples {
                // Spread across many orders of magnitude, including 0.
                let ns = next() >> (next() % 60);
                h.record(ns);
            }
            let mut prev = 0u64;
            for step in 0..=20 {
                let q = step as f64 / 20.0;
                let v = h.quantile_ns(q);
                assert!(
                    v >= prev,
                    "trial {trial}: quantile_ns not monotone at q={q}: {v} < {prev}"
                );
                assert!(v >= h.min_ns() && v <= h.max_ns());
                prev = v;
            }
            let median = h.quantile_ns(0.5);
            assert!(h.quantile_ns(0.0) <= median);
            assert!(median <= h.quantile_ns(1.0));
            assert_eq!(h.quantile_ns(1.0), h.max_ns());
        }
    }

    #[test]
    fn concentrated_distribution_does_not_collapse_onto_max() {
        // Regression: every sample in ONE bucket used to make p50 == p99
        // == max_ns. 100 samples at 600µs plus one at 1ms share bucket
        // [2^19, 2^20-1]; the median must stay near 600µs, far below max.
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(600_000);
        }
        h.record(1_000_000);
        let p50 = h.quantile_ns(0.5);
        assert!(p50 < h.max_ns(), "p50 = {p50} collapsed onto max");
        assert!(p50 >= h.min_ns());
        assert!(h.quantile_ns(0.5) <= h.quantile_ns(0.99));
        assert_eq!(h.quantile_ns(1.0), h.max_ns());
    }
}
