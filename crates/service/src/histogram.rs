//! Log2-bucketed latency histogram.
//!
//! Request latencies span several orders of magnitude (a warm memo hit
//! returns in microseconds, a cold full run can take milliseconds), so
//! buckets double in width: bucket 0 holds exactly 0 ns and bucket *b*
//! holds latencies in `[2^(b-1), 2^b)` ns. Per-worker histograms merge
//! losslessly — bucket counts are plain sums — so the service can report
//! one aggregate distribution without sharing state on the hot path.

/// Number of buckets: bucket 0 plus one per bit of a `u64` latency.
pub const BUCKETS: usize = 65;

/// A fixed-size log2 histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One non-empty bucket, for reports: `lo..=hi` nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketRow {
    /// Inclusive lower bound in nanoseconds.
    pub lo_ns: u64,
    /// Inclusive upper bound in nanoseconds.
    pub hi_ns: u64,
    /// Samples that landed in the bucket.
    pub count: u64,
}

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        64 - ns.leading_zeros() as usize
    }
}

fn bucket_bounds(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (b - 1);
        let hi = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
        (lo, hi)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram in (bucket-wise sum; lossless).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound (bucket ceiling) of the quantile `q` in `[0, 1]`: the
    /// smallest bucket ceiling at which at least `q * count` samples have
    /// accumulated, clamped into `[min_ns, max_ns]` so a quantile never
    /// reports a latency outside the observed range. Returns 0 when
    /// empty. Resolution is the bucket width, i.e. a factor of two.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= threshold {
                return bucket_bounds(b).1.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// The non-empty buckets in ascending latency order.
    pub fn nonzero_buckets(&self) -> Vec<BucketRow> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                let (lo_ns, hi_ns) = bucket_bounds(b);
                BucketRow {
                    lo_ns,
                    hi_ns,
                    count: n,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_double_in_width() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
        }
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for ns in [0u64, 1, 5, 17, 1000, 65_536, 3] {
            whole.record(ns);
            if ns % 2 == 0 {
                a.record(ns);
            } else {
                b.record(ns);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.nonzero_buckets(), whole.nonzero_buckets());
        assert_eq!(a.min_ns(), whole.min_ns());
        assert_eq!(a.max_ns(), whole.max_ns());
        assert!((a.mean_ns() - whole.mean_ns()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_report_bucket_ceilings_clamped_to_observed_range() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 15]
        }
        h.record(1_000_000); // bucket [2^19, 2^20-1]
        assert_eq!(h.quantile_ns(0.5), 15);
        assert_eq!(h.quantile_ns(0.99), 15);
        // The last bucket's ceiling (2^20 - 1) exceeds the largest
        // observed sample; the clamp reports max_ns instead.
        assert_eq!(h.quantile_ns(1.0), 1_000_000);
        assert_eq!(LatencyHistogram::new().quantile_ns(0.5), 0);
        // A single-sample histogram answers that sample at every q.
        let mut one = LatencyHistogram::new();
        one.record(10);
        assert_eq!(one.quantile_ns(0.0), 10);
        assert_eq!(one.quantile_ns(1.0), 10);
    }
}
