//! # service — a concurrent reuse service over shared memo tables
//!
//! Part of the `compreuse` workspace (a reproduction of Ding & Li,
//! *A Compiler Scheme for Reusing Intermediate Computation Results*,
//! CGO 2004). The paper memoizes within one process; this crate asks the
//! next question — what if many requests for the same programs could
//! share one reuse store? A [`ReuseService`] owns a set of compiled
//! programs, one sharded concurrent memo store per program
//! ([`memo_runtime::ShardedTable`]), and a bounded request queue
//! ([`queue::BoundedQueue`]). `K` worker threads each hold a private VM
//! (bytecode precompiled once per program per worker) and probe the
//! shared store, so a result computed for one request is reused by every
//! later request with the same intermediate inputs — across threads.
//!
//! ## Equivalence contract (DESIGN.md §8e)
//!
//! Program *results* (printed output and return value) are identical to a
//! sequential run with private tables: a memo entry stores the exact
//! outputs of a segment body keyed by its exact inputs, so a hit replays
//! precisely what a miss would recompute, no matter which request
//! recorded it. Per-request [`RequestResult::fingerprint`] hashes only
//! these store-independent parts. Cycle ledgers, hit rates and collision
//! rates *are* store-order dependent — a request may hit on an entry some
//! other request recorded — which is the point of sharing, and they are
//! reported per run, never folded into fingerprints.
//!
//! ## Fault model and degradation (DESIGN.md §8f)
//!
//! The service degrades, it does not corrupt. A [`memo_runtime::FaultPlan`]
//! in [`ServiceConfig::faults`] injects deterministic failures — forced
//! probe misses, genuinely poisoned shard locks, queue-push rejections,
//! simulated slow requests — and the service answers with *retries*
//! (bounded, decorrelated exponential backoff, for the retryable faults),
//! *deadlines* (cycle and wall-clock budgets per request), and *load
//! shedding* (queue watermarks that shed requests and flip the stores to
//! table bypass until the backlog drains). Every request ends in a
//! terminal [`RequestStatus`]; the §8e invariant extends to: every
//! *executed* request (status `Ok` or `DeadlineExceeded`) has a
//! fingerprint equal to the fault-free sequential baseline's — faults may
//! cost latency and hit ratio, never correctness.
//!
//! ```
//! use service::{Request, ReuseService, ServiceConfig, ServiceProgram};
//!
//! let checked = minic::compile(
//!     "int f(int x) { int i; int s; s = 0;
//!        for (i = 0; i < 100; i = i + 1) { s = s + x * i; } return s; }
//!      int main() { print(f(input())); return 0; }",
//! )
//! .unwrap();
//! let svc = ReuseService::new(
//!     vec![ServiceProgram {
//!         name: "square".into(),
//!         module: vm::lower(&checked),
//!         specs: vec![],
//!         policies: vec![],
//!         table_deps: vec![],
//!         spec_plan: None,
//!     }],
//!     ServiceConfig { workers: 2, ..ServiceConfig::default() },
//! )
//! .unwrap();
//! let requests: Vec<Request> = (0..8).map(|i| Request::new(0, vec![i % 3])).collect();
//! let report = svc.run(&requests);
//! let baseline = svc.run_private_sequential(&requests);
//! assert_eq!(report.fingerprints(), baseline.fingerprints());
//! # Ok::<(), memo_runtime::SpecError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fingerprint;
pub mod histogram;
pub mod queue;

use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use memo_runtime::{
    FailPoint, FaultCounters, FaultPlan, GuardPolicy, MemoTable, ShardedTable, SnapshotError,
    SpecError, TableSpec, TableState, TableStats,
};
use vm::{CostModel, L1Cache, Module, RunConfig};

pub use fingerprint::fingerprint_outcome;
pub use histogram::LatencyHistogram;
pub use queue::{BoundedQueue, PushError};

/// One program the service can serve: the memoized module plus the table
/// plan the pipeline produced for it ([`compreuse::ReuseOutcome`]'s
/// `specs` and `policies`, by value so the service crate stays independent
/// of the compiler crates).
#[derive(Debug)]
pub struct ServiceProgram {
    /// Display name (workload name in the bench harness).
    pub name: String,
    /// The lowered, memoized module.
    pub module: Module,
    /// Planned table specs, indexed by the module's table ids.
    pub specs: Vec<TableSpec>,
    /// Per-table adaptive-guard policies (same length as `specs`).
    pub policies: Vec<GuardPolicy>,
    /// Per-table, per-slot dependency-fingerprint widths in words
    /// ([`compreuse::ReuseOutcome`]'s `table_deps`; `0` = exact-match
    /// slot). An empty outer vector means no slot is fingerprinted.
    pub table_deps: Vec<Vec<usize>>,
    /// The pipeline's mined specialization plan
    /// ([`compreuse::ReuseOutcome`]'s `spec_plan`). Applied only when
    /// [`ServiceConfig::engine`] is [`vm::Engine::Specialized`]; answers
    /// and table state are identical either way (DESIGN.md §8j).
    pub spec_plan: Option<vm::SpecPlan>,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Lock shards per table (rounded up to a power of two).
    pub shards: usize,
    /// Bounded queue capacity — in-flight back-pressure limit.
    pub queue_capacity: usize,
    /// Whether the per-shard adaptive guard may act (default: telemetry
    /// only, matching `ReuseOutcome::make_tables`).
    pub adaptive: bool,
    /// Cost model the programs were planned under; bytecode is compiled
    /// against it once per worker.
    pub cost: CostModel,
    /// Deterministic fault-injection plan (`None`, the default, costs one
    /// branch at each injection site). Store-level probe faults take
    /// effect on stores built after the plan is set (via
    /// [`ReuseService::new`] or [`ReuseService::reset_stores`]); queue and
    /// worker faults apply from the next [`ReuseService::run`].
    pub faults: Option<Arc<FaultPlan>>,
    /// Default per-request modelled-cycle budget; a request whose charged
    /// cycles (including injected slow-request penalties) exceed it ends
    /// as [`RequestStatus::DeadlineExceeded`]. Overridden per request by
    /// [`Request::deadline_cycles`].
    pub deadline_cycles: Option<u64>,
    /// Default per-request wall-clock budget in nanoseconds (same
    /// semantics; overridden by [`Request::deadline_ns`]).
    pub deadline_ns: Option<u64>,
    /// Retry budget for retryable faults (queue rejections, poisoned
    /// shards); a request that exhausts it ends as
    /// [`RequestStatus::Exhausted`].
    pub max_retries: u32,
    /// Backoff floor for the first retry, nanoseconds.
    pub backoff_base_ns: u64,
    /// Backoff ceiling, nanoseconds (decorrelated jitter stays under it).
    pub backoff_cap_ns: u64,
    /// Queue depth at which the producer starts shedding requests and
    /// flips the stores to table bypass (`None` disables watermarks).
    pub high_watermark: Option<usize>,
    /// Queue depth at which a degraded service re-arms its stores
    /// (hysteresis: must be below the high watermark to avoid flapping).
    pub low_watermark: usize,
    /// Whether fingerprinted segments run dependency validation
    /// (try-mark-green) on probes. With `false`, green entries are forced
    /// red — the exact-match A arm of a hit-ratio A/B comparison. Answers
    /// are identical either way (DESIGN.md §8e/§8g); only the hit ratio
    /// and cycle ledger move.
    pub validate: bool,
    /// Per-worker L1 cache slots per table (DESIGN.md §8i); `0` disables
    /// tiering and workers probe the shared store directly. L1 caches are
    /// per batch: their `l1_hits`/`promotions` are folded into the batch's
    /// [`ServiceReport::store_delta`] (not the cumulative
    /// [`ReuseService::store_stats`], which tracks the shared store only).
    pub l1_slots: usize,
    /// Whether the stores gate recordings through the TinyLFU admission
    /// sketch (DESIGN.md §8i): a new key must look more frequent than the
    /// resident it would evict, so one-shot keys stop churning hot
    /// entries. Applies to stores built after the flag is set (via
    /// [`ReuseService::new`] or [`ReuseService::reset_stores`]).
    pub admission: bool,
    /// Execution engine workers compile for. [`vm::Engine::Specialized`]
    /// applies each program's [`ServiceProgram::spec_plan`] at
    /// precompile time; any other value (and a program without a plan)
    /// compiles generic bytecode. Observables are engine-independent.
    pub engine: vm::Engine,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            shards: 8,
            queue_capacity: 64,
            adaptive: false,
            cost: CostModel::o0(),
            faults: None,
            deadline_cycles: None,
            deadline_ns: None,
            max_retries: 3,
            backoff_base_ns: 20_000,
            backoff_cap_ns: 2_000_000,
            high_watermark: None,
            low_watermark: 0,
            validate: true,
            l1_slots: 64,
            admission: false,
            engine: vm::Engine::default(),
        }
    }
}

/// How a request's service attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Executed within its budgets.
    Ok,
    /// Never executed: shed at admission because the queue was over the
    /// high watermark. Its fingerprint is 0 and excluded from the
    /// equivalence check.
    Shed,
    /// Executed, but over its cycle or wall-clock budget. The outputs
    /// were still produced, so its fingerprint *is* checked against the
    /// baseline.
    DeadlineExceeded,
    /// Never executed: the retry budget ran out on retryable faults.
    /// Fingerprint 0, excluded from the equivalence check.
    Exhausted,
}

impl RequestStatus {
    /// Every status, in reporting order.
    pub const ALL: [RequestStatus; 4] = [
        RequestStatus::Ok,
        RequestStatus::Shed,
        RequestStatus::DeadlineExceeded,
        RequestStatus::Exhausted,
    ];

    /// Short snake_case name (used in metrics reports).
    pub fn name(self) -> &'static str {
        match self {
            RequestStatus::Ok => "ok",
            RequestStatus::Shed => "shed",
            RequestStatus::DeadlineExceeded => "deadline_exceeded",
            RequestStatus::Exhausted => "exhausted",
        }
    }

    /// Position in [`RequestStatus::ALL`] (indexes the per-status
    /// latency histograms).
    pub fn index(self) -> usize {
        match self {
            RequestStatus::Ok => 0,
            RequestStatus::Shed => 1,
            RequestStatus::DeadlineExceeded => 2,
            RequestStatus::Exhausted => 3,
        }
    }

    /// Whether the program body actually ran (its fingerprint is then
    /// subject to the §8e/§8f equivalence invariant).
    pub fn executed(self) -> bool {
        matches!(self, RequestStatus::Ok | RequestStatus::DeadlineExceeded)
    }
}

/// One request: which program to run, its input stream, and optional
/// per-request budget overrides.
#[derive(Debug, Clone)]
pub struct Request {
    /// Index into the service's program list.
    pub program: usize,
    /// Input stream consumed by the program's `input()` builtin.
    pub input: Vec<i64>,
    /// Per-request cycle budget, overriding
    /// [`ServiceConfig::deadline_cycles`].
    pub deadline_cycles: Option<u64>,
    /// Per-request wall-clock budget (ns), overriding
    /// [`ServiceConfig::deadline_ns`].
    pub deadline_ns: Option<u64>,
}

impl Request {
    /// A request with no per-request budget overrides (the service
    /// defaults apply).
    pub fn new(program: usize, input: Vec<i64>) -> Self {
        Request {
            program,
            input,
            deadline_cycles: None,
            deadline_ns: None,
        }
    }
}

/// The per-request record a worker produces.
#[derive(Debug, Clone)]
pub struct RequestResult {
    /// Index of the request in the submitted batch.
    pub request: usize,
    /// Program index the request named.
    pub program: usize,
    /// Worker that served it (0 for the sequential baseline and for
    /// requests that never reached a worker).
    pub worker: usize,
    /// Store-independent outcome fingerprint ([`fingerprint_outcome`]);
    /// 0 for requests that never executed (`Shed`, `Exhausted`).
    pub fingerprint: u64,
    /// Modelled cycles (store-order dependent under sharing).
    pub cycles: u64,
    /// Host wall-clock latency, in nanoseconds: run time for executed
    /// requests, time burned retrying for `Exhausted`, 0 for `Shed`.
    pub latency_ns: u64,
    /// Whether the program trapped (the fingerprint then hashes the trap).
    pub trapped: bool,
    /// Terminal status of the service attempt.
    pub status: RequestStatus,
    /// Retries this request consumed (queue re-pushes and re-executions).
    pub retries: u32,
}

/// Everything one batch run produced.
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-request records, indexed by request position in the batch.
    pub results: Vec<RequestResult>,
    /// Host wall-clock for the whole batch, seconds.
    pub wall_seconds: f64,
    /// Requests per wall-clock second.
    pub throughput_rps: f64,
    /// Latency distribution of the *executed* requests.
    pub latency: LatencyHistogram,
    /// Latency distribution per terminal status, in
    /// [`RequestStatus::ALL`] order (always 4 histograms).
    pub latency_by_status: Vec<LatencyHistogram>,
    /// Requests *executed* per worker (shed/exhausted requests reached no
    /// worker and are not counted).
    pub per_worker: Vec<u64>,
    /// Aggregate store statistics accumulated by *this batch* (delta over
    /// the run; the store itself keeps accumulating across batches).
    pub store_delta: TableStats,
    /// Per-program store-statistics deltas for this batch, in program
    /// index order (the green/red breakdown per workload; sums to
    /// `store_delta`).
    pub per_program_delta: Vec<TableStats>,
    /// Total retries consumed across the batch (queue re-pushes plus
    /// worker re-executions).
    pub retries: u64,
    /// Times the service entered degraded mode (stores flipped to bypass
    /// at the high watermark) during the batch.
    pub degraded_flips: u64,
    /// Fault-plan counter deltas for this batch (`None` without a plan).
    pub faults: Option<FaultCounters>,
}

impl ServiceReport {
    /// The batch's fingerprints in request order (the determinism
    /// invariant: equal across worker counts and store temperatures).
    pub fn fingerprints(&self) -> Vec<u64> {
        self.results.iter().map(|r| r.fingerprint).collect()
    }

    /// `(request index, fingerprint)` for the *executed* requests only —
    /// the set the §8f fault-equivalence invariant quantifies over (shed
    /// and exhausted requests never produced outputs).
    pub fn executed_fingerprints(&self) -> Vec<(usize, u64)> {
        self.results
            .iter()
            .filter(|r| r.status.executed())
            .map(|r| (r.request, r.fingerprint))
            .collect()
    }

    /// Requests per terminal status, in [`RequestStatus::ALL`] order.
    pub fn status_counts(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        for r in &self.results {
            counts[r.status.index()] += 1;
        }
        counts
    }

    /// Whether every submitted request ended in exactly one terminal
    /// status (`ok + shed + deadline_exceeded + exhausted == submitted`).
    pub fn accounting_holds(&self, submitted: usize) -> bool {
        self.results.len() == submitted
            && self.status_counts().iter().sum::<u64>() == submitted as u64
    }

    /// Hit ratio of the store traffic this batch generated.
    pub fn hit_ratio(&self) -> f64 {
        self.store_delta.hit_ratio()
    }
}

struct ProgramRt {
    program: ServiceProgram,
    store: Arc<Vec<ShardedTable>>,
}

/// How [`ReuseService::restore_from`] ended.
#[derive(Debug)]
pub enum RestoreOutcome {
    /// The snapshot was valid: the stores hold its entries and resume at
    /// the snapshotted hit ratio.
    Restored,
    /// The snapshot was unusable (reason attached); the stores are fresh
    /// and empty — the documented degraded mode, never a panic.
    ColdStart(SnapshotError),
}

impl RestoreOutcome {
    /// Whether the snapshot was actually restored.
    pub fn is_restored(&self) -> bool {
        matches!(self, RestoreOutcome::Restored)
    }
}

/// The service: programs, their shared stores, and a worker-pool runner.
///
/// `run` may be called repeatedly; the shared stores persist between
/// batches, so a second identical batch runs warm (higher hit rate, same
/// fingerprints).
pub struct ReuseService {
    programs: Vec<ProgramRt>,
    config: ServiceConfig,
}

impl std::fmt::Debug for ReuseService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReuseService")
            .field("programs", &self.programs.len())
            .field("config", &self.config)
            .finish()
    }
}

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A terminal record for a request that never executed (shed at
/// admission, or retry budget exhausted).
fn unserved(
    idx: usize,
    program: usize,
    status: RequestStatus,
    latency_ns: u64,
    retries: u32,
) -> RequestResult {
    RequestResult {
        request: idx,
        program,
        worker: 0,
        fingerprint: 0,
        cycles: 0,
        latency_ns,
        trapped: false,
        status,
        retries,
    }
}

impl ReuseService {
    /// Builds the service: one sharded store per program, policies
    /// installed per shard (enabled only with [`ServiceConfig::adaptive`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when a program's table spec is structurally
    /// invalid.
    pub fn new(programs: Vec<ServiceProgram>, config: ServiceConfig) -> Result<Self, SpecError> {
        let programs = programs
            .into_iter()
            .map(|p| {
                let store = build_store(&p, &config)?;
                Ok(ProgramRt {
                    program: p,
                    store: Arc::new(store),
                })
            })
            .collect::<Result<_, SpecError>>()?;
        Ok(ReuseService { programs, config })
    }

    /// Replaces every shared store with a fresh, empty one — a cold start
    /// without re-running the pipeline (worker-scaling sweeps reset
    /// between points so each worker count is measured from the same
    /// store temperature).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when a table spec is structurally invalid
    /// (cannot happen for specs that already built once).
    pub fn reset_stores(&mut self) -> Result<(), SpecError> {
        for rt in &mut self.programs {
            rt.store = Arc::new(build_store(&rt.program, &self.config)?);
        }
        Ok(())
    }

    /// Writes a snapshot of every program's shared store to `path`
    /// (DESIGN.md §8i): all entries, dependency fingerprints, per-shard
    /// statistics and telemetry baselines, in program-index order. Safe
    /// on a live service — each shard is captured under its lock.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] on filesystem failure.
    pub fn snapshot_to(&self, path: &Path) -> Result<(), SnapshotError> {
        let refs: Vec<&ShardedTable> = self.programs.iter().flat_map(|p| p.store.iter()).collect();
        memo_runtime::write_snapshot(&refs, path)
    }

    /// Restores the stores from a snapshot written by
    /// [`ReuseService::snapshot_to`] under the *same program set and
    /// service shape* (table specs, shard count). On success the service
    /// resumes warm: entries, statistics and telemetry baselines are back
    /// and shard geometry is re-frozen, so the optimistic probe path is
    /// immediately live. On *any* failure — missing file, corruption,
    /// version or geometry mismatch — the service falls back to fresh,
    /// empty stores (a clean cold start) and reports why; it never
    /// panics on snapshot contents.
    ///
    /// # Panics
    ///
    /// Panics only if a table spec stopped being instantiable (cannot
    /// happen for specs that already built once in `new`).
    pub fn restore_from(&mut self, path: &Path) -> RestoreOutcome {
        let build = |programs: &[ProgramRt], config: &ServiceConfig| -> Vec<Vec<ShardedTable>> {
            programs
                .iter()
                .map(|rt| {
                    build_store(&rt.program, config)
                        .unwrap_or_else(|e| panic!("{}: invalid table spec: {e}", rt.program.name))
                })
                .collect()
        };
        let mut fresh = build(&self.programs, &self.config);
        let mut refs: Vec<&mut ShardedTable> =
            fresh.iter_mut().flat_map(|v| v.iter_mut()).collect();
        let outcome = match memo_runtime::read_snapshot(&mut refs, path) {
            Ok(()) => RestoreOutcome::Restored,
            Err(e) => {
                // A failed restore may have imported some shards; discard
                // everything and cold-start from another fresh build.
                fresh = build(&self.programs, &self.config);
                RestoreOutcome::ColdStart(e)
            }
        };
        for (rt, store) in self.programs.iter_mut().zip(fresh) {
            rt.store = Arc::new(store);
        }
        outcome
    }

    /// Changes the worker count for subsequent [`ReuseService::run`] calls.
    pub fn set_workers(&mut self, workers: usize) {
        self.config.workers = workers.max(1);
    }

    /// Enables or disables try-mark-green validation on probes for
    /// subsequent runs. With validation off, dependency-keyed entries are
    /// forced red (recompute), which is the exact-match A arm of the
    /// serving A/B benchmark. Answers are identical either way (§8e);
    /// only hit ratios and the modelled cycle ledger move.
    pub fn set_validate(&mut self, validate: bool) {
        self.config.validate = validate;
    }

    /// Installs (or removes) a fault plan. Queue and worker fail points
    /// apply from the next [`ReuseService::run`]; store-level probe
    /// faults need the stores rebuilt ([`ReuseService::reset_stores`]) to
    /// pick the plan up.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.config.faults = plan;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.config.faults.as_ref()
    }

    /// Guard state of every shard of every table of every program, in
    /// (program, table, shard) order — the degradation ladder's
    /// observable.
    pub fn store_states(&self) -> Vec<TableState> {
        self.programs
            .iter()
            .flat_map(|p| p.store.iter().flat_map(ShardedTable::shard_states))
            .collect()
    }

    /// Total poisoned-shard recoveries across every store.
    pub fn poison_recoveries(&self) -> u64 {
        self.programs
            .iter()
            .flat_map(|p| p.store.iter().map(ShardedTable::poison_recoveries))
            .sum()
    }

    /// The currently configured worker count.
    pub fn workers(&self) -> usize {
        self.config.workers.max(1)
    }

    /// Program names, in index order.
    pub fn program_names(&self) -> Vec<&str> {
        self.programs
            .iter()
            .map(|p| p.program.name.as_str())
            .collect()
    }

    /// Aggregate statistics over every program's shared store.
    pub fn store_stats(&self) -> TableStats {
        let mut total = TableStats::default();
        for s in self.per_program_stats() {
            total.merge(&s);
        }
        total
    }

    /// Aggregate store statistics per program, in program-index order.
    pub fn per_program_stats(&self) -> Vec<TableStats> {
        self.programs
            .iter()
            .map(|p| {
                let mut total = TableStats::default();
                for t in p.store.iter() {
                    total.merge(&t.stats());
                }
                total
            })
            .collect()
    }

    /// Total bytes held by the shared stores.
    pub fn store_bytes(&self) -> usize {
        self.programs
            .iter()
            .map(|p| p.store.iter().map(ShardedTable::bytes).sum::<usize>())
            .sum()
    }

    /// Compiles `p` for the configured engine: the specialized tier
    /// applies the program's mined plan at precompile time, everything
    /// else (including plan-less programs) gets generic bytecode.
    fn precompile_program<'a>(&self, p: &'a ServiceProgram) -> vm::Precompiled<'a> {
        match (self.config.engine, &p.spec_plan) {
            (vm::Engine::Specialized, Some(plan)) => {
                vm::precompile_spec(&p.module, &self.config.cost, plan)
            }
            _ => vm::precompile(&p.module, &self.config.cost),
        }
    }

    fn run_config_for(&self, req: &Request, store: Option<Arc<Vec<ShardedTable>>>) -> RunConfig {
        RunConfig {
            cost: self.config.cost.clone(),
            input: req.input.clone(),
            shared_tables: store,
            validate: self.config.validate,
            ..RunConfig::default()
        }
    }

    /// Serves one batch on `config.workers` threads against the shared
    /// stores. Requests flow through the bounded queue in submission
    /// order; completion order is scheduler-dependent, but `results` is
    /// indexed by submission position either way. Every request ends in
    /// exactly one terminal [`RequestStatus`]; under an installed fault
    /// plan, retryable faults (queue rejections, poisoned shards) are
    /// retried with decorrelated backoff up to
    /// [`ServiceConfig::max_retries`], and the high/low watermarks shed
    /// load and flip the stores to bypass while the queue is backed up.
    ///
    /// # Panics
    ///
    /// Panics if a request names a program index out of range.
    pub fn run(&self, requests: &[Request]) -> ServiceReport {
        for r in requests {
            assert!(
                r.program < self.programs.len(),
                "request names program {} but the service has {}",
                r.program,
                self.programs.len()
            );
        }
        if let Some(plan) = &self.config.faults {
            if plan.rate(FailPoint::ShardPoison) > 0.0 {
                memo_runtime::silence_injected_panics();
            }
        }
        let workers = self.config.workers.max(1);
        let queue: BoundedQueue<usize> =
            BoundedQueue::with_faults(self.config.queue_capacity, self.config.faults.clone());
        let results: Mutex<Vec<Option<RequestResult>>> = Mutex::new(vec![None; requests.len()]);
        // Per-program L1 statistics accumulated by the workers (the caches
        // themselves are per worker and die with the batch).
        let l1_acc: Mutex<Vec<TableStats>> =
            Mutex::new(vec![TableStats::default(); self.programs.len()]);
        let before = self.per_program_stats();
        let faults_before = self.config.faults.as_ref().map(|p| p.counters());
        let mut push_retries = 0u64;
        let mut degraded_flips = 0u64;
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for w in 0..workers {
                let queue = &queue;
                let results = &results;
                let l1_acc = &l1_acc;
                s.spawn(move || {
                    // One lazily-filled bytecode cache per worker: each
                    // program is compiled at most once per worker, then
                    // every request for it reuses the bytecode. The L1
                    // tier is per worker per program too, built on first
                    // use and carried across this worker's requests so
                    // promotions pay off within the batch.
                    let mut compiled: Vec<Option<vm::Precompiled<'_>>> =
                        (0..self.programs.len()).map(|_| None).collect();
                    let mut l1_sets: Vec<Option<Vec<L1Cache>>> =
                        (0..self.programs.len()).map(|_| None).collect();
                    while let Some(idx) = queue.pop() {
                        let req = &requests[idx];
                        let rt = &self.programs[req.program];
                        let pre = compiled[req.program]
                            .get_or_insert_with(|| self.precompile_program(&rt.program));
                        let l1 = if self.config.l1_slots > 0 {
                            Some(
                                l1_sets[req.program]
                                    .take()
                                    .unwrap_or_else(|| build_l1(&rt.program, self.config.l1_slots)),
                            )
                        } else {
                            None
                        };
                        let (record, l1) = self.serve_one(idx, req, rt, pre, w, l1);
                        l1_sets[req.program] = l1;
                        recover(results.lock())[idx] = Some(record);
                    }
                    let mut acc = recover(l1_acc.lock());
                    for (p, set) in l1_sets.iter().enumerate() {
                        for cache in set.iter().flatten() {
                            acc[p].merge(cache.stats());
                        }
                    }
                });
            }
            // The caller's thread is the producer: bounded queue, so a
            // long batch exerts back-pressure here instead of buffering
            // everything. Watermarks turn that back-pressure into load
            // shedding plus store degradation when configured.
            let mut degraded = false;
            for (idx, req) in requests.iter().enumerate() {
                if let Some(high) = self.config.high_watermark {
                    let depth = queue.len();
                    if depth >= high {
                        if !degraded {
                            degraded = true;
                            degraded_flips += 1;
                            self.for_each_store(|t| t.force_bypass("queue over high watermark"));
                        }
                        recover(results.lock())[idx] =
                            Some(unserved(idx, req.program, RequestStatus::Shed, 0, 0));
                        continue;
                    }
                    if degraded && depth <= self.config.low_watermark {
                        degraded = false;
                        self.for_each_store(|t| {
                            t.end_forced_bypass("queue drained to low watermark")
                        });
                    }
                }
                let mut item = idx;
                let mut attempt = 0u32;
                loop {
                    match queue.push(item) {
                        Ok(()) => break,
                        Err(PushError::Rejected(it)) => {
                            attempt += 1;
                            if attempt > self.config.max_retries {
                                recover(results.lock())[idx] = Some(unserved(
                                    idx,
                                    req.program,
                                    RequestStatus::Exhausted,
                                    0,
                                    self.config.max_retries,
                                ));
                                break;
                            }
                            push_retries += 1;
                            if let Some(plan) = &self.config.faults {
                                std::thread::sleep(Duration::from_nanos(plan.backoff_ns(
                                    attempt,
                                    self.config.backoff_base_ns,
                                    self.config.backoff_cap_ns,
                                )));
                            }
                            item = it;
                        }
                        Err(PushError::Closed(_)) => {
                            // Unreachable in practice: only this thread
                            // closes the queue, after the loop. Shed
                            // rather than lose the request silently.
                            recover(results.lock())[idx] =
                                Some(unserved(idx, req.program, RequestStatus::Shed, 0, 0));
                            break;
                        }
                    }
                }
            }
            queue.close();
            if degraded {
                // The batch is fully admitted; re-arm the stores so the
                // next batch starts healthy.
                self.for_each_store(|t| t.end_forced_bypass("batch admission complete"));
            }
        });
        let wall_seconds = t0.elapsed().as_secs_f64();
        let after = self.per_program_stats();
        // L1 probes that hit never reach the shared store, so the batch's
        // true traffic is the store delta plus the workers' L1 counters
        // (summing the tiers counts every probe exactly once).
        let l1_totals = recover(l1_acc.into_inner());
        let per_program_delta: Vec<TableStats> = after
            .iter()
            .zip(&before)
            .zip(&l1_totals)
            .map(|((a, b), l1)| {
                let mut d = a.delta_since(b);
                d.merge(l1);
                d
            })
            .collect();
        let mut store_delta = TableStats::default();
        for d in &per_program_delta {
            store_delta.merge(d);
        }

        let results: Vec<RequestResult> = recover(results.into_inner())
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("request {i} was never served")))
            .collect();
        let mut latency = LatencyHistogram::new();
        let mut latency_by_status: Vec<LatencyHistogram> = (0..RequestStatus::ALL.len())
            .map(|_| LatencyHistogram::new())
            .collect();
        let mut per_worker = vec![0u64; workers];
        let mut retries = push_retries;
        for r in &results {
            latency_by_status[r.status.index()].record(r.latency_ns);
            retries += u64::from(r.retries);
            if r.status.executed() {
                latency.record(r.latency_ns);
                per_worker[r.worker] += 1;
            }
        }
        ServiceReport {
            throughput_rps: if wall_seconds > 0.0 {
                results.len() as f64 / wall_seconds
            } else {
                0.0
            },
            results,
            wall_seconds,
            latency,
            latency_by_status,
            per_worker,
            store_delta,
            per_program_delta,
            retries,
            degraded_flips,
            faults: self
                .config
                .faults
                .as_ref()
                .zip(faults_before)
                .map(|(p, b)| p.counters().delta_since(&b)),
        }
    }

    /// Runs one request on a worker thread: retry loop for poisoned-shard
    /// faults, slow-request penalty, then the deadline checks. The
    /// worker's L1 tier rides through the run and comes back with the
    /// result (`None` after a trap — the aborted machine dropped it; the
    /// worker rebuilds an empty tier on the next request).
    fn serve_one(
        &self,
        idx: usize,
        req: &Request,
        rt: &ProgramRt,
        pre: &vm::Precompiled<'_>,
        worker: usize,
        mut l1: Option<Vec<L1Cache>>,
    ) -> (RequestResult, Option<Vec<L1Cache>>) {
        let start = Instant::now();
        let mut failed_attempts = 0u32;
        let outcome = loop {
            if let Some(plan) = &self.config.faults {
                if plan.fire(FailPoint::ShardPoison) {
                    // A deterministic victim shard is genuinely poisoned;
                    // the attempt is treated as failed and retried, and
                    // the next probe of that shard recovers it empty.
                    if let Some(t) = rt.store.get(plan.pick(rt.store.len() as u64) as usize) {
                        t.poison_shard(plan.pick(t.shard_count() as u64) as usize);
                    }
                    failed_attempts += 1;
                    if failed_attempts > self.config.max_retries {
                        break None;
                    }
                    std::thread::sleep(Duration::from_nanos(plan.backoff_ns(
                        failed_attempts,
                        self.config.backoff_base_ns,
                        self.config.backoff_cap_ns,
                    )));
                    continue;
                }
            }
            let mut config = self.run_config_for(req, Some(Arc::clone(&rt.store)));
            config.l1 = l1.take();
            let mut result = vm::run_precompiled(&rt.program.module, pre, config);
            if let Ok(o) = &mut result {
                l1 = o.l1.take();
            }
            break Some(result);
        };
        let latency_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let Some(outcome) = outcome else {
            return (
                unserved(
                    idx,
                    req.program,
                    RequestStatus::Exhausted,
                    latency_ns,
                    self.config.max_retries,
                ),
                l1,
            );
        };
        let cycles = outcome.as_ref().map_or(0, |o| o.cycles);
        // The slow-request fault charges synthetic cycles against the
        // deadline only: the outputs (and so the fingerprint) are those
        // of a normal run that simply took too long.
        let mut charged_cycles = cycles;
        if let Some(plan) = &self.config.faults {
            if plan.fire(FailPoint::SlowRequest) {
                charged_cycles = charged_cycles.saturating_add(plan.slow_penalty_cycles());
            }
        }
        let deadline_cycles = req.deadline_cycles.or(self.config.deadline_cycles);
        let deadline_ns = req.deadline_ns.or(self.config.deadline_ns);
        let status = if deadline_cycles.is_some_and(|d| charged_cycles > d)
            || deadline_ns.is_some_and(|d| latency_ns > d)
        {
            RequestStatus::DeadlineExceeded
        } else {
            RequestStatus::Ok
        };
        (
            RequestResult {
                request: idx,
                program: req.program,
                worker,
                fingerprint: fingerprint_outcome(&outcome),
                cycles,
                latency_ns,
                trapped: outcome.is_err(),
                status,
                retries: failed_attempts,
            },
            l1,
        )
    }

    /// Applies `f` to every sharded table of every program.
    fn for_each_store(&self, f: impl Fn(&ShardedTable)) {
        for p in &self.programs {
            for t in p.store.iter() {
                f(t);
            }
        }
    }

    /// The sequential baseline: every request runs on the calling thread
    /// with *fresh private tables* (the paper's per-process scheme — no
    /// cross-request reuse). Fingerprints from [`ReuseService::run`] must
    /// equal this baseline's at any worker count; throughput and hit rate
    /// are what sharing is measured against.
    ///
    /// # Panics
    ///
    /// Panics if a request names a program index out of range, or if a
    /// program's table spec stopped being instantiable (the service
    /// already built a sharded store from the same specs in `new`).
    pub fn run_private_sequential(&self, requests: &[Request]) -> ServiceReport {
        let mut compiled: Vec<Option<vm::Precompiled<'_>>> =
            (0..self.programs.len()).map(|_| None).collect();
        let mut latency = LatencyHistogram::new();
        let mut results = Vec::with_capacity(requests.len());
        let mut table_stats = TableStats::default();
        let mut per_program: Vec<TableStats> = (0..self.programs.len())
            .map(|_| TableStats::default())
            .collect();
        let t0 = Instant::now();
        for (idx, req) in requests.iter().enumerate() {
            let rt = &self.programs[req.program];
            let pre =
                compiled[req.program].get_or_insert_with(|| self.precompile_program(&rt.program));
            let tables = private_tables(
                &rt.program.specs,
                &rt.program.policies,
                &rt.program.table_deps,
            )
            .unwrap_or_else(|e| panic!("{}: invalid table spec: {e}", rt.program.name));
            let mut config = self.run_config_for(req, None);
            config.tables = tables;
            let start = Instant::now();
            let outcome = vm::run_precompiled(&rt.program.module, pre, config);
            let latency_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            latency.record(latency_ns);
            if let Ok(o) = &outcome {
                for t in &o.tables {
                    table_stats.merge(t.stats());
                    per_program[req.program].merge(t.stats());
                }
            }
            results.push(RequestResult {
                request: idx,
                program: req.program,
                worker: 0,
                fingerprint: fingerprint_outcome(&outcome),
                cycles: outcome.as_ref().map_or(0, |o| o.cycles),
                latency_ns,
                trapped: outcome.is_err(),
                status: RequestStatus::Ok,
                retries: 0,
            });
        }
        let wall_seconds = t0.elapsed().as_secs_f64();
        // The baseline is fault-free by construction: every request is Ok.
        let mut latency_by_status: Vec<LatencyHistogram> = (0..RequestStatus::ALL.len())
            .map(|_| LatencyHistogram::new())
            .collect();
        latency_by_status[RequestStatus::Ok.index()] = latency.clone();
        ServiceReport {
            throughput_rps: if wall_seconds > 0.0 {
                results.len() as f64 / wall_seconds
            } else {
                0.0
            },
            per_worker: vec![results.len() as u64],
            results,
            wall_seconds,
            latency,
            latency_by_status,
            store_delta: table_stats,
            per_program_delta: per_program,
            retries: 0,
            degraded_flips: 0,
            faults: None,
        }
    }
}

/// Builds one program's sharded shared store from its table plan.
fn build_store(p: &ServiceProgram, config: &ServiceConfig) -> Result<Vec<ShardedTable>, SpecError> {
    p.specs
        .iter()
        .zip(&p.policies)
        .enumerate()
        .map(|(i, (spec, policy))| {
            let mut t = ShardedTable::try_from_spec(spec, config.shards)?;
            t.set_policy(GuardPolicy {
                enabled: config.adaptive,
                ..policy.clone()
            });
            t.set_fault_plan(config.faults.clone());
            t.set_admission(config.admission);
            if let Some(deps) = p.table_deps.get(i) {
                for (slot, &fpw) in deps.iter().enumerate() {
                    if fpw > 0 {
                        t.set_deps(slot, fpw);
                    }
                }
            }
            Ok(t)
        })
        .collect()
}

/// Builds one worker's L1 tier for a program: one cache per table, with
/// the program's dependency-fingerprint widths deciding which segments
/// are cacheable (fingerprinted segments never are; DESIGN.md §8i).
fn build_l1(p: &ServiceProgram, l1_slots: usize) -> Vec<L1Cache> {
    p.specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let deps = match p.table_deps.get(i) {
                Some(d) if !d.is_empty() => d.clone(),
                _ => vec![0; spec.out_words.len()],
            };
            L1Cache::new(l1_slots, spec, &deps)
        })
        .collect()
}

/// Instantiates a program's table plan as run-private tables — the same
/// construction `ReuseOutcome::try_make_tables` performs, duplicated here
/// so the service crate does not depend on the compiler crates.
fn private_tables(
    specs: &[TableSpec],
    policies: &[GuardPolicy],
    table_deps: &[Vec<usize>],
) -> Result<Vec<MemoTable>, SpecError> {
    specs
        .iter()
        .enumerate()
        .zip(policies)
        .map(|((i, spec), policy)| {
            let mut t = if spec.out_words.len() > 1 {
                MemoTable::try_merged(spec)?
            } else {
                MemoTable::try_direct(spec)?
            };
            t.set_policy(GuardPolicy {
                enabled: false,
                ..policy.clone()
            });
            if let Some(deps) = table_deps.get(i) {
                for (slot, &fpw) in deps.iter().enumerate() {
                    if fpw > 0 {
                        t.set_deps(slot, fpw);
                    }
                }
            }
            Ok(t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memoized_program(name: &str) -> ServiceProgram {
        // Run the real pipeline on a small program with a profitable
        // loop so the module carries Memo segments and table specs.
        let src = "
            int work(int x) {
                int i; int s;
                s = 0;
                for (i = 0; i < 200; i = i + 1) {
                    s = s + (x * i) % 97;
                }
                return s;
            }
            int main() {
                int n; int r; int j;
                n = input();
                r = 0;
                for (j = 0; j < 30; j = j + 1) {
                    r = r + work(n % 4);
                }
                print(r);
                return 0;
            }";
        let program = minic::parse(src).expect("parses");
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: vec![2],
                min_exec: 4,
                ..compreuse::PipelineConfig::default()
            },
        )
        .expect("pipeline");
        ServiceProgram {
            name: name.to_string(),
            module: vm::lower(&outcome.transformed),
            specs: outcome.specs,
            policies: outcome.policies,
            table_deps: outcome.table_deps,
            spec_plan: outcome.spec_plan,
        }
    }

    fn mix(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request::new(0, vec![(i % 5) as i64]))
            .collect()
    }

    #[test]
    fn concurrent_run_matches_sequential_baseline() {
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 3,
                shards: 4,
                queue_capacity: 2,
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let requests = mix(24);
        let baseline = svc.run_private_sequential(&requests);
        let report = svc.run(&requests);
        assert_eq!(report.fingerprints(), baseline.fingerprints());
        assert_eq!(report.results.len(), 24);
        assert!(report.results.iter().all(|r| !r.trapped));
        assert_eq!(report.latency.count(), 24);
        assert_eq!(report.per_worker.iter().sum::<u64>(), 24);
    }

    #[test]
    fn warm_store_raises_hit_ratio_not_fingerprints() {
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let requests = mix(16);
        let cold = svc.run(&requests);
        let warm = svc.run(&requests);
        assert_eq!(cold.fingerprints(), warm.fingerprints());
        assert!(
            warm.hit_ratio() >= cold.hit_ratio(),
            "warm {} < cold {}",
            warm.hit_ratio(),
            cold.hit_ratio()
        );
        // The second pass replays inputs the store has seen: every probe
        // the first pass recorded is now a hit.
        assert!(
            warm.hit_ratio() > 0.5,
            "warm hit ratio {}",
            warm.hit_ratio()
        );
    }

    #[test]
    fn store_persists_across_batches_until_reset() {
        let mut svc = ReuseService::new(vec![memoized_program("work")], ServiceConfig::default())
            .expect("valid specs");
        let before = svc.store_stats();
        assert_eq!(before.accesses, 0);
        svc.run(&mix(4));
        let after = svc.store_stats();
        assert!(after.accesses > 0);
        assert!(svc.store_bytes() > 0);
        svc.reset_stores().expect("specs still valid");
        assert_eq!(svc.store_stats().accesses, 0);
    }

    #[test]
    #[should_panic(expected = "request names program")]
    fn out_of_range_program_panics() {
        let svc = ReuseService::new(vec![memoized_program("work")], ServiceConfig::default())
            .expect("valid specs");
        svc.run(&[Request::new(9, vec![])]);
    }

    #[test]
    fn fault_free_batches_are_all_ok_with_clean_accounting() {
        let svc = ReuseService::new(vec![memoized_program("work")], ServiceConfig::default())
            .expect("valid specs");
        let requests = mix(12);
        let report = svc.run(&requests);
        assert!(report.accounting_holds(12));
        assert_eq!(report.status_counts(), [12, 0, 0, 0]);
        assert_eq!(report.retries, 0);
        assert_eq!(report.degraded_flips, 0);
        assert!(report.faults.is_none());
        assert_eq!(report.executed_fingerprints().len(), 12);
        assert_eq!(report.latency_by_status[0].count(), 12);
    }

    #[test]
    fn cycle_deadline_marks_requests_without_changing_outputs() {
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 2,
                deadline_cycles: Some(1), // everything is over budget
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let requests = mix(8);
        let baseline = svc.run_private_sequential(&requests);
        let report = svc.run(&requests);
        assert_eq!(report.status_counts(), [0, 0, 8, 0]);
        // Deadline-exceeded requests still executed: outputs must match.
        assert_eq!(report.fingerprints(), baseline.fingerprints());
        assert_eq!(report.latency.count(), 8, "executed set covers them");
    }

    #[test]
    fn per_request_deadline_overrides_the_config_default() {
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 1,
                deadline_cycles: Some(1),
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let mut generous = Request::new(0, vec![1]);
        generous.deadline_cycles = Some(u64::MAX);
        let tight = Request::new(0, vec![2]);
        let report = svc.run(&[generous, tight]);
        assert_eq!(report.results[0].status, RequestStatus::Ok);
        assert_eq!(report.results[1].status, RequestStatus::DeadlineExceeded);
    }

    #[test]
    fn injected_queue_rejections_retry_and_preserve_executed_outputs() {
        let plan = Arc::new(FaultPlan::new(77).with_rate(FailPoint::QueueReject, 0.3));
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 2,
                backoff_base_ns: 100,
                backoff_cap_ns: 1_000,
                faults: Some(plan),
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let requests = mix(40);
        let baseline = svc.run_private_sequential(&requests);
        let report = svc.run(&requests);
        assert!(report.accounting_holds(40));
        assert!(report.retries > 0, "30% rejection rate must cause retries");
        let counters = report.faults.expect("plan installed");
        assert!(counters.fired_at(FailPoint::QueueReject) > 0);
        let base = baseline.fingerprints();
        for (idx, fp) in report.executed_fingerprints() {
            assert_eq!(fp, base[idx], "request {idx} diverged under faults");
        }
    }

    #[test]
    fn watermark_shedding_degrades_and_recovers_the_stores() {
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 1,
                queue_capacity: 4,
                high_watermark: Some(2),
                low_watermark: 0,
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let requests = mix(60);
        let baseline = svc.run_private_sequential(&requests);
        let report = svc.run(&requests);
        assert!(report.accounting_holds(60));
        let [ok, shed, deadline, exhausted] = report.status_counts();
        assert_eq!(ok + shed + deadline + exhausted, 60);
        assert!(
            shed > 0,
            "one worker behind a 2-deep watermark must shed some of 60 requests"
        );
        assert!(report.degraded_flips >= 1);
        // After the batch the stores are re-armed (guards are disabled by
        // default, so they return straight to Active).
        assert!(
            svc.store_states().iter().all(|&s| s == TableState::Active),
            "stores must be restored after the batch"
        );
        // Shed requests have fingerprint 0 and are excluded; executed
        // ones still match the baseline.
        let base = baseline.fingerprints();
        for (idx, fp) in report.executed_fingerprints() {
            assert_eq!(fp, base[idx]);
        }
        assert_eq!(
            report.latency_by_status[RequestStatus::Shed.index()].count(),
            shed
        );
    }

    #[test]
    fn tiered_workers_report_l1_hits_and_match_the_baseline() {
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 2,
                l1_slots: 128,
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let requests = mix(24);
        let baseline = svc.run_private_sequential(&requests);
        svc.run(&requests); // warm the store so L2 hits can promote
        let warm = svc.run(&requests);
        assert_eq!(warm.fingerprints(), baseline.fingerprints());
        assert!(
            warm.store_delta.l1_hits > 0,
            "a warm tiered batch must answer some probes from the L1: {:?}",
            warm.store_delta
        );
        assert!(warm.store_delta.promotions > 0);
        assert!(
            warm.store_delta.hits >= warm.store_delta.l1_hits,
            "l1_hits is a subset of hits"
        );
    }

    #[test]
    fn untiered_runs_report_no_l1_traffic() {
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 2,
                l1_slots: 0,
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let report = svc.run(&mix(8));
        assert_eq!(report.store_delta.l1_hits, 0);
        assert_eq!(report.store_delta.promotions, 0);
    }

    #[test]
    fn snapshot_restore_resumes_warm_with_equal_fingerprints() {
        let dir = std::env::temp_dir().join("compreuse-service-snap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.snap");
        let requests = mix(24);
        let mut svc = ReuseService::new(vec![memoized_program("work")], ServiceConfig::default())
            .expect("valid specs");
        let baseline = svc.run_private_sequential(&requests);
        svc.run(&requests); // warm the store
        let warm = svc.run(&requests);
        let stats_before = svc.store_stats();
        svc.snapshot_to(&path).expect("snapshot writes");
        // "Restart": reset to cold, then restore the snapshot.
        svc.reset_stores().expect("specs valid");
        assert_eq!(svc.store_stats().accesses, 0, "reset is cold");
        let outcome = svc.restore_from(&path);
        assert!(outcome.is_restored(), "restore failed: {outcome:?}");
        assert_eq!(
            svc.store_stats(),
            stats_before,
            "statistics baseline survives the restart"
        );
        let restored = svc.run(&requests);
        assert_eq!(restored.fingerprints(), baseline.fingerprints());
        assert!(
            restored.hit_ratio() >= warm.hit_ratio() - 0.05,
            "restored batch must run warm: restored {} vs warm {}",
            restored.hit_ratio(),
            warm.hit_ratio()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_snapshots_cold_start_instead_of_panicking() {
        let dir = std::env::temp_dir().join("compreuse-service-snap-broken");
        std::fs::create_dir_all(&dir).unwrap();
        let requests = mix(8);
        let mut svc = ReuseService::new(vec![memoized_program("work")], ServiceConfig::default())
            .expect("valid specs");
        let baseline = svc.run_private_sequential(&requests);
        svc.run(&requests);
        let path = dir.join("store.snap");
        svc.snapshot_to(&path).expect("snapshot writes");
        // Corrupt the file in place.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xA5;
        std::fs::write(&path, &bytes).unwrap();
        let outcome = svc.restore_from(&path);
        assert!(
            matches!(outcome, RestoreOutcome::ColdStart(_)),
            "corrupt snapshot must cold-start, got {outcome:?}"
        );
        assert_eq!(svc.store_stats().accesses, 0, "cold start is empty");
        // The cold service still serves correctly.
        let report = svc.run(&requests);
        assert_eq!(report.fingerprints(), baseline.fingerprints());
        // A missing file cold-starts too.
        let outcome = svc.restore_from(&dir.join("absent.snap"));
        assert!(matches!(
            outcome,
            RestoreOutcome::ColdStart(SnapshotError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_shard_faults_retry_to_completion() {
        let plan = Arc::new(FaultPlan::new(13).with_rate(FailPoint::ShardPoison, 0.2));
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 2,
                backoff_base_ns: 100,
                backoff_cap_ns: 1_000,
                faults: Some(plan),
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let requests = mix(40);
        let baseline = svc.run_private_sequential(&requests);
        let report = svc.run(&requests);
        assert!(report.accounting_holds(40));
        let counters = report.faults.expect("plan installed");
        assert!(counters.fired_at(FailPoint::ShardPoison) > 0);
        assert!(
            svc.poison_recoveries() > 0,
            "poisoned shards must have been recovered"
        );
        let base = baseline.fingerprints();
        for (idx, fp) in report.executed_fingerprints() {
            assert_eq!(fp, base[idx], "request {idx} diverged after poisoning");
        }
    }
}
