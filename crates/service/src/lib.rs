//! # service — a concurrent reuse service over shared memo tables
//!
//! Part of the `compreuse` workspace (a reproduction of Ding & Li,
//! *A Compiler Scheme for Reusing Intermediate Computation Results*,
//! CGO 2004). The paper memoizes within one process; this crate asks the
//! next question — what if many requests for the same programs could
//! share one reuse store? A [`ReuseService`] owns a set of compiled
//! programs, one sharded concurrent memo store per program
//! ([`memo_runtime::ShardedTable`]), and a bounded request queue
//! ([`queue::BoundedQueue`]). `K` worker threads each hold a private VM
//! (bytecode precompiled once per program per worker) and probe the
//! shared store, so a result computed for one request is reused by every
//! later request with the same intermediate inputs — across threads.
//!
//! ## Equivalence contract (DESIGN.md §8e)
//!
//! Program *results* (printed output and return value) are identical to a
//! sequential run with private tables: a memo entry stores the exact
//! outputs of a segment body keyed by its exact inputs, so a hit replays
//! precisely what a miss would recompute, no matter which request
//! recorded it. Per-request [`RequestResult::fingerprint`] hashes only
//! these store-independent parts. Cycle ledgers, hit rates and collision
//! rates *are* store-order dependent — a request may hit on an entry some
//! other request recorded — which is the point of sharing, and they are
//! reported per run, never folded into fingerprints.
//!
//! ```
//! use service::{Request, ReuseService, ServiceConfig, ServiceProgram};
//!
//! let checked = minic::compile(
//!     "int f(int x) { int i; int s; s = 0;
//!        for (i = 0; i < 100; i = i + 1) { s = s + x * i; } return s; }
//!      int main() { print(f(input())); return 0; }",
//! )
//! .unwrap();
//! let svc = ReuseService::new(
//!     vec![ServiceProgram {
//!         name: "square".into(),
//!         module: vm::lower(&checked),
//!         specs: vec![],
//!         policies: vec![],
//!     }],
//!     ServiceConfig { workers: 2, ..ServiceConfig::default() },
//! )
//! .unwrap();
//! let requests: Vec<Request> = (0..8).map(|i| Request { program: 0, input: vec![i % 3] }).collect();
//! let report = svc.run(&requests);
//! let baseline = svc.run_private_sequential(&requests);
//! assert_eq!(report.fingerprints(), baseline.fingerprints());
//! # Ok::<(), memo_runtime::SpecError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fingerprint;
pub mod histogram;
pub mod queue;

use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use memo_runtime::{GuardPolicy, MemoTable, ShardedTable, SpecError, TableSpec, TableStats};
use vm::{CostModel, Module, RunConfig};

pub use fingerprint::fingerprint_outcome;
pub use histogram::LatencyHistogram;
pub use queue::BoundedQueue;

/// One program the service can serve: the memoized module plus the table
/// plan the pipeline produced for it ([`compreuse::ReuseOutcome`]'s
/// `specs` and `policies`, by value so the service crate stays independent
/// of the compiler crates).
#[derive(Debug)]
pub struct ServiceProgram {
    /// Display name (workload name in the bench harness).
    pub name: String,
    /// The lowered, memoized module.
    pub module: Module,
    /// Planned table specs, indexed by the module's table ids.
    pub specs: Vec<TableSpec>,
    /// Per-table adaptive-guard policies (same length as `specs`).
    pub policies: Vec<GuardPolicy>,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Lock shards per table (rounded up to a power of two).
    pub shards: usize,
    /// Bounded queue capacity — in-flight back-pressure limit.
    pub queue_capacity: usize,
    /// Whether the per-shard adaptive guard may act (default: telemetry
    /// only, matching `ReuseOutcome::make_tables`).
    pub adaptive: bool,
    /// Cost model the programs were planned under; bytecode is compiled
    /// against it once per worker.
    pub cost: CostModel,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            shards: 8,
            queue_capacity: 64,
            adaptive: false,
            cost: CostModel::o0(),
        }
    }
}

/// One request: which program to run and its input stream.
#[derive(Debug, Clone)]
pub struct Request {
    /// Index into the service's program list.
    pub program: usize,
    /// Input stream consumed by the program's `input()` builtin.
    pub input: Vec<i64>,
}

/// The per-request record a worker produces.
#[derive(Debug, Clone)]
pub struct RequestResult {
    /// Index of the request in the submitted batch.
    pub request: usize,
    /// Program index the request named.
    pub program: usize,
    /// Worker that served it (0 for the sequential baseline).
    pub worker: usize,
    /// Store-independent outcome fingerprint ([`fingerprint_outcome`]).
    pub fingerprint: u64,
    /// Modelled cycles (store-order dependent under sharing).
    pub cycles: u64,
    /// Host wall-clock latency of the run, in nanoseconds.
    pub latency_ns: u64,
    /// Whether the program trapped (the fingerprint then hashes the trap).
    pub trapped: bool,
}

/// Everything one batch run produced.
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-request records, indexed by request position in the batch.
    pub results: Vec<RequestResult>,
    /// Host wall-clock for the whole batch, seconds.
    pub wall_seconds: f64,
    /// Requests per wall-clock second.
    pub throughput_rps: f64,
    /// Merged latency distribution across workers.
    pub latency: LatencyHistogram,
    /// Requests served per worker.
    pub per_worker: Vec<u64>,
    /// Aggregate store statistics accumulated by *this batch* (delta over
    /// the run; the store itself keeps accumulating across batches).
    pub store_delta: TableStats,
}

impl ServiceReport {
    /// The batch's fingerprints in request order (the determinism
    /// invariant: equal across worker counts and store temperatures).
    pub fn fingerprints(&self) -> Vec<u64> {
        self.results.iter().map(|r| r.fingerprint).collect()
    }

    /// Hit ratio of the store traffic this batch generated.
    pub fn hit_ratio(&self) -> f64 {
        self.store_delta.hit_ratio()
    }
}

struct ProgramRt {
    program: ServiceProgram,
    store: Arc<Vec<ShardedTable>>,
}

/// The service: programs, their shared stores, and a worker-pool runner.
///
/// `run` may be called repeatedly; the shared stores persist between
/// batches, so a second identical batch runs warm (higher hit rate, same
/// fingerprints).
pub struct ReuseService {
    programs: Vec<ProgramRt>,
    config: ServiceConfig,
}

impl std::fmt::Debug for ReuseService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReuseService")
            .field("programs", &self.programs.len())
            .field("config", &self.config)
            .finish()
    }
}

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl ReuseService {
    /// Builds the service: one sharded store per program, policies
    /// installed per shard (enabled only with [`ServiceConfig::adaptive`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when a program's table spec is structurally
    /// invalid.
    pub fn new(programs: Vec<ServiceProgram>, config: ServiceConfig) -> Result<Self, SpecError> {
        let programs = programs
            .into_iter()
            .map(|p| {
                let store = build_store(&p, &config)?;
                Ok(ProgramRt {
                    program: p,
                    store: Arc::new(store),
                })
            })
            .collect::<Result<_, SpecError>>()?;
        Ok(ReuseService { programs, config })
    }

    /// Replaces every shared store with a fresh, empty one — a cold start
    /// without re-running the pipeline (worker-scaling sweeps reset
    /// between points so each worker count is measured from the same
    /// store temperature).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when a table spec is structurally invalid
    /// (cannot happen for specs that already built once).
    pub fn reset_stores(&mut self) -> Result<(), SpecError> {
        for rt in &mut self.programs {
            rt.store = Arc::new(build_store(&rt.program, &self.config)?);
        }
        Ok(())
    }

    /// Changes the worker count for subsequent [`ReuseService::run`] calls.
    pub fn set_workers(&mut self, workers: usize) {
        self.config.workers = workers.max(1);
    }

    /// The currently configured worker count.
    pub fn workers(&self) -> usize {
        self.config.workers.max(1)
    }

    /// Program names, in index order.
    pub fn program_names(&self) -> Vec<&str> {
        self.programs
            .iter()
            .map(|p| p.program.name.as_str())
            .collect()
    }

    /// Aggregate statistics over every program's shared store.
    pub fn store_stats(&self) -> TableStats {
        let mut total = TableStats::default();
        for p in &self.programs {
            for t in p.store.iter() {
                total.merge(&t.stats());
            }
        }
        total
    }

    /// Total bytes held by the shared stores.
    pub fn store_bytes(&self) -> usize {
        self.programs
            .iter()
            .map(|p| p.store.iter().map(ShardedTable::bytes).sum::<usize>())
            .sum()
    }

    fn run_config_for(&self, req: &Request, store: Option<Arc<Vec<ShardedTable>>>) -> RunConfig {
        RunConfig {
            cost: self.config.cost.clone(),
            input: req.input.clone(),
            shared_tables: store,
            ..RunConfig::default()
        }
    }

    /// Serves one batch on `config.workers` threads against the shared
    /// stores. Requests flow through the bounded queue in submission
    /// order; completion order is scheduler-dependent, but `results` is
    /// indexed by submission position either way.
    ///
    /// # Panics
    ///
    /// Panics if a request names a program index out of range.
    pub fn run(&self, requests: &[Request]) -> ServiceReport {
        for r in requests {
            assert!(
                r.program < self.programs.len(),
                "request names program {} but the service has {}",
                r.program,
                self.programs.len()
            );
        }
        let workers = self.config.workers.max(1);
        let queue: BoundedQueue<usize> = BoundedQueue::new(self.config.queue_capacity);
        let results: Mutex<Vec<Option<RequestResult>>> = Mutex::new(vec![None; requests.len()]);
        let gathered: Mutex<Vec<LatencyHistogram>> = Mutex::new(Vec::new());
        let before = self.store_stats();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for w in 0..workers {
                let queue = &queue;
                let results = &results;
                let gathered = &gathered;
                s.spawn(move || {
                    // One lazily-filled bytecode cache per worker: each
                    // program is compiled at most once per worker, then
                    // every request for it reuses the bytecode.
                    let mut compiled: Vec<Option<vm::Precompiled<'_>>> =
                        (0..self.programs.len()).map(|_| None).collect();
                    let mut hist = LatencyHistogram::new();
                    while let Some(idx) = queue.pop() {
                        let req = &requests[idx];
                        let rt = &self.programs[req.program];
                        let pre = compiled[req.program].get_or_insert_with(|| {
                            vm::precompile(&rt.program.module, &self.config.cost)
                        });
                        let start = Instant::now();
                        let outcome = vm::run_precompiled(
                            &rt.program.module,
                            pre,
                            self.run_config_for(req, Some(Arc::clone(&rt.store))),
                        );
                        let latency_ns =
                            start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        hist.record(latency_ns);
                        let record = RequestResult {
                            request: idx,
                            program: req.program,
                            worker: w,
                            fingerprint: fingerprint_outcome(&outcome),
                            cycles: outcome.as_ref().map_or(0, |o| o.cycles),
                            latency_ns,
                            trapped: outcome.is_err(),
                        };
                        recover(results.lock())[idx] = Some(record);
                    }
                    recover(gathered.lock()).push(hist);
                });
            }
            // The caller's thread is the producer: bounded queue, so a
            // long batch exerts back-pressure here instead of buffering
            // everything.
            for idx in 0..requests.len() {
                if queue.push(idx).is_err() {
                    break;
                }
            }
            queue.close();
        });
        let wall_seconds = t0.elapsed().as_secs_f64();
        let after = self.store_stats();

        let results: Vec<RequestResult> = recover(results.into_inner())
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("request {i} was never served")))
            .collect();
        let mut latency = LatencyHistogram::new();
        let mut per_worker = vec![0u64; workers];
        for hist in recover(gathered.into_inner()) {
            latency.merge(&hist);
        }
        for r in &results {
            per_worker[r.worker] += 1;
        }
        ServiceReport {
            throughput_rps: if wall_seconds > 0.0 {
                results.len() as f64 / wall_seconds
            } else {
                0.0
            },
            results,
            wall_seconds,
            latency,
            per_worker,
            store_delta: after.delta_since(&before),
        }
    }

    /// The sequential baseline: every request runs on the calling thread
    /// with *fresh private tables* (the paper's per-process scheme — no
    /// cross-request reuse). Fingerprints from [`ReuseService::run`] must
    /// equal this baseline's at any worker count; throughput and hit rate
    /// are what sharing is measured against.
    ///
    /// # Panics
    ///
    /// Panics if a request names a program index out of range, or if a
    /// program's table spec stopped being instantiable (the service
    /// already built a sharded store from the same specs in `new`).
    pub fn run_private_sequential(&self, requests: &[Request]) -> ServiceReport {
        let mut compiled: Vec<Option<vm::Precompiled<'_>>> =
            (0..self.programs.len()).map(|_| None).collect();
        let mut latency = LatencyHistogram::new();
        let mut results = Vec::with_capacity(requests.len());
        let mut table_stats = TableStats::default();
        let t0 = Instant::now();
        for (idx, req) in requests.iter().enumerate() {
            let rt = &self.programs[req.program];
            let pre = compiled[req.program]
                .get_or_insert_with(|| vm::precompile(&rt.program.module, &self.config.cost));
            let tables = private_tables(&rt.program.specs, &rt.program.policies)
                .unwrap_or_else(|e| panic!("{}: invalid table spec: {e}", rt.program.name));
            let mut config = self.run_config_for(req, None);
            config.tables = tables;
            let start = Instant::now();
            let outcome = vm::run_precompiled(&rt.program.module, pre, config);
            let latency_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            latency.record(latency_ns);
            if let Ok(o) = &outcome {
                for t in &o.tables {
                    table_stats.merge(t.stats());
                }
            }
            results.push(RequestResult {
                request: idx,
                program: req.program,
                worker: 0,
                fingerprint: fingerprint_outcome(&outcome),
                cycles: outcome.as_ref().map_or(0, |o| o.cycles),
                latency_ns,
                trapped: outcome.is_err(),
            });
        }
        let wall_seconds = t0.elapsed().as_secs_f64();
        ServiceReport {
            throughput_rps: if wall_seconds > 0.0 {
                results.len() as f64 / wall_seconds
            } else {
                0.0
            },
            per_worker: vec![results.len() as u64],
            results,
            wall_seconds,
            latency,
            store_delta: table_stats,
        }
    }
}

/// Builds one program's sharded shared store from its table plan.
fn build_store(p: &ServiceProgram, config: &ServiceConfig) -> Result<Vec<ShardedTable>, SpecError> {
    p.specs
        .iter()
        .zip(&p.policies)
        .map(|(spec, policy)| {
            let mut t = ShardedTable::try_from_spec(spec, config.shards)?;
            t.set_policy(GuardPolicy {
                enabled: config.adaptive,
                ..policy.clone()
            });
            Ok(t)
        })
        .collect()
}

/// Instantiates a program's table plan as run-private tables — the same
/// construction `ReuseOutcome::try_make_tables` performs, duplicated here
/// so the service crate does not depend on the compiler crates.
fn private_tables(
    specs: &[TableSpec],
    policies: &[GuardPolicy],
) -> Result<Vec<MemoTable>, SpecError> {
    specs
        .iter()
        .zip(policies)
        .map(|(spec, policy)| {
            let mut t = if spec.out_words.len() > 1 {
                MemoTable::try_merged(spec)?
            } else {
                MemoTable::try_direct(spec)?
            };
            t.set_policy(GuardPolicy {
                enabled: false,
                ..policy.clone()
            });
            Ok(t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memoized_program(name: &str) -> ServiceProgram {
        // Run the real pipeline on a small program with a profitable
        // loop so the module carries Memo segments and table specs.
        let src = "
            int work(int x) {
                int i; int s;
                s = 0;
                for (i = 0; i < 200; i = i + 1) {
                    s = s + (x * i) % 97;
                }
                return s;
            }
            int main() {
                int n; int r; int j;
                n = input();
                r = 0;
                for (j = 0; j < 30; j = j + 1) {
                    r = r + work(n % 4);
                }
                print(r);
                return 0;
            }";
        let program = minic::parse(src).expect("parses");
        let outcome = compreuse::run_pipeline(
            &program,
            &compreuse::PipelineConfig {
                profile_input: vec![2],
                min_exec: 4,
                ..compreuse::PipelineConfig::default()
            },
        )
        .expect("pipeline");
        ServiceProgram {
            name: name.to_string(),
            module: vm::lower(&outcome.transformed),
            specs: outcome.specs,
            policies: outcome.policies,
        }
    }

    fn mix(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                program: 0,
                input: vec![(i % 5) as i64],
            })
            .collect()
    }

    #[test]
    fn concurrent_run_matches_sequential_baseline() {
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 3,
                shards: 4,
                queue_capacity: 2,
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let requests = mix(24);
        let baseline = svc.run_private_sequential(&requests);
        let report = svc.run(&requests);
        assert_eq!(report.fingerprints(), baseline.fingerprints());
        assert_eq!(report.results.len(), 24);
        assert!(report.results.iter().all(|r| !r.trapped));
        assert_eq!(report.latency.count(), 24);
        assert_eq!(report.per_worker.iter().sum::<u64>(), 24);
    }

    #[test]
    fn warm_store_raises_hit_ratio_not_fingerprints() {
        let svc = ReuseService::new(
            vec![memoized_program("work")],
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
        .expect("valid specs");
        let requests = mix(16);
        let cold = svc.run(&requests);
        let warm = svc.run(&requests);
        assert_eq!(cold.fingerprints(), warm.fingerprints());
        assert!(
            warm.hit_ratio() >= cold.hit_ratio(),
            "warm {} < cold {}",
            warm.hit_ratio(),
            cold.hit_ratio()
        );
        // The second pass replays inputs the store has seen: every probe
        // the first pass recorded is now a hit.
        assert!(
            warm.hit_ratio() > 0.5,
            "warm hit ratio {}",
            warm.hit_ratio()
        );
    }

    #[test]
    fn store_persists_across_batches_until_reset() {
        let mut svc = ReuseService::new(vec![memoized_program("work")], ServiceConfig::default())
            .expect("valid specs");
        let before = svc.store_stats();
        assert_eq!(before.accesses, 0);
        svc.run(&mix(4));
        let after = svc.store_stats();
        assert!(after.accesses > 0);
        assert!(svc.store_bytes() > 0);
        svc.reset_stores().expect("specs still valid");
        assert_eq!(svc.store_stats().accesses, 0);
    }

    #[test]
    #[should_panic(expected = "request names program")]
    fn out_of_range_program_panics() {
        let svc = ReuseService::new(vec![memoized_program("work")], ServiceConfig::default())
            .expect("valid specs");
        svc.run(&[Request {
            program: 9,
            input: vec![],
        }]);
    }
}
