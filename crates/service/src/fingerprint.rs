//! Request outcome fingerprints.
//!
//! A fingerprint hashes exactly the parts of a run that the reuse scheme
//! guarantees are store-independent: the printed output and the return
//! value (a trap hashes its rendered message instead). Cycle counts, hit
//! rates and table statistics are deliberately excluded — they depend on
//! the order concurrent requests populate a shared store (DESIGN.md §8e)
//! — so a service run at any worker count must fingerprint identically to
//! the sequential baseline.

use vm::{Outcome, Trap};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `state` (seed with [`FNV_OFFSET`]
/// via [`fingerprint_outcome`]; exposed for chaining in tests).
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Fingerprints a finished request: printed output + return value for a
/// normal exit, the rendered trap message for a fault. Two results get the
/// same fingerprint exactly when the observable program behaviour matched.
pub fn fingerprint_outcome(result: &Result<Outcome, Trap>) -> u64 {
    match result {
        Ok(out) => {
            let mut h = fnv1a(FNV_OFFSET, b"ok:");
            h = fnv1a(h, out.output_text().as_bytes());
            fnv1a(h, &out.ret.to_le_bytes())
        }
        Err(trap) => fnv1a(FNV_OFFSET, format!("trap:{trap}").as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> Result<Outcome, Trap> {
        let checked = minic::compile(src).expect("compiles");
        let module = vm::lower(&checked);
        vm::run(&module, vm::RunConfig::default())
    }

    #[test]
    fn equal_behaviour_equal_fingerprint() {
        let a = run_src("int main() { print(41 + 1); return 3; }");
        let b = run_src("int main() { print(42); return 3; }");
        assert_eq!(fingerprint_outcome(&a), fingerprint_outcome(&b));
    }

    #[test]
    fn output_and_ret_both_distinguish() {
        let base = run_src("int main() { print(1); return 0; }");
        let other_out = run_src("int main() { print(2); return 0; }");
        let other_ret = run_src("int main() { print(1); return 1; }");
        assert_ne!(fingerprint_outcome(&base), fingerprint_outcome(&other_out));
        assert_ne!(fingerprint_outcome(&base), fingerprint_outcome(&other_ret));
    }

    #[test]
    fn cycles_do_not_affect_fingerprint() {
        let mut fast = run_src("int main() { print(7); return 0; }").unwrap();
        let slow = run_src(
            "int main() { int i; int s; s = 0;\
             for (i = 0; i < 100; i = i + 1) { s = s + i; }\
             print(7); return 0; }",
        )
        .unwrap();
        assert_ne!(fast.cycles, slow.cycles);
        fast.cycles = slow.cycles; // irrelevant either way
        assert_eq!(
            fingerprint_outcome(&Ok(fast)),
            fingerprint_outcome(&Ok(slow))
        );
    }

    #[test]
    fn trap_fingerprints_are_stable_and_distinct() {
        let trap = run_src("int main() { int x; x = 1 / 0; return x; }");
        assert!(trap.is_err());
        let again = run_src("int main() { int x; x = 1 / 0; return x; }");
        assert_eq!(fingerprint_outcome(&trap), fingerprint_outcome(&again));
        let ok = run_src("int main() { return 0; }");
        assert_ne!(fingerprint_outcome(&trap), fingerprint_outcome(&ok));
    }
}
