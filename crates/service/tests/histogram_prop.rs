//! Property tests for [`service::LatencyHistogram`].
//!
//! The histogram backs every latency figure the service reports, and the
//! chaos gate trusts three of its contracts without re-checking them:
//! quantiles are monotone in `q` and never leave the observed range, and
//! merging per-worker histograms is exactly equivalent to recording the
//! concatenated sample stream into one histogram.

use proptest::prelude::*;
use service::LatencyHistogram;

/// Latencies spanning the full bucket range: exact zeros, small counts,
/// microseconds, and values near `u64::MAX`.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1..16u64,
        1_000..2_000_000u64,
        (u64::MAX - 1000)..u64::MAX,
    ]
}

fn record_all(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &ns in samples {
        h.record(ns);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// `quantile_ns` never decreases as `q` grows, and every answer on a
    /// non-empty histogram stays inside `[min_ns, max_ns]`.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(sample(), 1..200),
    ) {
        let h = record_all(&samples);
        let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut prev = 0u64;
        for &q in &qs {
            let v = h.quantile_ns(q);
            prop_assert!(v >= prev, "quantile fell from {prev} to {v} at q={q}");
            prop_assert!(
                (h.min_ns()..=h.max_ns()).contains(&v),
                "quantile {v} at q={q} outside [{}, {}]",
                h.min_ns(),
                h.max_ns()
            );
            prev = v;
        }
        // q=1 crosses the bucket holding the largest sample, whose
        // ceiling the clamp pins to exactly `max_ns`.
        prop_assert_eq!(h.quantile_ns(1.0), h.max_ns());
    }

    /// Merging histograms of two streams equals recording their
    /// concatenation: same count, mean, extremes, buckets, and quantiles.
    #[test]
    fn merge_equals_recording_the_concatenated_stream(
        left in prop::collection::vec(sample(), 0..120),
        right in prop::collection::vec(sample(), 0..120),
    ) {
        let mut merged = record_all(&left);
        merged.merge(&record_all(&right));
        let whole: Vec<u64> = left.iter().chain(&right).copied().collect();
        let expected = record_all(&whole);
        prop_assert_eq!(merged.count(), expected.count());
        prop_assert_eq!(merged.min_ns(), expected.min_ns());
        prop_assert_eq!(merged.max_ns(), expected.max_ns());
        prop_assert!((merged.mean_ns() - expected.mean_ns()).abs() < 1e-6);
        prop_assert_eq!(merged.nonzero_buckets(), expected.nonzero_buckets());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile_ns(q), expected.quantile_ns(q));
        }
    }

    /// An empty histogram is the identity for merge, in either order.
    #[test]
    fn empty_histogram_is_merge_identity(
        samples in prop::collection::vec(sample(), 0..60),
    ) {
        let base = record_all(&samples);
        let mut left = LatencyHistogram::new();
        left.merge(&base);
        let mut right = base.clone();
        right.merge(&LatencyHistogram::new());
        for h in [&left, &right] {
            prop_assert_eq!(h.count(), base.count());
            prop_assert_eq!(h.min_ns(), base.min_ns());
            prop_assert_eq!(h.max_ns(), base.max_ns());
            prop_assert_eq!(h.nonzero_buckets(), base.nonzero_buckets());
        }
    }
}
