//! Model-based property tests for [`service::BoundedQueue`].
//!
//! The queue is the service's only hand-off point, so its delivery
//! contract is load-bearing for the chaos invariants: an item the queue
//! *accepted* is delivered exactly once (close drains, never drops), and
//! an item it *rejected* — by fault injection or closure — is handed
//! back to the caller and never delivered. The tests drive the real
//! queue alongside a `VecDeque` model through scripted interleavings,
//! and a concurrent sweep checks the same conservation law under racing
//! producers and consumers.

use proptest::prelude::*;
use service::{BoundedQueue, PushError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use memo_runtime::{FailPoint, FaultPlan};

/// One scripted step. Pops are only *attempted* when they cannot block
/// (model non-empty, or queue closed), and pushes only when they cannot
/// block (model below capacity, or queue closed) — the single-threaded
/// script must never wait on itself.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push,
    Pop,
    Close,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Push),
        Just(Op::Push),
        Just(Op::Pop),
        Just(Op::Close)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// Scripted single-thread interleavings against a `VecDeque` model:
    /// accepted items come back in FIFO order, rejected and post-close
    /// items are returned verbatim and never surface again, and after
    /// close the queue drains exactly the model's residue.
    #[test]
    fn interleavings_match_the_fifo_model(
        ops in prop::collection::vec(op(), 1..120),
        capacity in 1..5usize,
        seed in 0..1000u64,
        rate_pct in 0..60u32,
    ) {
        let plan = Arc::new(
            FaultPlan::new(seed)
                .with_rate(FailPoint::QueueReject, f64::from(rate_pct) / 100.0),
        );
        let q: BoundedQueue<u64> = BoundedQueue::with_faults(capacity, Some(plan));
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut closed = false;
        let mut next_item = 0u64;
        let mut rejected: Vec<u64> = Vec::new();
        let mut delivered: Vec<u64> = Vec::new();
        for o in ops {
            match o {
                Op::Push => {
                    if model.len() >= q.capacity() && !closed {
                        continue; // a real push would block on itself
                    }
                    let item = next_item;
                    next_item += 1;
                    match q.push(item) {
                        Ok(()) => {
                            prop_assert!(!closed, "closed queue accepted {item}");
                            model.push_back(item);
                        }
                        Err(PushError::Closed(back)) => {
                            prop_assert!(closed, "open queue claimed closure");
                            prop_assert_eq!(back, item);
                            rejected.push(back);
                        }
                        Err(PushError::Rejected(back)) => {
                            prop_assert_eq!(back, item);
                            rejected.push(back);
                        }
                    }
                }
                Op::Pop => {
                    if model.is_empty() && !closed {
                        continue; // a real pop would block on itself
                    }
                    let got = q.pop();
                    prop_assert_eq!(got, model.pop_front(), "pop order diverged");
                    if let Some(v) = got {
                        delivered.push(v);
                    }
                }
                Op::Close => {
                    q.close();
                    closed = true;
                }
            }
        }
        // Close drains exactly the already-accepted items, in order.
        q.close();
        while let Some(v) = q.pop() {
            prop_assert_eq!(Some(v), model.pop_front(), "drain order diverged");
            delivered.push(v);
        }
        prop_assert!(model.is_empty(), "accepted items were lost on close");
        prop_assert_eq!(q.pop(), None);
        // No item was both handed back and delivered.
        for r in &rejected {
            prop_assert!(
                !delivered.contains(r),
                "item {r} was rejected AND delivered"
            );
        }
    }

    /// Conservation under real races: every pushed item is either
    /// delivered exactly once or handed back exactly once, never both,
    /// and close loses nothing that was accepted.
    #[test]
    fn concurrent_traffic_conserves_items(
        producers in 1..4usize,
        consumers in 1..4usize,
        per_producer in 1..40u64,
        capacity in 1..5usize,
        seed in 0..1000u64,
    ) {
        let plan = Arc::new(FaultPlan::new(seed).with_rate(FailPoint::QueueReject, 0.2));
        let q: BoundedQueue<u64> = BoundedQueue::with_faults(capacity, Some(plan));
        let delivered_sum = AtomicU64::new(0);
        let delivered_count = AtomicU64::new(0);
        let rejected_sum = AtomicU64::new(0);
        let rejected_count = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..consumers {
                s.spawn(|| {
                    while let Some(v) = q.pop() {
                        delivered_sum.fetch_add(v, Ordering::Relaxed);
                        delivered_count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            std::thread::scope(|p| {
                for t in 0..producers as u64 {
                    let q = &q;
                    let rejected_sum = &rejected_sum;
                    let rejected_count = &rejected_count;
                    p.spawn(move || {
                        for i in 0..per_producer {
                            // Unique item ids across producers.
                            let item = t * per_producer + i + 1;
                            if let Err(e) = q.push(item) {
                                rejected_sum.fetch_add(e.into_inner(), Ordering::Relaxed);
                                rejected_count.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            q.close();
        });
        let total = producers as u64 * per_producer;
        let total_sum = total * (total + 1) / 2;
        prop_assert_eq!(
            delivered_count.load(Ordering::Relaxed) + rejected_count.load(Ordering::Relaxed),
            total,
            "an item vanished or was duplicated"
        );
        prop_assert_eq!(
            delivered_sum.load(Ordering::Relaxed) + rejected_sum.load(Ordering::Relaxed),
            total_sum,
            "delivered + rejected ids do not partition the pushed ids"
        );
    }
}
