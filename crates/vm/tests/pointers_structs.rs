//! VM edge cases: pointer compound assignment, arrays of structs,
//! pointers to struct fields, nested data-structure traversal, and
//! mixed-type coercion corners.

use vm::{compile_and_run, RunConfig};

fn output_of(src: &str) -> String {
    compile_and_run(src, RunConfig::default())
        .unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
        .output_text()
}

#[test]
fn pointer_compound_assignment_steps_elements() {
    assert_eq!(
        output_of(
            "int arr[8] = {0, 10, 20, 30, 40, 50, 60, 70};
             int main() {
                 int *p = arr;
                 p += 3;
                 print(*p);
                 p -= 2;
                 print(*p);
                 p += 1 + 1;
                 print(*p);
                 return 0;
             }"
        ),
        "30\n10\n30"
    );
}

#[test]
fn arrays_of_structs_layout() {
    assert_eq!(
        output_of(
            "struct pt { int x; int y; };
             struct pt pts[4];
             int main() {
                 for (int i = 0; i < 4; i++) {
                     pts[i].x = i * 10;
                     pts[i].y = i * 10 + 1;
                 }
                 print(pts[2].x);
                 print(pts[3].y);
                 print(pts[0].x + pts[1].y);
                 return 0;
             }"
        ),
        "20\n31\n11"
    );
}

#[test]
fn pointer_to_struct_walks_array() {
    assert_eq!(
        output_of(
            "struct pt { int x; int y; };
             struct pt pts[3];
             int main() {
                 for (int i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * i; }
                 struct pt *p = pts;
                 int s = 0;
                 for (int i = 0; i < 3; i++) {
                     s += p->x + p->y;
                     p++;
                 }
                 print(s);
                 return 0;
             }"
        ),
        "8"
    );
}

#[test]
fn address_of_field_is_writable() {
    assert_eq!(
        output_of(
            "struct pt { int x; int y; };
             struct pt g;
             void set(int *p, int v) { *p = v; }
             int main() {
                 set(&g.x, 7);
                 set(&g.y, 9);
                 print(g.x * 10 + g.y);
                 return 0;
             }"
        ),
        "79"
    );
}

#[test]
fn float_array_round_trip() {
    assert_eq!(
        output_of(
            "float tab[4];
             int main() {
                 for (int i = 0; i < 4; i++) tab[i] = (float)i * 0.5;
                 float s = 0.0;
                 for (int i = 0; i < 4; i++) s = s + tab[i];
                 print(s);
                 return 0;
             }"
        ),
        "3"
    );
}

#[test]
fn struct_in_struct_through_pointer() {
    assert_eq!(
        output_of(
            "struct inner { int a; int b; };
             struct outer { int tag; struct inner payload; };
             struct outer g;
             int sum(struct outer *o) { return o->tag + o->payload.a + o->payload.b; }
             int main() {
                 g.tag = 1;
                 g.payload.a = 2;
                 g.payload.b = 3;
                 print(sum(&g));
                 return 0;
             }"
        ),
        "6"
    );
}

#[test]
fn two_d_array_row_pointer() {
    assert_eq!(
        output_of(
            "int m[3][4];
             int row_sum(int *row) {
                 int s = 0;
                 for (int j = 0; j < 4; j++) s += row[j];
                 return s;
             }
             int main() {
                 for (int i = 0; i < 3; i++)
                     for (int j = 0; j < 4; j++)
                         m[i][j] = i * 4 + j;
                 print(row_sum(m[1]));
                 return 0;
             }"
        ),
        "22"
    );
}

#[test]
fn negative_modulo_and_division_are_c_like() {
    assert_eq!(
        output_of(
            "int main() {
                 print(-7 % 3);
                 print(7 % -3);
                 print(-7 / 3);
                 return 0;
             }"
        ),
        "-1\n1\n-2"
    );
}

#[test]
fn cast_chains_and_mixed_compare() {
    assert_eq!(
        output_of(
            "int main() {
                 float f = 2.75;
                 int i = (int)(f * 2.0);
                 print(i);
                 print(f > 2);
                 print((float)i == 5.0);
                 return 0;
             }"
        ),
        "5\n1\n1"
    );
}

#[test]
fn ternary_selects_lvalues_value() {
    assert_eq!(
        output_of(
            "int main() {
                 int a = 3;
                 int b = 8;
                 int m = a > b ? a : b;
                 int n = a < b ? a : b;
                 print(m * 10 + n);
                 return 0;
             }"
        ),
        "83"
    );
}

#[test]
fn dangling_style_oob_is_trapped() {
    let err = compile_and_run(
        "int arr[4];
         int main() {
             int *p = arr;
             p += 100000000;
             return *p;
         }",
        RunConfig::default(),
    )
    .unwrap_err();
    assert!(err.contains("out of bounds"), "{err}");
}

#[test]
fn fnptr_array_like_dispatch_table() {
    // Dispatch through a chain of reassigned function pointers.
    assert_eq!(
        output_of(
            "int inc(int x) { return x + 1; }
             int dbl(int x) { return x * 2; }
             int sq(int x) { return x * x; }
             int main() {
                 int (*op)(int);
                 int v = 3;
                 op = inc; v = op(v);
                 op = dbl; v = op(v);
                 op = sq;  v = op(v);
                 print(v);
                 return 0;
             }"
        ),
        "64"
    );
}
