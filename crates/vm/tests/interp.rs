//! Interpreter integration tests: language semantics, cost accounting,
//! frequency counters, and memoized/profiled segment execution.

use memo_runtime::{MemoTable, TableSpec};
use minic::ast::{MemoOperand, MemoStmt, ProfileStmt, ScalarKind, Stmt, StmtKind};
use vm::cost::CostModel;
use vm::{compile_and_run, run, RunConfig};

fn run_ok(src: &str) -> vm::Outcome {
    compile_and_run(src, RunConfig::default()).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
}

fn output_of(src: &str) -> String {
    run_ok(src).output_text()
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(
        output_of("int main() { print(2 + 3 * 4); return 0; }"),
        "14"
    );
    assert_eq!(
        output_of("int main() { print((2 + 3) * 4); return 0; }"),
        "20"
    );
    assert_eq!(
        output_of("int main() { print(7 / 2); print(7 % 2); return 0; }"),
        "3\n1"
    );
    assert_eq!(output_of("int main() { print(-7 / 2); return 0; }"), "-3");
    assert_eq!(
        output_of("int main() { print(1 << 10); print(1024 >> 3); return 0; }"),
        "1024\n128"
    );
    assert_eq!(
        output_of("int main() { print(6 & 3); print(6 | 3); print(6 ^ 3); print(~0); return 0; }"),
        "2\n7\n5\n-1"
    );
}

#[test]
fn float_arithmetic_and_promotion() {
    assert_eq!(
        output_of("int main() { print(1.5 + 2.25); return 0; }"),
        "3.75"
    );
    assert_eq!(output_of("int main() { print(3 * 1.5); return 0; }"), "4.5");
    assert_eq!(
        output_of("int main() { print((int)(7.9)); return 0; }"),
        "7"
    );
    assert_eq!(
        output_of("int main() { float f = 3; print(f / 2); return 0; }"),
        "1.5"
    );
    // Assignment truncates (C semantics).
    assert_eq!(
        output_of("int main() { int x = 2.9; print(x); return 0; }"),
        "2"
    );
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(
        output_of(
            "int main() { print(1 < 2); print(2 <= 1); print(1 == 1); print(1 != 1); return 0; }"
        ),
        "1\n0\n1\n0"
    );
    // Short circuit: the divide by zero on the right must not run.
    assert_eq!(
        output_of("int main() { int x = 0; print(x != 0 && 10 / x > 0); return 0; }"),
        "0"
    );
    assert_eq!(
        output_of("int main() { int x = 1; print(x == 1 || 10 / 0); return 0; }"),
        "1"
    );
    assert_eq!(
        output_of("int main() { print(!5); print(!0); return 0; }"),
        "0\n1"
    );
}

#[test]
fn control_flow() {
    assert_eq!(
        output_of(
            "int main() {
                int s = 0;
                for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; }
                print(s);
                int j = 0;
                while (1) { j++; if (j == 7) break; }
                print(j);
                int k = 0;
                do { k++; } while (k < 3);
                print(k);
                return 0;
            }"
        ),
        "25\n7\n3"
    );
}

#[test]
fn ternary_and_nested_calls() {
    assert_eq!(
        output_of(
            "int max(int a, int b) { return a > b ? a : b; }
             int main() { print(max(max(1, 5), 3)); return 0; }"
        ),
        "5"
    );
}

#[test]
fn recursion() {
    assert_eq!(
        output_of(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
             int main() { print(fib(15)); return 0; }"
        ),
        "610"
    );
}

#[test]
fn arrays_and_pointers() {
    assert_eq!(
        output_of(
            "int arr[5] = {10, 20, 30, 40, 50};
             int main() {
                 int *p = arr;
                 print(*p);
                 print(*(p + 3));
                 p++;
                 print(*p);
                 print(p - arr);
                 int local[3];
                 local[0] = 7; local[1] = 8; local[2] = 9;
                 print(local[2] - local[0]);
                 return 0;
             }"
        ),
        "10\n40\n20\n1\n2"
    );
}

#[test]
fn two_dimensional_arrays() {
    assert_eq!(
        output_of(
            "int g[3][4];
             int main() {
                 for (int i = 0; i < 3; i++)
                     for (int j = 0; j < 4; j++)
                         g[i][j] = i * 10 + j;
                 print(g[2][3]);
                 print(g[0][1]);
                 return 0;
             }"
        ),
        "23\n1"
    );
}

#[test]
fn structs_members_and_arrows() {
    assert_eq!(
        output_of(
            "struct point { int x; int y; };
             struct rect { struct point lo; struct point hi; };
             struct rect r;
             int area(struct rect *p) {
                 return (p->hi.x - p->lo.x) * (p->hi.y - p->lo.y);
             }
             int main() {
                 r.lo.x = 1; r.lo.y = 2; r.hi.x = 5; r.hi.y = 10;
                 print(area(&r));
                 return 0;
             }"
        ),
        "32"
    );
}

#[test]
fn function_pointers() {
    assert_eq!(
        output_of(
            "int add(int a, int b) { return a + b; }
             int mul(int a, int b) { return a * b; }
             int apply(int (*op)(int, int), int x, int y) { return op(x, y); }
             int main() {
                 int (*f)(int, int);
                 f = add;
                 print(apply(f, 3, 4));
                 f = mul;
                 print(apply(f, 3, 4));
                 print((*f)(5, 6));
                 return 0;
             }"
        ),
        "7\n12\n30"
    );
}

#[test]
fn globals_initialized_and_mutable() {
    assert_eq!(
        output_of(
            "int counter = 100;
             float scale = 2.5;
             void bump() { counter++; }
             int main() { bump(); bump(); print(counter); print(scale * 2); return 0; }"
        ),
        "102\n5"
    );
}

#[test]
fn quan_from_the_paper() {
    // Figure 2(a), driven over a few values.
    let out = output_of(
        "int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
         int quan(int val) {
             int i;
             for (i = 0; i < 15; i++)
                 if (val < power2[i])
                     break;
             return (i);
         }
         int main() {
             print(quan(0));
             print(quan(1));
             print(quan(100));
             print(quan(20000));
             return 0;
         }",
    );
    assert_eq!(out, "0\n1\n7\n15");
}

#[test]
fn input_and_eof_builtins() {
    let cfg = RunConfig {
        input: vec![5, 10, 15],
        ..RunConfig::default()
    };
    let out = compile_and_run(
        "int main() {
             int s = 0;
             while (!eof()) { s += input(); }
             print(s);
             return 0;
         }",
        cfg,
    )
    .unwrap();
    assert_eq!(out.output_text(), "30");
}

#[test]
fn traps_are_reported() {
    let err = |src: &str| compile_and_run(src, RunConfig::default()).unwrap_err();
    assert!(err("int main() { return 1 / 0; }").contains("division by zero"));
    assert!(err("int main() { int x; return x + 1; }").contains("uninitialized"));
    assert!(err("int main() { int *p; p = 0; return *p; }").contains("null pointer"));
    assert!(err("int main() { assert(1 == 2); return 0; }").contains("assertion failed"));
}

#[test]
fn deep_recursion_traps_cleanly() {
    let err = compile_and_run(
        "int f(int n) { return f(n + 1); }
         int main() { return f(0); }",
        RunConfig::default(),
    )
    .unwrap_err();
    assert!(err.contains("stack overflow"), "{err}");
}

#[test]
fn cycle_limit_guards_infinite_loops() {
    let cfg = RunConfig {
        max_cycles: 100_000,
        ..RunConfig::default()
    };
    let err = compile_and_run("int main() { while (1) {} return 0; }", cfg).unwrap_err();
    assert!(err.contains("cycle limit"), "{err}");
}

#[test]
fn o3_is_faster_than_o0_on_scalar_code() {
    let src = "int main() {
        int s = 0;
        for (int i = 0; i < 10000; i++) s += i * 3 + 1;
        print(s);
        return 0;
    }";
    let o0 = compile_and_run(src, RunConfig::default()).unwrap();
    let o3 = compile_and_run(
        src,
        RunConfig {
            cost: CostModel::o3(),
            ..RunConfig::default()
        },
    )
    .unwrap();
    assert_eq!(o0.output_text(), o3.output_text());
    assert!(
        o3.cycles * 2 < o0.cycles,
        "O3 ({}) should be well under half of O0 ({})",
        o3.cycles,
        o0.cycles
    );
}

#[test]
fn frequency_counters_count() {
    let src = "int helper(int x) { return x + 1; }
        int main() {
            int s = 0;
            for (int i = 0; i < 25; i++) s = helper(s);
            if (s > 0) { s += 1; } else { s -= 1; }
            print(s);
            return 0;
        }";
    let out = run_ok(src);
    // helper called 25 times, main once.
    assert!(out.func_calls.contains(&25));
    assert!(out.loop_counts.contains(&25));
    // Branch: then taken once, else zero.
    assert!(out.branch_counts.contains(&1));
    assert_eq!(out.output_text(), "26");
}

#[test]
fn energy_scales_with_cycles() {
    let short = run_ok("int main() { return 0; }");
    let long = run_ok(
        "int main() { int s = 0; for (int i = 0; i < 100000; i++) s += i; print(s); return 0; }",
    );
    assert!(long.cycles > short.cycles * 100);
    assert!(long.energy_joules > short.energy_joules * 100.0);
    assert!(long.seconds > 0.0);
}

// ---------------------------------------------------------------------
// Memoized segments (inserted by hand here; the compreuse crate inserts
// them automatically).
// ---------------------------------------------------------------------

/// Wraps the body of `func` in a Memo statement with the given operands.
fn memoize_function(
    src: &str,
    func: &str,
    inputs: Vec<MemoOperand>,
    outputs: Vec<MemoOperand>,
    ret: Option<ScalarKind>,
    table: usize,
) -> minic::Checked {
    let mut prog = minic::parse(src).expect("parse");
    let f = prog.func_mut(func).expect("function exists");
    let body = std::mem::take(&mut f.body);
    f.body = minic::ast::Block::new(vec![Stmt::synth(StmtKind::Memo(MemoStmt {
        segment: format!("{func}:body"),
        table,
        slot: 0,
        inputs,
        outputs,
        deps: vec![],
        ret,
        body,
    }))]);
    minic::check(prog).expect("memoized program checks")
}

const QUAN_SRC: &str = "
    int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
    int quan(int val) {
        int i;
        for (i = 0; i < 15; i++)
            if (val < power2[i])
                break;
        return (i);
    }
    int main() {
        int s = 0;
        for (int round = 0; round < 50; round++)
            for (int v = 0; v < 20; v++)
                s += quan(v * 100);
        print(s);
        return 0;
    }";

fn quan_table() -> MemoTable {
    // Keys are multiples of 100 below 2000; 2048 slots keep `key mod size`
    // injective so the test sees zero collisions.
    MemoTable::try_direct(&TableSpec {
        slots: 2048,
        key_words: 1,
        out_words: vec![1], // the return value
    })
    .expect("valid spec")
}

#[test]
fn memoized_quan_preserves_semantics_and_saves_cycles() {
    // Original.
    let orig = run_ok(QUAN_SRC);

    // Memoized: input = val, outputs = (return value only).
    let checked = memoize_function(
        QUAN_SRC,
        "quan",
        vec![MemoOperand::scalar("val", ScalarKind::Int)],
        vec![],
        Some(ScalarKind::Int),
        0,
    );
    let module = vm::lower(&checked);
    let cfg = RunConfig {
        tables: vec![quan_table()],
        ..RunConfig::default()
    };
    let memo = run(&module, cfg).expect("memoized run");

    assert_eq!(
        orig.output_text(),
        memo.output_text(),
        "semantics preserved"
    );
    assert!(
        memo.cycles < orig.cycles,
        "memoized ({}) must beat original ({}) at 98% reuse",
        memo.cycles,
        orig.cycles
    );
    let stats = memo.tables[0].stats();
    assert_eq!(stats.accesses, 1000);
    assert_eq!(stats.misses, 20, "one miss per distinct value");
    assert_eq!(stats.hits, 980);
}

#[test]
fn memoized_segment_with_scalar_outputs() {
    // A void-ish segment writing two outputs derived from one input.
    let src = "
        int out_a; int out_b;
        void compute(int x) {
            int t = 0;
            for (int i = 0; i < 50; i++) t += x * i;
            out_a = t;
            out_b = t * 2;
        }
        int main() {
            int s = 0;
            for (int r = 0; r < 30; r++) {
                for (int v = 0; v < 3; v++) {
                    compute(v);
                    s += out_a + out_b;
                }
            }
            print(s);
            return 0;
        }";
    let orig = run_ok(src);
    let checked = memoize_function(
        src,
        "compute",
        vec![MemoOperand::scalar("x", ScalarKind::Int)],
        vec![
            MemoOperand::scalar("out_a", ScalarKind::Int),
            MemoOperand::scalar("out_b", ScalarKind::Int),
        ],
        None,
        0,
    );
    let module = vm::lower(&checked);
    let cfg = RunConfig {
        tables: vec![MemoTable::try_direct(&TableSpec {
            slots: 16,
            key_words: 1,
            out_words: vec![2],
        })
        .expect("valid spec")],
        ..RunConfig::default()
    };
    let memo = run(&module, cfg).expect("memoized run");
    assert_eq!(orig.output_text(), memo.output_text());
    assert_eq!(memo.tables[0].stats().misses, 3);
    assert_eq!(memo.tables[0].stats().hits, 87);
    assert!(memo.cycles < orig.cycles);
}

#[test]
fn memoization_hurts_when_reuse_rate_is_low() {
    // Unique input every call: all misses, pure overhead — the case the
    // paper's cost-benefit analysis exists to filter out.
    let src = "
        int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
        int quan(int val) {
            int i;
            for (i = 0; i < 15; i++)
                if (val < power2[i])
                    break;
            return (i);
        }
        int main() {
            int s = 0;
            for (int v = 0; v < 1000; v++)
                s += quan(v * 17);
            print(s);
            return 0;
        }";
    let orig = run_ok(src);
    let checked = memoize_function(
        src,
        "quan",
        vec![MemoOperand::scalar("val", ScalarKind::Int)],
        vec![],
        Some(ScalarKind::Int),
        0,
    );
    let module = vm::lower(&checked);
    let cfg = RunConfig {
        tables: vec![MemoTable::try_direct(&TableSpec {
            slots: 2048,
            key_words: 1,
            out_words: vec![1],
        })
        .expect("valid spec")],
        ..RunConfig::default()
    };
    let memo = run(&module, cfg).expect("run");
    assert_eq!(orig.output_text(), memo.output_text());
    assert!(
        memo.cycles > orig.cycles,
        "all-miss memoization must cost more ({} vs {})",
        memo.cycles,
        orig.cycles
    );
}

#[test]
fn profile_probe_collects_value_sets() {
    let mut prog = minic::parse(QUAN_SRC).expect("parse");
    let f = prog.func_mut("quan").expect("quan");
    let body = std::mem::take(&mut f.body);
    f.body = minic::ast::Block::new(vec![Stmt::synth(StmtKind::Profile(ProfileStmt {
        segment: "quan:body".into(),
        seg_index: 0,
        inputs: vec![MemoOperand::scalar("val", ScalarKind::Int)],
        body,
    }))]);
    let checked = minic::check(prog).expect("checks");
    let module = vm::lower(&checked);
    let out = run(&module, RunConfig::default()).expect("run");
    let profile = out.profile.expect("profile data");
    let seg = &profile.segs[0];
    assert_eq!(seg.name, "quan:body");
    assert_eq!(seg.n, 1000);
    assert_eq!(seg.dip(), 20);
    assert!((seg.reuse_rate() - 0.98).abs() < 1e-9);
    assert!(seg.avg_cycles() > 0.0);
    let hist = seg.value_histogram().expect("single-word key");
    assert_eq!(hist.len(), 20);
    assert!(hist.iter().all(|&(_, c)| c == 50));
}

#[test]
fn merged_table_segments_share_key() {
    // Two functions with the same input variable memoized into one merged
    // table at different slots.
    let src = "
        int f_out; int g_out;
        void f(int x) { int t = 0; for (int i = 0; i < 40; i++) t += x + i; f_out = t; }
        void g(int x) { int t = 1; for (int i = 0; i < 40; i++) t += x * i; g_out = t; }
        int main() {
            int s = 0;
            for (int r = 0; r < 20; r++)
                for (int v = 0; v < 2; v++) { f(v); g(v); s += f_out + g_out; }
            print(s);
            return 0;
        }";
    let orig = run_ok(src);

    let mut prog = minic::parse(src).expect("parse");
    for (func, outvar, slot) in [("f", "f_out", 0usize), ("g", "g_out", 1usize)] {
        let fd = prog.func_mut(func).expect("func");
        let body = std::mem::take(&mut fd.body);
        fd.body = minic::ast::Block::new(vec![Stmt::synth(StmtKind::Memo(MemoStmt {
            segment: format!("{func}:body"),
            table: 0,
            slot,
            inputs: vec![MemoOperand::scalar("x", ScalarKind::Int)],
            outputs: vec![MemoOperand::scalar(outvar, ScalarKind::Int)],
            deps: vec![],
            ret: None,
            body,
        }))]);
    }
    let checked = minic::check(prog).expect("checks");
    let module = vm::lower(&checked);
    let cfg = RunConfig {
        tables: vec![MemoTable::try_merged(&TableSpec {
            slots: 16,
            key_words: 1,
            out_words: vec![1, 1],
        })
        .expect("valid spec")],
        ..RunConfig::default()
    };
    let memo = run(&module, cfg).expect("run");
    assert_eq!(orig.output_text(), memo.output_text());
    let stats = memo.tables[0].stats();
    assert_eq!(stats.accesses, 80);
    assert_eq!(stats.misses, 4, "2 values × 2 slots cold-miss once each");
    assert!(memo.cycles < orig.cycles);
}
