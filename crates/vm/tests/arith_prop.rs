//! Differential property test: the VM's arithmetic agrees with a
//! reference evaluator written directly in Rust.
//!
//! Random expressions over three integer variables are rendered to MiniC,
//! executed by the interpreter, and compared against an independent
//! evaluation of the same AST. Division/remainder by zero must trap in
//! the VM exactly when the reference detects it.

use proptest::prelude::*;
use vm::{compile_and_run, RunConfig};

#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Var(usize),
    Un(char, Box<E>),
    Bin(&'static str, Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(E::Lit),
        (0usize..3).prop_map(E::Var),
    ];
    leaf.prop_recursive(4, 40, 2, |inner| {
        prop_oneof![
            (prop_oneof![Just('-'), Just('!'), Just('~')], inner.clone())
                .prop_map(|(op, a)| E::Un(op, Box::new(a))),
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("%"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("<<"),
                    Just(">>"),
                    Just("<"),
                    Just("<="),
                    Just(">"),
                    Just(">="),
                    Just("=="),
                    Just("!="),
                    Just("&&"),
                    Just("||"),
                ],
                inner.clone(),
                inner
            )
                .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Lit(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        E::Var(i) => ["va", "vb", "vc"][*i].to_string(),
        E::Un(op, a) => format!("({op}{})", render(a)),
        E::Bin(op, a, b) => format!("({} {op} {})", render(a), render(b)),
    }
}

/// Reference evaluation with C-on-this-VM semantics; `None` = trap.
fn eval(e: &E, env: &[i64; 3]) -> Option<i64> {
    Some(match e {
        E::Lit(v) => *v,
        E::Var(i) => env[*i],
        E::Un('-', a) => eval(a, env)?.wrapping_neg(),
        E::Un('!', a) => i64::from(eval(a, env)? == 0),
        E::Un('~', a) => !eval(a, env)?,
        E::Un(op, _) => unreachable!("unary {op}"),
        E::Bin(op, a, b) => {
            // Short-circuit first (b must not be evaluated).
            if *op == "&&" {
                return Some(if eval(a, env)? != 0 {
                    i64::from(eval(b, env)? != 0)
                } else {
                    0
                });
            }
            if *op == "||" {
                return Some(if eval(a, env)? != 0 {
                    1
                } else {
                    i64::from(eval(b, env)? != 0)
                });
            }
            let x = eval(a, env)?;
            let y = eval(b, env)?;
            match *op {
                "+" => x.wrapping_add(y),
                "-" => x.wrapping_sub(y),
                "*" => x.wrapping_mul(y),
                "/" => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_div(y)
                }
                "%" => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_rem(y)
                }
                "&" => x & y,
                "|" => x | y,
                "^" => x ^ y,
                "<<" => x.wrapping_shl(y as u32),
                ">>" => x.wrapping_shr(y as u32),
                "<" => i64::from(x < y),
                "<=" => i64::from(x <= y),
                ">" => i64::from(x > y),
                ">=" => i64::from(x >= y),
                "==" => i64::from(x == y),
                "!=" => i64::from(x != y),
                other => unreachable!("binary {other}"),
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn vm_matches_reference(e in arb_expr(), va in -50i64..50, vb in -50i64..50, vc in -4i64..64) {
        let env = [va, vb, vc];
        let src = format!(
            "int main() {{ int va = {va}; int vb = {vb}; int vc = {vc}; print({}); return 0; }}",
            render(&e)
        );
        let result = compile_and_run(&src, RunConfig::default());
        match eval(&e, &env) {
            Some(expected) => {
                let out = result.unwrap_or_else(|err| panic!("VM trapped unexpectedly: {err}\n{src}"));
                prop_assert_eq!(out.output_text(), expected.to_string(), "src: {}", src);
            }
            None => {
                let err = result.expect_err("reference traps, VM must too");
                prop_assert!(err.contains("division by zero"), "{err}\n{src}");
            }
        }
    }

    /// Cost accounting is deterministic: the same program costs the same
    /// cycles on every run.
    #[test]
    fn cycle_account_is_deterministic(e in arb_expr()) {
        let src = format!(
            "int main() {{ int va = 3; int vb = 5; int vc = 7; int r = 0; r = {}; return 0; }}",
            render(&e)
        );
        let a = compile_and_run(&src, RunConfig::default());
        let b = compile_and_run(&src, RunConfig::default());
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.cycles, y.cycles),
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            (x, y) => prop_assert!(false, "nondeterministic trap: {x:?} vs {y:?}"),
        }
    }
}
