//! Whole-system energy model standing in for the paper's multi-meter rig.
//!
//! The paper measures the iPAQ's current draw on an external 5 V supply
//! and computes `energy = voltage · current_drawn · elapsed_time` (§3.4).
//! Its own data shows the system power is nearly constant (≈ 2.3 W across
//! programs and transformations), so energy saving tracks time saving —
//! *minus* a small penalty on transformed programs because the hash table
//! adds DRAM traffic. We model exactly that:
//!
//! `E = P_system · t + e_word · table_words_touched`
//!
//! where `t = cycles / 206 MHz`. The default parameters are calibrated to
//! the paper's measured ≈2.3 W system power; `e_word` is a per-word DRAM
//! access energy of a late-1990s SDRAM part.

use crate::cost::cycles_to_seconds;
/// Parameters of the energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Supply voltage in volts (the paper fixes 5 V).
    pub voltage: f64,
    /// Average system current in amperes while running (paper's measured
    /// draw ≈ 0.46 A at 5 V ≈ 2.3 W).
    pub current_amps: f64,
    /// Extra energy per 64-bit word moved to/from a memo table, in joules
    /// (models the added DRAM traffic of the software scheme).
    pub table_word_joules: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            voltage: 5.0,
            current_amps: 0.46,
            table_word_joules: 25.0e-9,
        }
    }
}

impl EnergyModel {
    /// System power in watts.
    pub fn watts(&self) -> f64 {
        self.voltage * self.current_amps
    }

    /// Energy in joules for a run of `cycles` cycles that moved
    /// `table_words` words through memo tables.
    pub fn energy_joules(&self, cycles: u64, table_words: u64) -> f64 {
        self.watts() * cycles_to_seconds(cycles) + self.table_word_joules * table_words as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_power_matches_paper_magnitude() {
        let m = EnergyModel::default();
        assert!((m.watts() - 2.3).abs() < 0.01);
    }

    #[test]
    fn energy_is_linear_in_time() {
        let m = EnergyModel::default();
        let e1 = m.energy_joules(206_000_000, 0); // 1 modelled second
        let e2 = m.energy_joules(412_000_000, 0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!((e1 - 2.3).abs() < 0.01);
    }

    #[test]
    fn table_traffic_adds_energy() {
        let m = EnergyModel::default();
        let base = m.energy_joules(1_000_000, 0);
        let with_tables = m.energy_joules(1_000_000, 1_000_000);
        assert!(with_tables > base);
        // A million words at 25 nJ = 25 mJ.
        assert!((with_tables - base - 0.025).abs() < 1e-9);
    }

    #[test]
    fn energy_saving_slightly_below_time_saving() {
        // Transformed run: half the cycles but heavy table traffic — the
        // energy saving must come out just under the time saving, the
        // pattern visible across the paper's Tables 6..9.
        let m = EnergyModel::default();
        let orig = m.energy_joules(1_000_000_000, 0);
        let memo = m.energy_joules(500_000_000, 10_000_000);
        let time_saving = 0.5;
        let energy_saving = 1.0 - memo / orig;
        assert!(energy_saving < time_saving);
        assert!(energy_saving > 0.4, "still substantial: {energy_saving}");
    }
}
