//! The tree-walking interpreter with cycle accounting.
//!
//! Executes a lowered [`Module`] under a [`CostModel`] and [`EnergyModel`],
//! collecting everything the reuse pipeline and the benchmark harness
//! need: cycles, energy, print output, per-function/loop/branch execution
//! counts (frequency profiling), value-set profiles (when the module
//! contains `Profile` probes), and memo-table statistics (when it contains
//! `Memo` segments).

use crate::cost::{cycles_to_seconds, CostModel};
use crate::deps_rt::DepRuntime;
use crate::energy::EnergyModel;
use crate::lower::{
    Coerce, CostKind, LCallee, LExpr, LMemo, LOperand, LPlace, LProfile, LStmt, Module, OpLoc,
    WriteCost,
};
use crate::profile::{ProfileData, SegProfile};
use crate::tables::TableHandles;
use crate::value::{PrintVal, Trap, Value};
use memo_runtime::{L1Cache, MemoTable, ShardedTable, TableState};
use minic::ast::{BinOp, UnOp};
use minic::sema::Builtin;
use std::sync::Arc;

/// Which execution engine runs the module.
///
/// All engines charge identical cycle/energy costs and produce
/// bit-for-bit identical [`Outcome`]s; they differ only in host-side
/// execution strategy (see DESIGN.md, "Two execution engines" and
/// §8j for the specialized tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The original recursive tree-walker (runs on a dedicated
    /// big-stack thread). The executable spec the other tiers are
    /// differentially tested against.
    Tree,
    /// The flat bytecode compiler + non-recursive dispatch loop
    /// (default: same results, much lower host wall-clock).
    #[default]
    Bytecode,
    /// The profile-guided trace-specialization tier: bytecode with
    /// mined superinstruction fusion and guarded dominant-value segment
    /// clones applied ([`crate::specialize`]). Without a
    /// [`RunConfig::spec_plan`] it runs the generic bytecode engine
    /// (recording a dispatch trace when [`RunConfig::record_trace`] is
    /// set), which is how warm-up/profiling runs behave before a plan
    /// exists.
    Specialized,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Tree => write!(f, "tree"),
            Engine::Bytecode => write!(f, "bytecode"),
            Engine::Specialized => write!(f, "specialized"),
        }
    }
}

/// Everything configurable about a run.
#[derive(Debug)]
pub struct RunConfig {
    /// Cycle cost model (O0 or O3).
    pub cost: CostModel,
    /// Energy model.
    pub energy: EnergyModel,
    /// Input stream consumed by the `input()` builtin.
    pub input: Vec<i64>,
    /// Memo tables, indexed by the module's table ids. Ignored when
    /// `shared_tables` is set.
    pub tables: Vec<MemoTable>,
    /// A shared, sharded reuse store to probe instead of `tables`. When
    /// set, the run's memo traffic goes to this store (which outlives the
    /// run and may be probed by other runs concurrently) and
    /// [`Outcome::tables`] comes back empty — statistics live in the
    /// store. Program results are identical either way; cycle counts and
    /// hit rates depend on the store's contents (DESIGN.md §8e).
    pub shared_tables: Option<Arc<Vec<ShardedTable>>>,
    /// Optional per-run L1 caches fronting `shared_tables` (one per
    /// table; requires `shared_tables`). Fingerprint-free probes try the
    /// direct-mapped L1 before the sharded L2, repeated L2 hits promote
    /// entries, and records write through (DESIGN.md §8i). The caches
    /// come back in [`Outcome::l1`] so a worker can reuse them — and
    /// their hit statistics — across runs.
    pub l1: Option<Vec<L1Cache>>,
    /// Stack region size in cells.
    pub stack_cells: usize,
    /// Abort after this many cycles (runaway guard).
    pub max_cycles: u64,
    /// Maximum call depth. The tree-walker recurses on the Rust stack
    /// (up to ~10 KiB per MiniC call in debug builds); [`run`] executes it
    /// on a dedicated thread whose stack is sized for this depth. The
    /// bytecode engine keeps frames on an explicit stack and ignores the
    /// host stack entirely.
    pub max_depth: usize,
    /// Which execution engine to use.
    pub engine: Engine,
    /// Try-mark-green validation. When `true` (the default), probes of
    /// fingerprinted segments validate stored dependency fingerprints
    /// against the live chunk epochs: entries whose dependencies are
    /// provably unchanged are promoted to (green) hits, the rest
    /// recompute. When `false`, lookups are exact-match only: segments
    /// with *mutable* dependencies are forced red (their entries cannot
    /// be trusted without validation), which is the A-arm baseline of
    /// the perturbed-input experiment. Either way the executed answer is
    /// identical — validation only changes which probes recompute.
    pub validate: bool,
    /// Record a [`crate::specialize::DispatchTrace`] during the run
    /// (bytecode-backed engines only; the tree-walker has no dispatch
    /// sequence). The trace comes back in [`Outcome::trace`] and feeds
    /// [`crate::specialize::SpecPlan`] mining.
    pub record_trace: bool,
    /// The specialization plan [`Engine::Specialized`] applies. `None`
    /// makes the specialized engine behave exactly like the generic
    /// bytecode engine (tier warm-up, before a plan exists). Ignored by
    /// the other engines.
    pub spec_plan: Option<Arc<crate::specialize::SpecPlan>>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cost: CostModel::o0(),
            energy: EnergyModel::default(),
            input: Vec::new(),
            tables: Vec::new(),
            shared_tables: None,
            l1: None,
            stack_cells: 1 << 20,
            max_cycles: u64::MAX,
            max_depth: 4096,
            engine: Engine::default(),
            validate: true,
            record_trace: false,
            spec_plan: None,
        }
    }
}

/// The result of a completed run.
#[derive(Debug)]
pub struct Outcome {
    /// Values printed by the program, in order.
    pub output: Vec<PrintVal>,
    /// `main`'s return value (0 if void).
    pub ret: i64,
    /// Total modelled cycles.
    pub cycles: u64,
    /// Modelled wall-clock seconds at the SA-1110's 206 MHz.
    pub seconds: f64,
    /// Modelled energy in joules.
    pub energy_joules: f64,
    /// Words moved through memo tables (drives the energy table term).
    pub table_words: u64,
    /// Calls per function (frequency profile).
    pub func_calls: Vec<u64>,
    /// Iterations per loop (dense loop index; see `Module::loop_origins`).
    pub loop_counts: Vec<u64>,
    /// Executions per `if` branch: `2i` = then, `2i+1` = else.
    pub branch_counts: Vec<u64>,
    /// The memo tables after the run (for stats and access histograms).
    pub tables: Vec<MemoTable>,
    /// The L1 caches after a tiered run ([`RunConfig::l1`]); `None`
    /// otherwise. Statistics accumulate across runs that reuse them.
    pub l1: Option<Vec<L1Cache>>,
    /// Value-set profiles, if the module contained probes.
    pub profile: Option<ProfileData>,
    /// The dispatch trace, when [`RunConfig::record_trace`] was set and
    /// a bytecode-backed engine ran. Host-side observability only —
    /// never part of the cross-engine equivalence fingerprint.
    pub trace: Option<crate::specialize::DispatchTrace>,
    /// Specialization counters (guard probes, hits, deopts), when
    /// [`Engine::Specialized`] ran with a plan. Host-side observability
    /// only, like [`Outcome::trace`].
    pub spec: Option<crate::specialize::SpecStats>,
}

impl Outcome {
    /// The printed output as one newline-separated string.
    pub fn output_text(&self) -> String {
        self.output
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Runs `module` to completion under `config`.
///
/// # Errors
///
/// Returns a [`Trap`] if the program faults (null deref, division by zero,
/// assertion failure, cycle budget, ...).
///
/// # Examples
///
/// ```
/// let checked = minic::compile("int main() { print(6 * 7); return 0; }").unwrap();
/// let module = vm::lower::lower(&checked);
/// let outcome = vm::run(&module, vm::RunConfig::default())?;
/// assert_eq!(outcome.output_text(), "42");
/// # Ok::<(), vm::value::Trap>(())
/// ```
pub fn run(module: &Module, config: RunConfig) -> Result<Outcome, Trap> {
    match config.engine {
        Engine::Bytecode => {
            // The dispatch loop keeps MiniC frames on an explicit stack,
            // so it runs on the caller's thread with no recursion.
            let bc = crate::bytecode::compile(module, &config.cost);
            crate::interp_bc::run_bc(module, &bc, config)
        }
        Engine::Specialized => {
            // Same flat dispatch loop as the bytecode tier, but running a
            // plan-specialized copy of the code. Without a plan it degrades
            // to the generic bytecode engine (optionally recording a trace
            // so the pipeline can mine a plan).
            let bc = crate::bytecode::compile(module, &config.cost);
            match config.spec_plan.clone() {
                Some(plan) => {
                    let spec = crate::specialize::build(&bc, &plan, &config.cost);
                    crate::interp_spec::run_spec(module, &spec, config)
                }
                None => crate::interp_bc::run_bc(module, &bc, config),
            }
        }
        Engine::Tree => {
            // The tree-walker recurses on the Rust stack (one chain of
            // frames per MiniC call level), so execute on a thread whose
            // stack is sized to the configured depth: ~16 KiB per level
            // plus slack.
            let stack_bytes = (config.max_depth * 16 * 1024 + (8 << 20)).max(16 << 20);
            std::thread::scope(|scope| {
                std::thread::Builder::new()
                    .name("vm-interp".into())
                    .stack_size(stack_bytes)
                    .spawn_scoped(scope, || run_on_current_thread(module, config))
                    .expect("spawn interpreter thread")
                    .join()
                    .expect("interpreter thread panicked")
            })
        }
    }
}

/// Builds the per-segment profiler when the module carries probes (both
/// engines share this so segment ordering is identical).
pub(crate) fn make_profiler(module: &Module) -> Option<ProfileData> {
    if module.profile_segments.is_empty() {
        None
    } else {
        Some(ProfileData {
            segs: module
                .profile_segments
                .iter()
                .map(|name| SegProfile {
                    name: name.clone(),
                    ..SegProfile::default()
                })
                .collect(),
        })
    }
}

fn run_on_current_thread(module: &Module, config: RunConfig) -> Result<Outcome, Trap> {
    let globals_len = module.globals.len();
    let mut mem = Vec::with_capacity(globals_len + 4096);
    mem.extend_from_slice(&module.globals);

    let profiler = make_profiler(module);

    let tables = crate::tables::take_handles(
        config.tables,
        config.shared_tables,
        config.l1,
        module.table_count,
    );

    let mut m = Machine {
        module,
        mem,
        frame: 0,
        stack_top: globals_len,
        stack_limit: globals_len + config.stack_cells,
        depth: 0,
        max_depth: config.max_depth,
        cycles: 0,
        max_cycles: config.max_cycles,
        cost: config.cost,
        input: config.input,
        input_pos: 0,
        output: Vec::new(),
        tables,
        table_words: 0,
        func_calls: vec![0; module.funcs.len()],
        loop_counts: vec![0; module.loop_origins.len()],
        branch_counts: vec![0; module.branch_origins.len() * 2],
        profiler,
        profile_stack: Vec::new(),
        key_arena: Vec::new(),
        out_scratch: Vec::new(),
        rec_scratch: Vec::new(),
        seen_scratch: Vec::new(),
        dep_rt: DepRuntime::new(module),
        fp_scratch: Vec::new(),
        validate: config.validate,
    };

    let ret = m.call(module.main, &[])?;
    let ret = match ret {
        Value::Int(v) => v,
        _ => 0,
    };
    let energy = config.energy.energy_joules(m.cycles, m.table_words);
    let (tables, l1) = m.tables.into_parts();
    Ok(Outcome {
        output: m.output,
        ret,
        cycles: m.cycles,
        seconds: cycles_to_seconds(m.cycles),
        energy_joules: energy,
        table_words: m.table_words,
        func_calls: m.func_calls,
        loop_counts: m.loop_counts,
        branch_counts: m.branch_counts,
        tables,
        l1,
        profile: m.profiler,
        trace: None,
        spec: None,
    })
}

/// Statement execution outcome.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

struct Machine<'m> {
    module: &'m Module,
    mem: Vec<Value>,
    /// Current frame base (absolute cell index).
    frame: usize,
    stack_top: usize,
    stack_limit: usize,
    depth: usize,
    max_depth: usize,
    cycles: u64,
    max_cycles: u64,
    cost: CostModel,
    input: Vec<i64>,
    input_pos: usize,
    output: Vec<PrintVal>,
    tables: TableHandles,
    table_words: u64,
    func_calls: Vec<u64>,
    loop_counts: Vec<u64>,
    branch_counts: Vec<u64>,
    profiler: Option<ProfileData>,
    profile_stack: Vec<(u32, u64)>,
    /// Memo/profile key words under construction. Nested segments stack
    /// their keys; each user truncates back to its start offset, so the
    /// buffer's capacity is reused and the hot path never allocates.
    key_arena: Vec<u64>,
    /// Reused lookup-output buffer (cleared per probe).
    out_scratch: Vec<u64>,
    /// Reused record buffer (cleared per miss).
    rec_scratch: Vec<u64>,
    /// Reused ancestor-dedup buffer for profile probes.
    seen_scratch: Vec<u32>,
    /// Chunk-epoch chains and recording frames for fingerprinted memos.
    dep_rt: DepRuntime,
    /// Reused fingerprint buffer (cleared per record).
    fp_scratch: Vec<u64>,
    /// Whether probes of fingerprinted segments run validation.
    validate: bool,
}

impl<'m> Machine<'m> {
    #[inline]
    fn tick(&mut self, n: u64) {
        self.cycles += n;
    }

    #[inline]
    fn check_budget(&self) -> Result<(), Trap> {
        if self.cycles > self.max_cycles {
            Err(Trap::CycleLimit)
        } else {
            Ok(())
        }
    }

    #[inline]
    fn read(&mut self, addr: usize) -> Result<Value, Trap> {
        if addr == 0 {
            return Err(Trap::NullDeref);
        }
        let v = match self.mem.get(addr) {
            Some(v) => *v,
            None => return Err(Trap::OutOfBounds(addr)),
        };
        if self.dep_rt.active() {
            self.dep_rt.note_read(addr);
        }
        Ok(v)
    }

    #[inline]
    fn write(&mut self, addr: usize, v: Value) -> Result<(), Trap> {
        if addr == 0 {
            return Err(Trap::NullDeref);
        }
        match self.mem.get_mut(addr) {
            Some(cell) => {
                *cell = v;
                self.dep_rt.note_write(addr, v);
                Ok(())
            }
            None => Err(Trap::OutOfBounds(addr)),
        }
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    fn call(&mut self, fid: u32, args: &[Value]) -> Result<Value, Trap> {
        self.check_budget()?;
        if self.depth >= self.max_depth {
            return Err(Trap::StackOverflow);
        }
        self.depth += 1;
        self.tick(self.cost.call);
        self.func_calls[fid as usize] += 1;

        let func = &self.module.funcs[fid as usize];
        let new_base = self.stack_top;
        let new_top = new_base + func.frame as usize;
        if new_top > self.stack_limit {
            self.depth -= 1;
            return Err(Trap::StackOverflow);
        }
        if new_top > self.mem.len() {
            self.mem.resize(new_top, Value::Uninit);
        } else {
            self.mem[new_base..new_top].fill(Value::Uninit);
        }
        debug_assert_eq!(args.len(), func.params.len(), "arity checked by sema");
        let saved_frame = self.frame;
        let saved_top = self.stack_top;
        self.frame = new_base;
        self.stack_top = new_top;
        for (&(off, coerce), &arg) in func.params.iter().zip(args) {
            let v = coerce_value(arg, coerce)?;
            self.mem[new_base + off as usize] = v;
        }

        let flow = self.exec_block(&func.body);
        self.frame = saved_frame;
        self.stack_top = saved_top;
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Uninit), // missing return traps on use
        }
    }

    fn call_builtin(&mut self, b: Builtin, args: &[Value]) -> Result<Value, Trap> {
        self.tick(self.cost.builtin);
        match b {
            Builtin::Print => {
                let v = match args[0] {
                    Value::Int(v) => PrintVal::Int(v),
                    Value::Float(v) => PrintVal::Float(v),
                    Value::Uninit => return Err(Trap::UninitRead),
                    _ => return Err(Trap::TypeConfusion("pointer")),
                };
                self.output.push(v);
                Ok(Value::Uninit)
            }
            Builtin::Input => {
                let v = self.input.get(self.input_pos).copied().unwrap_or(0);
                self.input_pos += 1;
                Ok(Value::Int(v))
            }
            Builtin::Eof => Ok(Value::Int(i64::from(self.input_pos >= self.input.len()))),
            Builtin::Assert => {
                if args[0].truthy()? {
                    Ok(Value::Uninit)
                } else {
                    Err(Trap::AssertFailed)
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(&mut self, stmts: &[LStmt]) -> Result<Flow, Trap> {
        for s in stmts {
            match self.exec(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, s: &LStmt) -> Result<Flow, Trap> {
        match s {
            LStmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            LStmt::Decl { slot, init } => {
                if let Some((e, coerce)) = init {
                    let v = self.eval(e)?;
                    let v = coerce_value(v, *coerce)?;
                    self.tick(self.cost.var_access);
                    let addr = self.frame + *slot as usize;
                    self.mem[addr] = v;
                }
                Ok(Flow::Normal)
            }
            LStmt::If {
                cond,
                then_blk,
                else_blk,
                branch_idx,
            } => {
                self.tick(self.cost.branch);
                let taken = self.eval(cond)?.truthy()?;
                let slot = (*branch_idx as usize) * 2 + usize::from(!taken);
                self.branch_counts[slot] += 1;
                if taken {
                    self.exec_block(then_blk)
                } else {
                    self.exec_block(else_blk)
                }
            }
            LStmt::While {
                cond,
                body,
                loop_idx,
            } => {
                loop {
                    self.check_budget()?;
                    self.tick(self.cost.branch + self.cost.loop_overhead);
                    if !self.eval(cond)?.truthy()? {
                        break;
                    }
                    self.loop_counts[*loop_idx as usize] += 1;
                    match self.exec_block(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            LStmt::DoWhile {
                body,
                cond,
                loop_idx,
            } => {
                loop {
                    self.check_budget()?;
                    self.loop_counts[*loop_idx as usize] += 1;
                    self.tick(self.cost.loop_overhead);
                    match self.exec_block(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    self.tick(self.cost.branch);
                    if !self.eval(cond)?.truthy()? {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            LStmt::For {
                init,
                cond,
                step,
                body,
                loop_idx,
            } => {
                if let Some(init) = init {
                    self.exec(init)?;
                }
                loop {
                    self.check_budget()?;
                    self.tick(self.cost.loop_overhead);
                    if let Some(cond) = cond {
                        self.tick(self.cost.branch);
                        if !self.eval(cond)?.truthy()? {
                            break;
                        }
                    }
                    self.loop_counts[*loop_idx as usize] += 1;
                    match self.exec_block(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    if let Some(step) = step {
                        self.eval(step)?;
                    }
                }
                Ok(Flow::Normal)
            }
            LStmt::Seq(stmts) => self.exec_block(stmts),
            LStmt::Break => Ok(Flow::Break),
            LStmt::Continue => Ok(Flow::Continue),
            LStmt::Return(v) => {
                let value = match v {
                    None => Value::Uninit,
                    Some((e, coerce)) => {
                        let raw = self.eval(e)?;
                        coerce_value(raw, *coerce)?
                    }
                };
                Ok(Flow::Return(value))
            }
            LStmt::Memo(m) => self.exec_memo(m),
            LStmt::Profile(p) => self.exec_profile(p),
        }
    }

    // ------------------------------------------------------------------
    // Memoization and profiling
    // ------------------------------------------------------------------

    fn exec_memo(&mut self, m: &LMemo) -> Result<Flow, Trap> {
        // An adaptively bypassed table is not probed: the transformed code
        // pays only the guard-flag branch and falls through to the original
        // body — no key build, no table traffic. The lookup call still runs
        // (it is a forced miss) so the table's epoch clock advances toward
        // its next probation probe. Shared stores never take this path:
        // their guard state is per shard, and the shard is unknown until
        // the key is built (`TableHandles::state` reports `Active`).
        if self.tables.state(m.table as usize) == TableState::Bypassed {
            self.tick(self.cost.branch);
            self.out_scratch.clear();
            let hit = self.tables.lookup(
                m.table as usize,
                m.slot as usize,
                &[],
                &mut self.out_scratch,
            );
            debug_assert!(!hit, "bypassed lookups are forced misses");
            return self.exec_block(&m.body);
        }

        // Build the concatenated key (paper §2.1: bit patterns of the
        // inputs in a fixed order) on the shared arena; nested segments
        // stack above it.
        let ks = self.key_arena.len();
        for op in &m.inputs {
            read_operand_into(
                &self.mem,
                self.frame,
                op,
                &mut self.key_arena,
                &mut self.dep_rt,
            )?;
        }
        // A hit and a miss charge the same extra operations (§2.1).
        self.tick(
            self.cost
                .memo_overhead(m.key_words as usize, m.out_words as usize),
        );
        self.table_words += (m.key_words + m.out_words) as u64;

        // Fingerprinted segments validate stored dependency fingerprints
        // against the live chunk epochs (try-mark-green) when enabled;
        // with validation off, green segments fall to forced red inside
        // the table (the validator stays `None`).
        let fp_words = m.fp_words as usize;
        let validating = fp_words > 0 && self.validate;
        if validating {
            self.tick(self.cost.fp_probe_cost(fp_words));
            self.table_words += fp_words as u64;
        }
        self.out_scratch.clear();
        let hit = {
            let dep_rt = &self.dep_rt;
            let mut validator = |fp: &[u64]| dep_rt.validate(&m.deps, fp);
            self.tables.lookup_dep(
                m.table as usize,
                m.slot as usize,
                &self.key_arena[ks..],
                &mut self.out_scratch,
                m.green,
                if validating {
                    Some(&mut validator)
                } else {
                    None
                },
            )
        };
        if hit {
            self.key_arena.truncate(ks);
            // A hit inside an enclosing recording stands in for the reads
            // the skipped body would have performed: taint the enclosing
            // frames with this segment's full dependency footprint.
            if self.dep_rt.active() && !m.deps.is_empty() {
                self.dep_rt.note_nested_hit(&m.deps);
            }
            // Restore outputs; optionally return the memoized value.
            let mut pos = 0usize;
            for op in &m.outputs {
                let n = op.words as usize;
                write_operand_from(
                    &mut self.mem,
                    self.frame,
                    op,
                    &self.out_scratch[pos..pos + n],
                    &mut self.dep_rt,
                )?;
                pos += n;
            }
            if let Some(is_float) = m.ret {
                let w = self.out_scratch[pos];
                let v = if is_float {
                    Value::Float(f64::from_bits(w))
                } else {
                    Value::Int(w as i64)
                };
                return Ok(Flow::Return(v));
            }
            return Ok(Flow::Normal);
        }

        // Miss: run the body — under a recording frame when the segment
        // is fingerprinted, so the entry can witness what it read — then
        // record outputs (and return value). Frames are maintained even
        // with validation off: the store may later serve validating
        // probes, and an entry without a fingerprint could never be
        // trusted by them.
        let tracking = fp_words > 0;
        if tracking {
            self.dep_rt.push_frame();
        }
        let flow = self.exec_block(&m.body)?;
        self.rec_scratch.clear();
        for op in &m.outputs {
            read_operand_into(
                &self.mem,
                self.frame,
                op,
                &mut self.rec_scratch,
                &mut self.dep_rt,
            )?;
        }
        let ret_flow = match (&flow, m.ret) {
            (Flow::Return(v), Some(is_float)) => {
                let w = if is_float {
                    v.as_float()?.to_bits()
                } else {
                    v.as_int()? as u64
                };
                self.rec_scratch.push(w);
                true
            }
            (Flow::Normal, None) => false,
            (Flow::Normal, Some(_)) => {
                // The body fell through without returning: don't record a
                // bogus return slot; skip recording entirely. The caller
                // will trap if it uses the missing value.
                if tracking {
                    self.dep_rt.pop_frame();
                }
                self.key_arena.truncate(ks);
                return Ok(Flow::Normal);
            }
            _ => {
                // Break/Continue cannot escape a legal segment.
                if tracking {
                    self.dep_rt.pop_frame();
                }
                self.key_arena.truncate(ks);
                return Ok(flow);
            }
        };
        self.fp_scratch.clear();
        if tracking {
            self.dep_rt
                .pop_frame_build_fp(&m.deps, &mut self.fp_scratch);
            self.tick(self.cost.fp_record_cost(fp_words));
            self.table_words += fp_words as u64;
        }
        self.table_words += m.out_words as u64;
        self.tables.record_dep(
            m.table as usize,
            m.slot as usize,
            &self.key_arena[ks..],
            &self.rec_scratch,
            &self.fp_scratch,
        );
        self.key_arena.truncate(ks);
        if ret_flow {
            Ok(flow)
        } else {
            Ok(Flow::Normal)
        }
    }

    fn exec_profile(&mut self, p: &LProfile) -> Result<Flow, Trap> {
        if self.profiler.is_none() {
            return self.exec_block(&p.body);
        }
        let ks = self.key_arena.len();
        for op in &p.inputs {
            read_operand_into(
                &self.mem,
                self.frame,
                op,
                &mut self.key_arena,
                &mut self.dep_rt,
            )?;
        }
        {
            let prof = self.profiler.as_mut().expect("profiler present");
            let seg = &mut prof.segs[p.seg as usize];
            seg.n += 1;
            let key = &self.key_arena[ks..];
            // Box the key only on first occurrence; repeats hit get_mut.
            if let Some(c) = seg.distinct.get_mut(key) {
                *c += 1;
            } else {
                seg.distinct.insert(key.into(), 1);
            }
            // Count this execution under each distinct active ancestor.
            self.seen_scratch.clear();
            for &(outer, _) in &self.profile_stack {
                if outer != p.seg && !self.seen_scratch.contains(&outer) {
                    self.seen_scratch.push(outer);
                    *seg.within.entry(outer).or_insert(0) += 1;
                }
            }
        }
        self.key_arena.truncate(ks);
        let entry_cycles = self.cycles;
        self.profile_stack.push((p.seg, entry_cycles));
        let flow = self.exec_block(&p.body);
        self.profile_stack.pop();
        let spent = self.cycles - entry_cycles;
        if let Some(prof) = self.profiler.as_mut() {
            prof.segs[p.seg as usize].body_cycles += spent;
        }
        flow
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn place_addr(&mut self, p: &LPlace) -> Result<usize, Trap> {
        match p {
            LPlace::Local(off) => Ok(self.frame + *off as usize),
            LPlace::Global(a) => Ok(*a as usize),
            LPlace::Mem(e) => self.eval(e)?.as_ptr(),
        }
    }

    fn charge_write(&mut self, c: WriteCost) {
        match c {
            WriteCost::Var => self.tick(self.cost.var_access),
            WriteCost::Mem => self.tick(self.cost.mem_access),
        }
    }

    fn charge_op(&mut self, c: CostKind) {
        let n = match c {
            CostKind::IntAlu => self.cost.int_alu,
            CostKind::IntMul => self.cost.int_mul,
            CostKind::IntDiv => self.cost.int_div,
            CostKind::FloatAlu => self.cost.float_alu,
            CostKind::FloatMul => self.cost.float_mul,
            CostKind::FloatDiv => self.cost.float_div,
        };
        self.tick(n);
    }

    fn eval(&mut self, e: &LExpr) -> Result<Value, Trap> {
        match e {
            LExpr::ConstI(v) => Ok(Value::Int(*v)),
            LExpr::ConstF(v) => Ok(Value::Float(*v)),
            LExpr::ConstFn(f) => Ok(Value::Func(*f)),
            LExpr::ReadLocal(off) => {
                self.tick(self.cost.var_access);
                Ok(self.mem[self.frame + *off as usize])
            }
            LExpr::ReadGlobal(a) => {
                self.tick(self.cost.mem_access);
                let a = *a as usize;
                if self.dep_rt.active() {
                    self.dep_rt.note_read(a);
                }
                Ok(self.mem[a])
            }
            LExpr::ReadMem(addr) => {
                let a = self.eval(addr)?.as_ptr()?;
                self.tick(self.cost.mem_access);
                self.read(a)
            }
            LExpr::AddrLocal(off) => Ok(Value::Ptr(self.frame + *off as usize)),
            LExpr::AddrGlobal(a) => Ok(Value::Ptr(*a as usize)),
            LExpr::PtrAdd(base, idx, stride) => {
                let b = self.eval(base)?.as_ptr()?;
                let i = self.eval(idx)?.as_int()?;
                self.tick(self.cost.int_alu);
                let delta = i.wrapping_mul(*stride);
                Ok(Value::Ptr((b as i64).wrapping_add(delta) as usize))
            }
            LExpr::PtrDiff(a, b, stride) => {
                let x = self.eval(a)?.as_ptr()? as i64;
                let y = self.eval(b)?.as_ptr()? as i64;
                self.tick(self.cost.int_alu);
                Ok(Value::Int((x - y) / *stride))
            }
            LExpr::Unary(op, a, ck) => {
                let v = self.eval(a)?;
                self.charge_op(*ck);
                unary_value(*op, v)
            }
            LExpr::Binary(op, a, b, ck) => {
                let x = self.eval(a)?;
                let y = self.eval(b)?;
                self.charge_op(*ck);
                binary_value(*op, x, y)
            }
            LExpr::Logic { and, a, b } => {
                self.tick(self.cost.branch);
                let x = self.eval(a)?.truthy()?;
                let decided = if *and { !x } else { x };
                if decided {
                    Ok(Value::Int(i64::from(x)))
                } else {
                    let y = self.eval(b)?.truthy()?;
                    Ok(Value::Int(i64::from(y)))
                }
            }
            LExpr::Ternary(c, t, f) => {
                self.tick(self.cost.branch);
                if self.eval(c)?.truthy()? {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            LExpr::Assign {
                place,
                value,
                coerce,
                write_cost,
            } => {
                let addr = self.place_addr(place)?;
                let v = self.eval(value)?;
                let v = coerce_value(v, *coerce)?;
                self.charge_write(*write_cost);
                self.write(addr, v)?;
                Ok(v)
            }
            LExpr::AssignOp {
                op,
                place,
                value,
                cost,
                coerce,
                ptr_stride,
                write_cost,
            } => {
                let addr = self.place_addr(place)?;
                let old = self.read(addr)?;
                let rhs = self.eval(value)?;
                self.charge_op(*cost);
                let new = match ptr_stride {
                    Some(stride) => {
                        let base = old.as_ptr()? as i64;
                        let step = rhs.as_int()?.wrapping_mul(*stride);
                        let delta = if *op == BinOp::Sub { -step } else { step };
                        Value::Ptr(base.wrapping_add(delta) as usize)
                    }
                    None => coerce_value(binary_value(*op, old, rhs)?, *coerce)?,
                };
                self.charge_write(*write_cost);
                self.write(addr, new)?;
                Ok(new)
            }
            LExpr::IncDec {
                place,
                delta,
                post,
                ptr_stride,
                write_cost,
            } => {
                let addr = self.place_addr(place)?;
                let old = self.read(addr)?;
                self.tick(self.cost.int_alu);
                let new = match (old, ptr_stride) {
                    (Value::Ptr(a), Some(stride)) => {
                        Value::Ptr((a as i64).wrapping_add(delta * stride) as usize)
                    }
                    (Value::Int(v), _) => Value::Int(v.wrapping_add(*delta)),
                    (Value::Float(v), _) => Value::Float(v + *delta as f64),
                    (Value::Uninit, _) => return Err(Trap::UninitRead),
                    (other, _) => {
                        let _ = other;
                        return Err(Trap::TypeConfusion("function"));
                    }
                };
                self.charge_write(*write_cost);
                self.write(addr, new)?;
                Ok(if *post { old } else { new })
            }
            LExpr::Call { callee, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for (a, coerce) in args {
                    let v = self.eval(a)?;
                    vals.push(coerce_value(v, *coerce)?);
                }
                match callee {
                    LCallee::Func(fid) => self.call(*fid, &vals),
                    LCallee::Builtin(b) => self.call_builtin(*b, &vals),
                    LCallee::Ptr(e) => match self.eval(e)? {
                        Value::Func(fid) => self.call(fid, &vals),
                        Value::Uninit => Err(Trap::UninitRead),
                        _ => Err(Trap::NotAFunction),
                    },
                }
            }
            LExpr::CastInt(a) => {
                let v = self.eval(a)?;
                self.tick(self.cost.int_alu);
                match v {
                    Value::Int(x) => Ok(Value::Int(x)),
                    Value::Float(x) => Ok(Value::Int(x as i64)),
                    Value::Ptr(a) => Ok(Value::Int(a as i64)),
                    Value::Uninit => Err(Trap::UninitRead),
                    Value::Func(_) => Err(Trap::TypeConfusion("function")),
                }
            }
            LExpr::CastFloat(a) => {
                let v = self.eval(a)?;
                self.tick(self.cost.float_alu);
                match v {
                    Value::Int(x) => Ok(Value::Float(x as f64)),
                    Value::Float(x) => Ok(Value::Float(x)),
                    Value::Uninit => Err(Trap::UninitRead),
                    _ => Err(Trap::TypeConfusion("pointer")),
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Helpers shared by both execution engines (the tree-walker above and the
// bytecode dispatch loop in `interp_bc`). Keeping them in one place is
// what makes the cycle/trap-parity contract auditable: an operation's
// semantics exist exactly once.
// ----------------------------------------------------------------------

/// Checked memory read (null + bounds), shared by both engines.
#[inline]
pub(crate) fn mem_read(mem: &[Value], addr: usize) -> Result<Value, Trap> {
    if addr == 0 {
        return Err(Trap::NullDeref);
    }
    match mem.get(addr) {
        Some(v) => Ok(*v),
        None => Err(Trap::OutOfBounds(addr)),
    }
}

/// Checked memory write (null + bounds), shared by both engines.
#[inline]
pub(crate) fn mem_write(mem: &mut [Value], addr: usize, v: Value) -> Result<(), Trap> {
    if addr == 0 {
        return Err(Trap::NullDeref);
    }
    match mem.get_mut(addr) {
        Some(cell) => {
            *cell = v;
            Ok(())
        }
        None => Err(Trap::OutOfBounds(addr)),
    }
}

/// Resolves a memo/profile operand to its base cell address.
pub(crate) fn operand_base(mem: &[Value], frame: usize, op: &LOperand) -> Result<usize, Trap> {
    match op.loc {
        OpLoc::Local(off) => Ok(frame + off as usize),
        OpLoc::Global(addr) => Ok(addr as usize),
        OpLoc::DerefLocal(off) => mem_read(mem, frame + off as usize)?.as_ptr(),
        OpLoc::DerefGlobal(addr) => mem_read(mem, addr as usize)?.as_ptr(),
    }
}

/// Appends an operand's bit pattern to `out` (key/record construction).
/// Appending to a caller-owned buffer keeps the hot path allocation-free.
/// Reads of tracked cells land in any active recording frames (an inner
/// memo's key build is a read the enclosing recording depends on).
pub(crate) fn read_operand_into(
    mem: &[Value],
    frame: usize,
    op: &LOperand,
    out: &mut Vec<u64>,
    dep: &mut DepRuntime,
) -> Result<(), Trap> {
    let base = operand_base(mem, frame, op)?;
    for i in 0..op.words as usize {
        let w = match mem_read(mem, base + i)? {
            Value::Int(v) => v as u64,
            Value::Float(v) => v.to_bits(),
            Value::Ptr(a) => a as u64,
            Value::Func(f) => f as u64,
            Value::Uninit => return Err(Trap::UninitRead),
        };
        out.push(w);
    }
    if dep.active() {
        for i in 0..op.words as usize {
            dep.note_read(base + i);
        }
    }
    Ok(())
}

/// Writes recorded words back into an operand's cells (memo hit restore).
/// Restored writes fold into the epoch chains like ordinary stores: a
/// restore changes tracked memory, so later validations must see it.
pub(crate) fn write_operand_from(
    mem: &mut [Value],
    frame: usize,
    op: &LOperand,
    words: &[u64],
    dep: &mut DepRuntime,
) -> Result<(), Trap> {
    let base = operand_base(mem, frame, op)?;
    for (i, &w) in words.iter().enumerate() {
        let v = if op.is_float {
            Value::Float(f64::from_bits(w))
        } else {
            Value::Int(w as i64)
        };
        mem_write(mem, base + i, v)?;
        dep.note_write(base + i, v);
    }
    Ok(())
}

/// Store-side coercion.
pub(crate) fn coerce_value(v: Value, c: Coerce) -> Result<Value, Trap> {
    match c {
        Coerce::None => Ok(v),
        Coerce::ToInt => match v {
            Value::Int(x) => Ok(Value::Int(x)),
            Value::Float(x) => Ok(Value::Int(x as i64)),
            Value::Uninit => Err(Trap::UninitRead),
            other => Err(Trap::TypeConfusion(match other {
                Value::Ptr(_) => "pointer",
                _ => "function",
            })),
        },
        Coerce::ToFloat => match v {
            Value::Int(x) => Ok(Value::Float(x as f64)),
            Value::Float(x) => Ok(Value::Float(x)),
            Value::Uninit => Err(Trap::UninitRead),
            _ => Err(Trap::TypeConfusion("pointer")),
        },
    }
}

/// Evaluates a unary operator (shared by both engines).
pub(crate) fn unary_value(op: UnOp, v: Value) -> Result<Value, Trap> {
    match op {
        UnOp::Neg => match v {
            Value::Int(x) => Ok(Value::Int(x.wrapping_neg())),
            Value::Float(x) => Ok(Value::Float(-x)),
            Value::Uninit => Err(Trap::UninitRead),
            _ => Err(Trap::TypeConfusion("pointer")),
        },
        UnOp::Not => Ok(Value::Int(i64::from(!v.truthy()?))),
        UnOp::BitNot => Ok(Value::Int(!v.as_int()?)),
        UnOp::Deref | UnOp::Addr => unreachable!("lowered away"),
    }
}

/// Evaluates a binary operator (shared by both engines).
pub(crate) fn binary_value(op: BinOp, a: Value, b: Value) -> Result<Value, Trap> {
    use BinOp::*;
    // Pointer comparisons (and null-literal comparisons).
    if matches!(a, Value::Ptr(_)) || matches!(b, Value::Ptr(_)) {
        let x = a.as_ptr()?;
        let y = b.as_ptr()?;
        let r = match op {
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
            Eq => x == y,
            Ne => x != y,
            _ => return Err(Trap::TypeConfusion("pointer")),
        };
        return Ok(Value::Int(i64::from(r)));
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_binary(op, x, y),
        _ => {
            let x = a.as_number()?;
            let y = b.as_number()?;
            float_binary(op, x, y)
        }
    }
}

fn int_binary(op: BinOp, x: i64, y: i64) -> Result<Value, Trap> {
    use BinOp::*;
    let v = match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        Div => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            x.wrapping_div(y)
        }
        Rem => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            x.wrapping_rem(y)
        }
        Shl => x.wrapping_shl(y as u32),
        Shr => x.wrapping_shr(y as u32),
        BitAnd => x & y,
        BitOr => x | y,
        BitXor => x ^ y,
        Lt => i64::from(x < y),
        Le => i64::from(x <= y),
        Gt => i64::from(x > y),
        Ge => i64::from(x >= y),
        Eq => i64::from(x == y),
        Ne => i64::from(x != y),
        LogAnd | LogOr => unreachable!("lowered to Logic"),
    };
    Ok(Value::Int(v))
}

fn float_binary(op: BinOp, x: f64, y: f64) -> Result<Value, Trap> {
    use BinOp::*;
    let v = match op {
        Add => x + y,
        Sub => x - y,
        Mul => x * y,
        Div => x / y,
        Lt => return Ok(Value::Int(i64::from(x < y))),
        Le => return Ok(Value::Int(i64::from(x <= y))),
        Gt => return Ok(Value::Int(i64::from(x > y))),
        Ge => return Ok(Value::Int(i64::from(x >= y))),
        Eq => return Ok(Value::Int(i64::from(x == y))),
        Ne => return Ok(Value::Int(i64::from(x != y))),
        Rem | Shl | Shr | BitAnd | BitOr | BitXor => {
            return Err(Trap::TypeConfusion("float"));
        }
        LogAnd | LogOr => unreachable!("lowered to Logic"),
    };
    Ok(Value::Float(v))
}
