//! Value-set profiling data (paper §2.1).
//!
//! The scheme needs, per candidate code segment: the number of execution
//! instances `N`, the number of *distinct sets* of input values `N_ds`
//! (single-variable value profiles cannot be combined — the paper's (x, y)
//! example), the measured computation granularity, and the nesting counts
//! feeding formula (4). The VM's `Profile` statements collect all of these
//! in one instrumented run.

use memo_runtime::hash::index_of;
use std::collections::HashMap;

/// Profile of one candidate code segment.
#[derive(Debug, Clone, Default)]
pub struct SegProfile {
    /// Segment name (for reports).
    pub name: String,
    /// Number of execution instances (the paper's `N`).
    pub n: u64,
    /// Distinct input value sets and how often each occurred.
    pub distinct: HashMap<Box<[u64]>, u64>,
    /// Total cycles spent executing the segment body (inclusive of
    /// callees), for the measured granularity `C`.
    pub body_cycles: u64,
    /// For each other profiled segment `outer`, how many of this segment's
    /// executions happened while `outer` was active — feeds the paper's
    /// `n` in formula (4).
    pub within: HashMap<u32, u64>,
}

impl SegProfile {
    /// Number of distinct input patterns (the paper's `N_ds`, Table 3's
    /// "DIP#").
    pub fn dip(&self) -> usize {
        self.distinct.len()
    }

    /// Reuse rate `R = 1 − N_ds / N` (formula from §2.1). Zero when the
    /// segment never ran.
    pub fn reuse_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            1.0 - self.dip() as f64 / self.n as f64
        }
    }

    /// Average measured cycles per execution (the granularity `C`).
    pub fn avg_cycles(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.body_cycles as f64 / self.n as f64
        }
    }

    /// Estimated hit-rate loss from hash collisions in a direct table with
    /// `slots` entries (§2.1: "we can count the hash collision rate for
    /// each value set and deduct the reuse rate accordingly").
    ///
    /// Keys mapping to the same slot evict each other; without the access
    /// order we assume adversarial interleaving: only the dominant key of
    /// each slot retains its repeats.
    pub fn collision_deduction(&self, slots: usize) -> f64 {
        if self.n == 0 || slots == 0 {
            return 0.0;
        }
        let mut per_slot: HashMap<usize, Vec<u64>> = HashMap::new();
        for (key, &count) in &self.distinct {
            per_slot
                .entry(index_of(key, slots))
                .or_default()
                .push(count);
        }
        let mut lost = 0u64;
        for counts in per_slot.values() {
            if counts.len() > 1 {
                let max = *counts.iter().max().expect("nonempty");
                let total: u64 = counts.iter().sum();
                // Repeats of non-dominant keys are assumed lost.
                lost += total - max - (counts.len() as u64 - 1);
            }
        }
        lost as f64 / self.n as f64
    }

    /// Reuse rate after deducting estimated collisions for `slots`.
    pub fn effective_reuse_rate(&self, slots: usize) -> f64 {
        (self.reuse_rate() - self.collision_deduction(slots)).max(0.0)
    }

    /// Histogram pairs `(value, count)` for single-word keys, sorted by
    /// value — the paper's Figures 5/6/12/13. `None` for multi-word keys.
    pub fn value_histogram(&self) -> Option<Vec<(i64, u64)>> {
        let mut pairs = Vec::with_capacity(self.distinct.len());
        for (key, &count) in &self.distinct {
            if key.len() != 1 {
                return None;
            }
            pairs.push((key[0] as i64, count));
        }
        pairs.sort_unstable();
        Some(pairs)
    }

    /// Access counts per distinct pattern, sorted descending — the paper's
    /// Figure 11 (RASTA's accesses of distinct input patterns).
    pub fn pattern_access_counts(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self.distinct.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }
}

/// All segment profiles of an instrumented run.
#[derive(Debug, Clone, Default)]
pub struct ProfileData {
    /// One profile per probe, indexed by segment index.
    pub segs: Vec<SegProfile>,
}

impl ProfileData {
    /// Average executions of segment `inner` per execution of segment
    /// `outer` (the `n` of formula (4)); zero if `outer` never ran.
    pub fn nesting_factor(&self, outer: u32, inner: u32) -> f64 {
        let outer_n = self.segs[outer as usize].n;
        if outer_n == 0 {
            return 0.0;
        }
        let inner_within = self.segs[inner as usize]
            .within
            .get(&outer)
            .copied()
            .unwrap_or(0);
        inner_within as f64 / outer_n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_with(counts: &[(&[u64], u64)]) -> SegProfile {
        let mut s = SegProfile::default();
        for (k, c) in counts {
            s.distinct.insert((*k).into(), *c);
            s.n += c;
        }
        s
    }

    #[test]
    fn reuse_rate_matches_formula() {
        // 100 executions, 10 distinct → R = 0.9.
        let mut s = SegProfile::default();
        for i in 0..10u64 {
            s.distinct.insert(vec![i].into(), 10);
        }
        s.n = 100;
        assert!((s.reuse_rate() - 0.9).abs() < 1e-12);
        assert_eq!(s.dip(), 10);
    }

    #[test]
    fn empty_segment_rates_are_zero() {
        let s = SegProfile::default();
        assert_eq!(s.reuse_rate(), 0.0);
        assert_eq!(s.avg_cycles(), 0.0);
        assert_eq!(s.collision_deduction(16), 0.0);
    }

    #[test]
    fn collision_deduction_zero_without_collisions() {
        // Keys 0..8 in 16 slots: no two share a slot.
        let s = seg_with(&[(&[0], 5), (&[1], 5), (&[7], 5)]);
        assert_eq!(s.collision_deduction(16), 0.0);
        assert!((s.effective_reuse_rate(16) - s.reuse_rate()).abs() < 1e-12);
    }

    #[test]
    fn collision_deduction_penalizes_shared_slots() {
        // Keys 1 and 17 share slot 1 of 16; dominant key keeps its repeats.
        let s = seg_with(&[(&[1], 10), (&[17], 4)]);
        let d = s.collision_deduction(16);
        // Lost = total(14) - max(10) - (2-1) = 3 of 14 accesses.
        assert!((d - 3.0 / 14.0).abs() < 1e-12);
        assert!(s.effective_reuse_rate(16) < s.reuse_rate());
    }

    #[test]
    fn value_histogram_sorted() {
        let s = seg_with(&[(&[5], 2), (&[1], 7), (&[3], 1)]);
        let h = s.value_histogram().unwrap();
        assert_eq!(h, vec![(1, 7), (3, 1), (5, 2)]);
    }

    #[test]
    fn multiword_keys_have_no_value_histogram() {
        let s = seg_with(&[(&[1, 2], 3)]);
        assert!(s.value_histogram().is_none());
        assert_eq!(s.pattern_access_counts(), vec![3]);
    }

    #[test]
    fn nesting_factor() {
        let outer = SegProfile {
            n: 10,
            ..SegProfile::default()
        };
        let mut inner = SegProfile {
            n: 55,
            ..SegProfile::default()
        };
        inner.within.insert(0, 50);
        let data = ProfileData {
            segs: vec![outer, inner],
        };
        assert!((data.nesting_factor(0, 1) - 5.0).abs() < 1e-12);
        assert_eq!(data.nesting_factor(1, 0), 0.0);
    }
}
