//! The specialized-tier dispatch loop (third engine).
//!
//! Executes a [`SpecCode`] built by [`crate::specialize::build`]: the
//! generic bytecode with mined `Super2` fusions substituted in place and
//! per-segment specialized clones appended. The loop is a copy of
//! `interp_bc` (same frame layout, same charge points, same memo/profile
//! region machinery) extended with three things:
//!
//! - `Super2(p)` executes both halves of fused pair `p` and advances the
//!   pc by two (the second half stays in place, so any jump landing on
//!   it executes it alone);
//! - `PushKnown` pushes a baked immediate while charging exactly the
//!   cost of the read it replaced;
//! - a **guard** at each planned `MemoEnter`: on a table miss with the
//!   built key equal to the plan's dominant key (and every folded slot
//!   holding the expected value class), execution jumps to the
//!   specialized clone; otherwise it *deopts* — falls through to the
//!   generic body, exactly once per missed probe, charging nothing.
//!
//! Observable equivalence with the other two engines is a hard contract
//! (DESIGN.md §8j); the differential and property suites assert
//! bit-for-bit equal [`Outcome`]s across all tier pairs.

use crate::bytecode::{BcModule, Instr};
use crate::cost::{cycles_to_seconds, CostModel};
use crate::deps_rt::DepRuntime;
use crate::interp::{
    binary_value, coerce_value, make_profiler, mem_read, mem_write, read_operand_into, unary_value,
    write_operand_from, Outcome, RunConfig,
};
use crate::lower::{Module, WriteCost};
use crate::specialize::{PairCode, SpecCode, SpecStats};
use crate::tables::TableHandles;
use crate::value::{PrintVal, Trap, Value};
use memo_runtime::TableState;
use minic::ast::BinOp;
use minic::sema::Builtin;

/// Sentinel return pc marking `main`'s frame: a `Ret` through it halts.
const HALT: u32 = u32::MAX;

/// A suspended caller: where to resume and the frame window to restore.
#[derive(Debug, Clone, Copy)]
struct FrameRec {
    ret_pc: u32,
    frame: usize,
    stack_top: usize,
}

/// A live memo/profile region (see `interp_bc::Region`).
#[derive(Debug, Clone, Copy)]
struct Region {
    memo: bool,
    id: u32,
    armed: bool,
    key_start: u32,
    entry_cycles: u64,
}

/// Runs a specialized module to completion. Setup and outcome layout
/// match `interp_bc::run_bc` exactly; `Outcome::spec` additionally
/// reports the specialization counters.
pub(crate) fn run_spec(
    module: &Module,
    spec: &SpecCode<'_>,
    config: RunConfig,
) -> Result<Outcome, Trap> {
    let globals_len = module.globals.len();
    let mut mem = Vec::with_capacity(globals_len + 4096);
    mem.extend_from_slice(&module.globals);

    let profiler = make_profiler(module);

    let tables = crate::tables::take_handles(
        config.tables,
        config.shared_tables,
        config.l1,
        module.table_count,
    );

    let mut m = SpecMachine {
        module,
        spec,
        bc: &spec.bc,
        mem,
        frame: 0,
        stack_top: globals_len,
        stack_limit: globals_len + config.stack_cells,
        depth: 0,
        max_depth: config.max_depth,
        cycles: 0,
        max_cycles: config.max_cycles,
        cost: config.cost,
        input: config.input,
        input_pos: 0,
        output: Vec::new(),
        tables,
        table_words: 0,
        func_calls: vec![0; module.funcs.len()],
        loop_counts: vec![0; module.loop_origins.len()],
        branch_counts: vec![0; module.branch_origins.len() * 2],
        profiler,
        stack: Vec::with_capacity(256),
        frames: Vec::with_capacity(64),
        regions: Vec::with_capacity(16),
        key_arena: Vec::new(),
        out_scratch: Vec::new(),
        rec_scratch: Vec::new(),
        seen_scratch: Vec::new(),
        dep_rt: DepRuntime::new(module),
        fp_scratch: Vec::new(),
        validate: config.validate,
        stats: SpecStats {
            fused_sites: spec.fused,
            cloned_segments: spec.cloned,
            ..SpecStats::default()
        },
    };

    let ret = m.exec()?;
    let ret = match ret {
        Value::Int(v) => v,
        _ => 0,
    };
    let energy = config.energy.energy_joules(m.cycles, m.table_words);
    let (tables, l1) = m.tables.into_parts();
    Ok(Outcome {
        output: m.output,
        ret,
        cycles: m.cycles,
        seconds: cycles_to_seconds(m.cycles),
        energy_joules: energy,
        table_words: m.table_words,
        func_calls: m.func_calls,
        loop_counts: m.loop_counts,
        branch_counts: m.branch_counts,
        tables,
        l1,
        profile: m.profiler,
        trace: None,
        spec: Some(m.stats),
    })
}

struct SpecMachine<'m, 'b> {
    module: &'m Module,
    spec: &'b SpecCode<'m>,
    /// `&spec.bc`, held separately so memo/profile helpers read exactly
    /// like `interp_bc`'s.
    bc: &'b BcModule<'m>,
    mem: Vec<Value>,
    frame: usize,
    stack_top: usize,
    stack_limit: usize,
    depth: usize,
    max_depth: usize,
    cycles: u64,
    max_cycles: u64,
    cost: CostModel,
    input: Vec<i64>,
    input_pos: usize,
    output: Vec<PrintVal>,
    tables: TableHandles,
    table_words: u64,
    func_calls: Vec<u64>,
    loop_counts: Vec<u64>,
    branch_counts: Vec<u64>,
    profiler: Option<crate::profile::ProfileData>,
    stack: Vec<Value>,
    frames: Vec<FrameRec>,
    regions: Vec<Region>,
    key_arena: Vec<u64>,
    out_scratch: Vec<u64>,
    rec_scratch: Vec<u64>,
    seen_scratch: Vec<u32>,
    dep_rt: DepRuntime,
    fp_scratch: Vec<u64>,
    validate: bool,
    /// Guard/fusion counters reported in [`Outcome::spec`].
    stats: SpecStats,
}

impl SpecMachine<'_, '_> {
    #[inline]
    fn tick(&mut self, n: u64) {
        self.cycles += n;
    }

    #[inline]
    fn check_budget(&self) -> Result<(), Trap> {
        if self.cycles > self.max_cycles {
            Err(Trap::CycleLimit)
        } else {
            Ok(())
        }
    }

    #[inline]
    fn charge_write(&mut self, c: WriteCost) {
        match c {
            WriteCost::Var => self.tick(self.cost.var_access),
            WriteCost::Mem => self.tick(self.cost.mem_access),
        }
    }

    #[inline]
    fn pop(&mut self) -> Value {
        self.stack.pop().expect("operand stack underflow")
    }

    #[inline]
    fn fast_arg(&self, a: &crate::bytecode::FastArg) -> Value {
        match a {
            crate::bytecode::FastArg::I(v) => Value::Int(*v),
            crate::bytecode::FastArg::Local(off) => self.mem[self.frame + *off as usize],
        }
    }

    /// Shared `++`/`--` read-modify-write (see `interp_bc::inc_dec`).
    fn inc_dec(
        &mut self,
        addr: usize,
        delta: i64,
        post: bool,
        ptr_stride: Option<i64>,
        write_cost: WriteCost,
        keep: bool,
    ) -> Result<(), Trap> {
        let old = mem_read(&self.mem, addr)?;
        if self.dep_rt.active() {
            self.dep_rt.note_read(addr);
        }
        self.tick(self.cost.int_alu);
        let new = match (old, ptr_stride) {
            (Value::Ptr(a), Some(stride)) => {
                Value::Ptr((a as i64).wrapping_add(delta * stride) as usize)
            }
            (Value::Int(v), _) => Value::Int(v.wrapping_add(delta)),
            (Value::Float(v), _) => Value::Float(v + delta as f64),
            (Value::Uninit, _) => return Err(Trap::UninitRead),
            (_, _) => return Err(Trap::TypeConfusion("function")),
        };
        self.charge_write(write_cost);
        mem_write(&mut self.mem, addr, new)?;
        self.dep_rt.note_write(addr, new);
        if keep {
            self.stack.push(if post { old } else { new });
        }
        Ok(())
    }

    /// Pushes a frame for `fid` and returns its entry pc (identical
    /// check/charge order to `interp_bc::enter_function`).
    fn enter_function(&mut self, fid: u32, nargs: usize, ret_pc: u32) -> Result<u32, Trap> {
        self.check_budget()?;
        if self.depth >= self.max_depth {
            return Err(Trap::StackOverflow);
        }
        self.depth += 1;
        self.tick(self.cost.call);
        self.func_calls[fid as usize] += 1;

        let func = &self.module.funcs[fid as usize];
        let new_base = self.stack_top;
        let new_top = new_base + func.frame as usize;
        if new_top > self.stack_limit {
            self.depth -= 1;
            return Err(Trap::StackOverflow);
        }
        if new_top > self.mem.len() {
            self.mem.resize(new_top, Value::Uninit);
        } else {
            self.mem[new_base..new_top].fill(Value::Uninit);
        }
        debug_assert_eq!(nargs, func.params.len(), "arity checked by sema");
        self.frames.push(FrameRec {
            ret_pc,
            frame: self.frame,
            stack_top: self.stack_top,
        });
        self.frame = new_base;
        self.stack_top = new_top;
        let argbase = self.stack.len() - nargs;
        for (i, &(off, coerce)) in func.params.iter().enumerate() {
            let v = coerce_value(self.stack[argbase + i], coerce)?;
            self.mem[new_base + off as usize] = v;
        }
        self.stack.truncate(argbase);
        Ok(self.bc.entries[fid as usize])
    }

    /// Executes one *linear* instruction (both halves of a `Super2` pair
    /// route through here). Linear instructions never transfer control,
    /// so no pc is involved; charges and traps are identical to the main
    /// dispatch arms.
    fn lin(&mut self, ins: &Instr) -> Result<(), Trap> {
        match ins {
            Instr::PushI(v) => self.stack.push(Value::Int(*v)),
            Instr::PushF(v) => self.stack.push(Value::Float(*v)),
            Instr::PushFn(f) => self.stack.push(Value::Func(*f)),
            Instr::PushUninit => self.stack.push(Value::Uninit),
            Instr::Pop => {
                self.pop();
            }
            Instr::ReadLocal(off) => {
                self.tick(self.cost.var_access);
                let v = self.mem[self.frame + *off as usize];
                self.stack.push(v);
            }
            Instr::ReadGlobal(a) => {
                self.tick(self.cost.mem_access);
                let v = self.mem[*a as usize];
                if self.dep_rt.active() {
                    self.dep_rt.note_read(*a as usize);
                }
                self.stack.push(v);
            }
            Instr::ReadMem => {
                let a = self.pop().as_ptr()?;
                self.tick(self.cost.mem_access);
                let v = mem_read(&self.mem, a)?;
                if self.dep_rt.active() {
                    self.dep_rt.note_read(a);
                }
                self.stack.push(v);
            }
            Instr::PtrAddRead { stride, cost } => {
                let i = self.pop().as_int()?;
                let b = self.pop().as_ptr()?;
                self.tick(u64::from(*cost));
                let addr = (b as i64).wrapping_add(i.wrapping_mul(*stride)) as usize;
                let v = mem_read(&self.mem, addr)?;
                if self.dep_rt.active() {
                    self.dep_rt.note_read(addr);
                }
                self.stack.push(v);
            }
            Instr::ReadIdx {
                global,
                base,
                idx,
                stride,
                pre_cost,
                post_cost,
            } => {
                let iv = self.fast_arg(idx);
                self.tick(u64::from(*pre_cost));
                let i = iv.as_int()?;
                self.tick(u64::from(*post_cost));
                let b = if *global {
                    *base as usize
                } else {
                    self.frame + *base as usize
                };
                let addr = (b as i64).wrapping_add(i.wrapping_mul(*stride)) as usize;
                let v = mem_read(&self.mem, addr)?;
                if self.dep_rt.active() {
                    self.dep_rt.note_read(addr);
                }
                self.stack.push(v);
            }
            Instr::AddrLocal(off) => {
                self.stack.push(Value::Ptr(self.frame + *off as usize));
            }
            Instr::AddrGlobal(a) => self.stack.push(Value::Ptr(*a as usize)),
            Instr::CheckPtr => {
                let a = self.pop().as_ptr()?;
                self.stack.push(Value::Ptr(a));
            }
            Instr::PtrAdd(stride) => {
                let i = self.pop().as_int()?;
                let b = self.pop().as_ptr()?;
                self.tick(self.cost.int_alu);
                let delta = i.wrapping_mul(*stride);
                self.stack
                    .push(Value::Ptr((b as i64).wrapping_add(delta) as usize));
            }
            Instr::PtrDiff(stride) => {
                let y = self.pop().as_ptr()? as i64;
                let x = self.pop().as_ptr()? as i64;
                self.tick(self.cost.int_alu);
                self.stack.push(Value::Int((x - y) / *stride));
            }
            Instr::Unary(op, c) => {
                let v = self.pop();
                self.tick(*c);
                self.stack.push(unary_value(*op, v)?);
            }
            Instr::Binary(op, c) => {
                let y = self.pop();
                let x = self.pop();
                self.tick(*c);
                self.stack.push(binary_value(*op, x, y)?);
            }
            Instr::BinaryFast { op, a, b, cost } => {
                let x = self.fast_arg(a);
                let y = self.fast_arg(b);
                self.tick(*cost);
                self.stack.push(binary_value(*op, x, y)?);
            }
            Instr::Truthy => {
                let v = self.pop().truthy()?;
                self.stack.push(Value::Int(i64::from(v)));
            }
            Instr::Tick(n) => self.tick(*n),
            Instr::WhileHead(c) | Instr::ForHead(c) => {
                self.check_budget()?;
                self.tick(*c);
            }
            Instr::DoHead { loop_idx, cost } => {
                self.check_budget()?;
                self.loop_counts[*loop_idx as usize] += 1;
                self.tick(*cost);
            }
            Instr::LoopCount(loop_idx) => {
                self.loop_counts[*loop_idx as usize] += 1;
            }
            Instr::DeclStore { slot, coerce } => {
                let v = coerce_value(self.pop(), *coerce)?;
                self.tick(self.cost.var_access);
                let addr = self.frame + *slot as usize;
                self.mem[addr] = v;
            }
            Instr::Store { coerce, write_cost } => {
                let v = self.pop();
                let addr = self.pop().as_ptr()?;
                let v = coerce_value(v, *coerce)?;
                self.charge_write(*write_cost);
                mem_write(&mut self.mem, addr, v)?;
                self.dep_rt.note_write(addr, v);
                self.stack.push(v);
            }
            Instr::StoreLocal {
                slot,
                coerce,
                write_cost,
                keep,
            } => {
                let v = coerce_value(self.pop(), *coerce)?;
                self.charge_write(*write_cost);
                mem_write(&mut self.mem, self.frame + *slot as usize, v)?;
                if *keep {
                    self.stack.push(v);
                }
            }
            Instr::LoadDupAddr => {
                let addr = self.pop().as_ptr()?;
                let old = mem_read(&self.mem, addr)?;
                if self.dep_rt.active() {
                    self.dep_rt.note_read(addr);
                }
                self.stack.push(Value::Ptr(addr));
                self.stack.push(old);
            }
            Instr::AssignOpFin {
                op,
                cost,
                coerce,
                ptr_stride,
                write_cost,
            } => {
                let rhs = self.pop();
                let old = self.pop();
                let addr = self.pop().as_ptr()?;
                self.tick(*cost);
                let new = match ptr_stride {
                    Some(stride) => {
                        let base = old.as_ptr()? as i64;
                        let step = rhs.as_int()?.wrapping_mul(*stride);
                        let delta = if *op == BinOp::Sub { -step } else { step };
                        Value::Ptr(base.wrapping_add(delta) as usize)
                    }
                    None => coerce_value(binary_value(*op, old, rhs)?, *coerce)?,
                };
                self.charge_write(*write_cost);
                mem_write(&mut self.mem, addr, new)?;
                self.dep_rt.note_write(addr, new);
                self.stack.push(new);
            }
            Instr::IncDecFin {
                delta,
                post,
                ptr_stride,
                write_cost,
            } => {
                let addr = self.pop().as_ptr()?;
                self.inc_dec(addr, *delta, *post, *ptr_stride, *write_cost, true)?;
            }
            Instr::IncDecLocal {
                slot,
                delta,
                post,
                ptr_stride,
                write_cost,
                keep,
            } => {
                let addr = self.frame + *slot as usize;
                self.inc_dec(addr, *delta, *post, *ptr_stride, *write_cost, *keep)?;
            }
            Instr::CoerceVal(c) => {
                let v = coerce_value(self.pop(), *c)?;
                self.stack.push(v);
            }
            Instr::CastInt => {
                let v = self.pop();
                self.tick(self.cost.int_alu);
                let v = match v {
                    Value::Int(x) => Value::Int(x),
                    Value::Float(x) => Value::Int(x as i64),
                    Value::Ptr(a) => Value::Int(a as i64),
                    Value::Uninit => return Err(Trap::UninitRead),
                    Value::Func(_) => return Err(Trap::TypeConfusion("function")),
                };
                self.stack.push(v);
            }
            Instr::CastFloat => {
                let v = self.pop();
                self.tick(self.cost.float_alu);
                let v = match v {
                    Value::Int(x) => Value::Float(x as f64),
                    Value::Float(x) => Value::Float(x),
                    Value::Uninit => return Err(Trap::UninitRead),
                    _ => return Err(Trap::TypeConfusion("pointer")),
                };
                self.stack.push(v);
            }
            Instr::PushKnown { w, float, cost } => {
                self.tick(u64::from(*cost));
                self.stack.push(if *float {
                    Value::Float(f64::from_bits(*w))
                } else {
                    Value::Int(*w as i64)
                });
            }
            _ => unreachable!("non-linear instruction inside a Super2 pair"),
        }
        Ok(())
    }

    fn exec(&mut self) -> Result<Value, Trap> {
        let code: &[Instr] = &self.spec.bc.code;
        let mut pc = self.enter_function(self.module.main, 0, HALT)?;
        loop {
            match &code[pc as usize] {
                Instr::Super2(p) => {
                    match &self.spec.pairs[*p as usize] {
                        PairCode::PushIBinary { v, op, c } => {
                            let x = self.pop();
                            self.tick(*c);
                            let r = binary_value(*op, x, Value::Int(*v))?;
                            self.stack.push(r);
                        }
                        PairCode::BinaryPushI { op, c, v } => {
                            let y = self.pop();
                            let x = self.pop();
                            self.tick(*c);
                            let r = binary_value(*op, x, y)?;
                            self.stack.push(r);
                            self.stack.push(Value::Int(*v));
                        }
                        PairCode::BinaryBinary { op1, c1, op2, c2 } => {
                            let y = self.pop();
                            let x = self.pop();
                            self.tick(*c1);
                            let r1 = binary_value(*op1, x, y)?;
                            let x2 = self.pop();
                            self.tick(*c2);
                            let r2 = binary_value(*op2, x2, r1)?;
                            self.stack.push(r2);
                        }
                        PairCode::BinaryStore {
                            op,
                            c,
                            slot,
                            coerce,
                            write_cost,
                            keep,
                        } => {
                            let y = self.pop();
                            let x = self.pop();
                            self.tick(*c);
                            let v = coerce_value(binary_value(*op, x, y)?, *coerce)?;
                            self.charge_write(*write_cost);
                            mem_write(&mut self.mem, self.frame + *slot as usize, v)?;
                            if *keep {
                                self.stack.push(v);
                            }
                        }
                        PairCode::FastBinary {
                            op1,
                            a,
                            b,
                            c1,
                            op2,
                            c2,
                        } => {
                            let fa = self.fast_arg(a);
                            let fb = self.fast_arg(b);
                            self.tick(*c1);
                            let r1 = binary_value(*op1, fa, fb)?;
                            let x = self.pop();
                            self.tick(*c2);
                            let r2 = binary_value(*op2, x, r1)?;
                            self.stack.push(r2);
                        }
                        PairCode::FastStore {
                            op,
                            a,
                            b,
                            c,
                            slot,
                            coerce,
                            write_cost,
                            keep,
                        } => {
                            let fa = self.fast_arg(a);
                            let fb = self.fast_arg(b);
                            self.tick(*c);
                            let v = coerce_value(binary_value(*op, fa, fb)?, *coerce)?;
                            self.charge_write(*write_cost);
                            mem_write(&mut self.mem, self.frame + *slot as usize, v)?;
                            if *keep {
                                self.stack.push(v);
                            }
                        }
                        PairCode::ReadBinary { off, op, c } => {
                            self.tick(self.cost.var_access);
                            let v = self.mem[self.frame + *off as usize];
                            let x = self.pop();
                            self.tick(*c);
                            let r = binary_value(*op, x, v)?;
                            self.stack.push(r);
                        }
                        PairCode::ReadFast { off, op, a, b, c } => {
                            self.tick(self.cost.var_access);
                            let v = self.mem[self.frame + *off as usize];
                            self.stack.push(v);
                            let fa = self.fast_arg(a);
                            let fb = self.fast_arg(b);
                            self.tick(*c);
                            let r = binary_value(*op, fa, fb)?;
                            self.stack.push(r);
                        }
                        PairCode::FastRead { op, a, b, c, off } => {
                            let fa = self.fast_arg(a);
                            let fb = self.fast_arg(b);
                            self.tick(*c);
                            let r = binary_value(*op, fa, fb)?;
                            self.stack.push(r);
                            self.tick(self.cost.var_access);
                            let v = self.mem[self.frame + *off as usize];
                            self.stack.push(v);
                        }
                        PairCode::CountRead { loop_idx, off } => {
                            self.loop_counts[*loop_idx as usize] += 1;
                            self.tick(self.cost.var_access);
                            let v = self.mem[self.frame + *off as usize];
                            self.stack.push(v);
                        }
                        PairCode::Generic([a, b]) => {
                            self.lin(a)?;
                            self.lin(b)?;
                        }
                    }
                    pc += 2;
                }
                Instr::PushKnown { w, float, cost } => {
                    self.tick(u64::from(*cost));
                    self.stack.push(if *float {
                        Value::Float(f64::from_bits(*w))
                    } else {
                        Value::Int(*w as i64)
                    });
                    pc += 1;
                }
                Instr::PushI(v) => {
                    self.stack.push(Value::Int(*v));
                    pc += 1;
                }
                Instr::PushF(v) => {
                    self.stack.push(Value::Float(*v));
                    pc += 1;
                }
                Instr::PushFn(f) => {
                    self.stack.push(Value::Func(*f));
                    pc += 1;
                }
                Instr::PushUninit => {
                    self.stack.push(Value::Uninit);
                    pc += 1;
                }
                Instr::Pop => {
                    self.pop();
                    pc += 1;
                }
                Instr::ReadLocal(off) => {
                    self.tick(self.cost.var_access);
                    let v = self.mem[self.frame + *off as usize];
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::ReadGlobal(a) => {
                    self.tick(self.cost.mem_access);
                    let v = self.mem[*a as usize];
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(*a as usize);
                    }
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::ReadMem => {
                    let a = self.pop().as_ptr()?;
                    self.tick(self.cost.mem_access);
                    let v = mem_read(&self.mem, a)?;
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(a);
                    }
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::PtrAddRead { stride, cost } => {
                    let i = self.pop().as_int()?;
                    let b = self.pop().as_ptr()?;
                    self.tick(u64::from(*cost));
                    let addr = (b as i64).wrapping_add(i.wrapping_mul(*stride)) as usize;
                    let v = mem_read(&self.mem, addr)?;
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(addr);
                    }
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::ReadIdx {
                    global,
                    base,
                    idx,
                    stride,
                    pre_cost,
                    post_cost,
                } => {
                    let iv = self.fast_arg(idx);
                    self.tick(u64::from(*pre_cost));
                    let i = iv.as_int()?;
                    self.tick(u64::from(*post_cost));
                    let b = if *global {
                        *base as usize
                    } else {
                        self.frame + *base as usize
                    };
                    let addr = (b as i64).wrapping_add(i.wrapping_mul(*stride)) as usize;
                    let v = mem_read(&self.mem, addr)?;
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(addr);
                    }
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::AddrLocal(off) => {
                    self.stack.push(Value::Ptr(self.frame + *off as usize));
                    pc += 1;
                }
                Instr::AddrGlobal(a) => {
                    self.stack.push(Value::Ptr(*a as usize));
                    pc += 1;
                }
                Instr::CheckPtr => {
                    let a = self.pop().as_ptr()?;
                    self.stack.push(Value::Ptr(a));
                    pc += 1;
                }
                Instr::PtrAdd(stride) => {
                    let i = self.pop().as_int()?;
                    let b = self.pop().as_ptr()?;
                    self.tick(self.cost.int_alu);
                    let delta = i.wrapping_mul(*stride);
                    self.stack
                        .push(Value::Ptr((b as i64).wrapping_add(delta) as usize));
                    pc += 1;
                }
                Instr::PtrDiff(stride) => {
                    let y = self.pop().as_ptr()? as i64;
                    let x = self.pop().as_ptr()? as i64;
                    self.tick(self.cost.int_alu);
                    self.stack.push(Value::Int((x - y) / *stride));
                    pc += 1;
                }
                Instr::Unary(op, c) => {
                    let v = self.pop();
                    self.tick(*c);
                    self.stack.push(unary_value(*op, v)?);
                    pc += 1;
                }
                Instr::Binary(op, c) => {
                    let y = self.pop();
                    let x = self.pop();
                    self.tick(*c);
                    self.stack.push(binary_value(*op, x, y)?);
                    pc += 1;
                }
                Instr::BinaryFast { op, a, b, cost } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(*cost);
                    self.stack.push(binary_value(*op, x, y)?);
                    pc += 1;
                }
                Instr::Truthy => {
                    let v = self.pop().truthy()?;
                    self.stack.push(Value::Int(i64::from(v)));
                    pc += 1;
                }
                Instr::Tick(n) => {
                    self.tick(*n);
                    pc += 1;
                }
                Instr::ShortCircuit { and, end } => {
                    let x = self.pop().truthy()?;
                    let decided = if *and { !x } else { x };
                    if decided {
                        self.stack.push(Value::Int(i64::from(x)));
                        pc = *end;
                    } else {
                        pc += 1;
                    }
                }
                Instr::Jump(t) => pc = *t,
                Instr::JumpIfFalse(t) => {
                    if self.pop().truthy()? {
                        pc += 1;
                    } else {
                        pc = *t;
                    }
                }
                Instr::JumpIfTrue(t) => {
                    if self.pop().truthy()? {
                        pc = *t;
                    } else {
                        pc += 1;
                    }
                }
                Instr::JumpIfFalseCmp {
                    op,
                    a,
                    b,
                    cost,
                    target,
                } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(u64::from(*cost));
                    if binary_value(*op, x, y)?.truthy()? {
                        pc += 1;
                    } else {
                        pc = *target;
                    }
                }
                Instr::JumpIfTrueCmp {
                    op,
                    a,
                    b,
                    cost,
                    target,
                } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(u64::from(*cost));
                    if binary_value(*op, x, y)?.truthy()? {
                        pc = *target;
                    } else {
                        pc += 1;
                    }
                }
                Instr::BranchIf {
                    branch_idx,
                    else_target,
                } => {
                    let taken = self.pop().truthy()?;
                    let slot = (*branch_idx as usize) * 2 + usize::from(!taken);
                    self.branch_counts[slot] += 1;
                    if taken {
                        pc += 1;
                    } else {
                        pc = *else_target;
                    }
                }
                Instr::BranchIfCmp {
                    op,
                    a,
                    b,
                    cost,
                    branch_idx,
                    else_target,
                } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(u64::from(*cost));
                    let taken = binary_value(*op, x, y)?.truthy()?;
                    let slot = (*branch_idx as usize) * 2 + usize::from(!taken);
                    self.branch_counts[slot] += 1;
                    if taken {
                        pc += 1;
                    } else {
                        pc = *else_target;
                    }
                }
                Instr::WhileHead(c) => {
                    self.check_budget()?;
                    self.tick(*c);
                    pc += 1;
                }
                Instr::LoopCond { loop_idx, end } => {
                    if self.pop().truthy()? {
                        self.loop_counts[*loop_idx as usize] += 1;
                        pc += 1;
                    } else {
                        pc = *end;
                    }
                }
                Instr::LoopCondCmp {
                    op,
                    a,
                    b,
                    cost,
                    loop_idx,
                    end,
                } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(u64::from(*cost));
                    if binary_value(*op, x, y)?.truthy()? {
                        self.loop_counts[*loop_idx as usize] += 1;
                        pc += 1;
                    } else {
                        pc = *end;
                    }
                }
                Instr::ForHead(c) => {
                    self.check_budget()?;
                    self.tick(*c);
                    pc += 1;
                }
                Instr::DoHead { loop_idx, cost } => {
                    self.check_budget()?;
                    self.loop_counts[*loop_idx as usize] += 1;
                    self.tick(*cost);
                    pc += 1;
                }
                Instr::LoopCount(loop_idx) => {
                    self.loop_counts[*loop_idx as usize] += 1;
                    pc += 1;
                }
                Instr::DeclStore { slot, coerce } => {
                    let v = coerce_value(self.pop(), *coerce)?;
                    self.tick(self.cost.var_access);
                    let addr = self.frame + *slot as usize;
                    self.mem[addr] = v;
                    pc += 1;
                }
                Instr::Store { coerce, write_cost } => {
                    let v = self.pop();
                    let addr = self.pop().as_ptr()?;
                    let v = coerce_value(v, *coerce)?;
                    self.charge_write(*write_cost);
                    mem_write(&mut self.mem, addr, v)?;
                    self.dep_rt.note_write(addr, v);
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::StoreLocal {
                    slot,
                    coerce,
                    write_cost,
                    keep,
                } => {
                    let v = coerce_value(self.pop(), *coerce)?;
                    self.charge_write(*write_cost);
                    mem_write(&mut self.mem, self.frame + *slot as usize, v)?;
                    if *keep {
                        self.stack.push(v);
                    }
                    pc += 1;
                }
                Instr::LoadDupAddr => {
                    let addr = self.pop().as_ptr()?;
                    let old = mem_read(&self.mem, addr)?;
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(addr);
                    }
                    self.stack.push(Value::Ptr(addr));
                    self.stack.push(old);
                    pc += 1;
                }
                Instr::AssignOpFin {
                    op,
                    cost,
                    coerce,
                    ptr_stride,
                    write_cost,
                } => {
                    let rhs = self.pop();
                    let old = self.pop();
                    let addr = self.pop().as_ptr()?;
                    self.tick(*cost);
                    let new = match ptr_stride {
                        Some(stride) => {
                            let base = old.as_ptr()? as i64;
                            let step = rhs.as_int()?.wrapping_mul(*stride);
                            let delta = if *op == BinOp::Sub { -step } else { step };
                            Value::Ptr(base.wrapping_add(delta) as usize)
                        }
                        None => coerce_value(binary_value(*op, old, rhs)?, *coerce)?,
                    };
                    self.charge_write(*write_cost);
                    mem_write(&mut self.mem, addr, new)?;
                    self.dep_rt.note_write(addr, new);
                    self.stack.push(new);
                    pc += 1;
                }
                Instr::IncDecFin {
                    delta,
                    post,
                    ptr_stride,
                    write_cost,
                } => {
                    let addr = self.pop().as_ptr()?;
                    self.inc_dec(addr, *delta, *post, *ptr_stride, *write_cost, true)?;
                    pc += 1;
                }
                Instr::IncDecLocal {
                    slot,
                    delta,
                    post,
                    ptr_stride,
                    write_cost,
                    keep,
                } => {
                    let addr = self.frame + *slot as usize;
                    self.inc_dec(addr, *delta, *post, *ptr_stride, *write_cost, *keep)?;
                    pc += 1;
                }
                Instr::CoerceVal(c) => {
                    let v = coerce_value(self.pop(), *c)?;
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::CallFunc(fid) => {
                    let nargs = self.module.funcs[*fid as usize].params.len();
                    pc = self.enter_function(*fid, nargs, pc + 1)?;
                }
                Instr::CallBuiltin { builtin, nargs } => {
                    self.tick(self.cost.builtin);
                    let base = self.stack.len() - *nargs as usize;
                    let result = match builtin {
                        Builtin::Print => {
                            let v = match self.stack[base] {
                                Value::Int(v) => PrintVal::Int(v),
                                Value::Float(v) => PrintVal::Float(v),
                                Value::Uninit => return Err(Trap::UninitRead),
                                _ => return Err(Trap::TypeConfusion("pointer")),
                            };
                            self.output.push(v);
                            Value::Uninit
                        }
                        Builtin::Input => {
                            let v = self.input.get(self.input_pos).copied().unwrap_or(0);
                            self.input_pos += 1;
                            Value::Int(v)
                        }
                        Builtin::Eof => Value::Int(i64::from(self.input_pos >= self.input.len())),
                        Builtin::Assert => {
                            if self.stack[base].truthy()? {
                                Value::Uninit
                            } else {
                                return Err(Trap::AssertFailed);
                            }
                        }
                    };
                    self.stack.truncate(base);
                    self.stack.push(result);
                    pc += 1;
                }
                Instr::CallIndirect(nargs) => match self.pop() {
                    Value::Func(fid) => {
                        pc = self.enter_function(fid, *nargs as usize, pc + 1)?;
                    }
                    Value::Uninit => return Err(Trap::UninitRead),
                    _ => return Err(Trap::NotAFunction),
                },
                Instr::CastInt => {
                    let v = self.pop();
                    self.tick(self.cost.int_alu);
                    let v = match v {
                        Value::Int(x) => Value::Int(x),
                        Value::Float(x) => Value::Int(x as i64),
                        Value::Ptr(a) => Value::Int(a as i64),
                        Value::Uninit => return Err(Trap::UninitRead),
                        Value::Func(_) => return Err(Trap::TypeConfusion("function")),
                    };
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::CastFloat => {
                    let v = self.pop();
                    self.tick(self.cost.float_alu);
                    let v = match v {
                        Value::Int(x) => Value::Float(x as f64),
                        Value::Float(x) => Value::Float(x),
                        Value::Uninit => return Err(Trap::UninitRead),
                        _ => return Err(Trap::TypeConfusion("pointer")),
                    };
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::Ret => {
                    let v = self.pop();
                    let fr = self.frames.pop().expect("call frame");
                    self.frame = fr.frame;
                    self.stack_top = fr.stack_top;
                    self.depth -= 1;
                    if fr.ret_pc == HALT {
                        return Ok(v);
                    }
                    self.stack.push(v);
                    pc = fr.ret_pc;
                }
                Instr::MemoEnter { id, hit_target } => {
                    pc = self.memo_enter(*id, *hit_target, pc)?;
                }
                Instr::MemoExitNormal(id) => {
                    self.memo_exit_normal(*id)?;
                    pc += 1;
                }
                Instr::MemoExitRet(id) => {
                    self.memo_exit_ret(*id)?;
                    pc += 1;
                }
                Instr::MemoExitBreak(id) => {
                    self.memo_exit_break(*id)?;
                    pc += 1;
                }
                Instr::ProfileEnter(id) => {
                    self.profile_enter(*id)?;
                    pc += 1;
                }
                Instr::ProfileExit(id) => {
                    self.profile_exit(*id);
                    pc += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Memo and profile regions (identical to interp_bc except the guard
    // fork at the end of memo_enter's miss path)
    // ------------------------------------------------------------------

    /// Whether every folded slot currently holds the value class the
    /// guard baked in. An integer key word is bit-identical to a
    /// pointer's (`read_operand_into` encodes both raw), so a key match
    /// alone cannot prove the clone's immediates are faithful.
    fn folds_ok(&self, folds: &[(u32, bool)]) -> bool {
        folds
            .iter()
            .all(|&(off, float)| match self.mem[self.frame + off as usize] {
                Value::Int(_) => !float,
                Value::Float(_) => float,
                _ => false,
            })
    }

    /// Memo segment entry. The guard (if one is planned at this pc)
    /// fires only on a table miss: a matching key jumps to the
    /// specialized clone, a mismatch deopts — falls through to the
    /// generic body, exactly once per missed probe. Either way charges
    /// nothing: the guard is host-side control flow.
    fn memo_enter(&mut self, id: u32, hit_target: u32, pc: u32) -> Result<u32, Trap> {
        let m = self.bc.memos[id as usize];
        if self.tables.state(m.table as usize) == TableState::Bypassed {
            self.tick(self.cost.branch);
            self.out_scratch.clear();
            let hit = self.tables.lookup(
                m.table as usize,
                m.slot as usize,
                &[],
                &mut self.out_scratch,
            );
            debug_assert!(!hit, "bypassed lookups are forced misses");
            self.regions.push(Region {
                memo: true,
                id,
                armed: false,
                key_start: self.key_arena.len() as u32,
                entry_cycles: 0,
            });
            return Ok(pc + 1);
        }

        let ks = self.key_arena.len();
        for op in &m.inputs {
            read_operand_into(
                &self.mem,
                self.frame,
                op,
                &mut self.key_arena,
                &mut self.dep_rt,
            )?;
        }
        self.tick(self.bc.memo_cost[id as usize]);
        self.table_words += (m.key_words + m.out_words) as u64;

        let fp_words = m.fp_words as usize;
        let validating = fp_words > 0 && self.validate;
        if validating {
            self.tick(self.cost.fp_probe_cost(fp_words));
            self.table_words += fp_words as u64;
        }
        self.out_scratch.clear();
        let hit = {
            let dep_rt = &self.dep_rt;
            let mut validator = |fp: &[u64]| dep_rt.validate(&m.deps, fp);
            self.tables.lookup_dep(
                m.table as usize,
                m.slot as usize,
                &self.key_arena[ks..],
                &mut self.out_scratch,
                m.green,
                if validating {
                    Some(&mut validator)
                } else {
                    None
                },
            )
        };
        if hit {
            self.key_arena.truncate(ks);
            if self.dep_rt.active() && !m.deps.is_empty() {
                self.dep_rt.note_nested_hit(&m.deps);
            }
            let mut pos = 0usize;
            for op in &m.outputs {
                let n = op.words as usize;
                write_operand_from(
                    &mut self.mem,
                    self.frame,
                    op,
                    &self.out_scratch[pos..pos + n],
                    &mut self.dep_rt,
                )?;
                pos += n;
            }
            if let Some(is_float) = m.ret {
                let w = self.out_scratch[pos];
                self.stack.push(if is_float {
                    Value::Float(f64::from_bits(w))
                } else {
                    Value::Int(w as i64)
                });
            }
            Ok(hit_target)
        } else {
            if fp_words > 0 {
                self.dep_rt.push_frame();
            }
            self.regions.push(Region {
                memo: true,
                id,
                armed: true,
                key_start: ks as u32,
                entry_cycles: 0,
            });
            // Guard fork: only at the original MemoEnter pc (a cloned
            // nested MemoEnter sits elsewhere and takes the generic
            // path). Recording on exit happens under the *live* key in
            // the arena either way — a specialized run can never create
            // a specialized-keyed table entry.
            if let Some(g) = &self.spec.guards[id as usize] {
                if g.enter_pc == pc {
                    self.stats.guard_probes += 1;
                    if self.key_arena[ks..] == g.key[..] && self.folds_ok(&g.folds) {
                        self.stats.guard_hits += 1;
                        return Ok(g.target);
                    }
                    self.stats.deopts += 1;
                }
            }
            Ok(pc + 1)
        }
    }

    /// Reads the segment's outputs into `rec_scratch` (trap parity).
    fn read_outputs(&mut self, id: u32) -> Result<(), Trap> {
        let m = self.bc.memos[id as usize];
        self.rec_scratch.clear();
        for op in &m.outputs {
            read_operand_into(
                &self.mem,
                self.frame,
                op,
                &mut self.rec_scratch,
                &mut self.dep_rt,
            )?;
        }
        Ok(())
    }

    /// Memo body fell through its end (generic or cloned copy alike).
    fn memo_exit_normal(&mut self, id: u32) -> Result<(), Trap> {
        let r = self.regions.pop().expect("memo region");
        debug_assert!(r.memo && r.id == id, "region stack out of sync");
        if !r.armed {
            return Ok(());
        }
        self.read_outputs(id)?;
        let m = self.bc.memos[id as usize];
        let tracking = m.fp_words > 0;
        if m.ret.is_none() {
            self.fp_scratch.clear();
            if tracking {
                self.dep_rt
                    .pop_frame_build_fp(&m.deps, &mut self.fp_scratch);
                self.tick(self.cost.fp_record_cost(m.fp_words as usize));
                self.table_words += m.fp_words as u64;
            }
            self.table_words += m.out_words as u64;
            let ks = r.key_start as usize;
            self.tables.record_dep(
                m.table as usize,
                m.slot as usize,
                &self.key_arena[ks..],
                &self.rec_scratch,
                &self.fp_scratch,
            );
        } else if tracking {
            self.dep_rt.pop_frame();
        }
        self.key_arena.truncate(r.key_start as usize);
        Ok(())
    }

    /// Memo region unwound by `return`.
    fn memo_exit_ret(&mut self, id: u32) -> Result<(), Trap> {
        let r = self.regions.pop().expect("memo region");
        debug_assert!(r.memo && r.id == id, "region stack out of sync");
        if !r.armed {
            return Ok(());
        }
        self.read_outputs(id)?;
        let m = self.bc.memos[id as usize];
        let tracking = m.fp_words > 0;
        if let Some(is_float) = m.ret {
            let v = *self.stack.last().expect("return value");
            let w = if is_float {
                v.as_float()?.to_bits()
            } else {
                v.as_int()? as u64
            };
            self.rec_scratch.push(w);
            self.fp_scratch.clear();
            if tracking {
                self.dep_rt
                    .pop_frame_build_fp(&m.deps, &mut self.fp_scratch);
                self.tick(self.cost.fp_record_cost(m.fp_words as usize));
                self.table_words += m.fp_words as u64;
            }
            self.table_words += m.out_words as u64;
            let ks = r.key_start as usize;
            self.tables.record_dep(
                m.table as usize,
                m.slot as usize,
                &self.key_arena[ks..],
                &self.rec_scratch,
                &self.fp_scratch,
            );
        } else if tracking {
            self.dep_rt.pop_frame();
        }
        self.key_arena.truncate(r.key_start as usize);
        Ok(())
    }

    /// Memo region unwound by `break`/`continue`: outputs are read (they
    /// can trap) but never recorded.
    fn memo_exit_break(&mut self, id: u32) -> Result<(), Trap> {
        let r = self.regions.pop().expect("memo region");
        debug_assert!(r.memo && r.id == id, "region stack out of sync");
        if !r.armed {
            return Ok(());
        }
        self.read_outputs(id)?;
        if self.bc.memos[id as usize].fp_words > 0 {
            self.dep_rt.pop_frame();
        }
        self.key_arena.truncate(r.key_start as usize);
        Ok(())
    }

    fn profile_enter(&mut self, id: u32) -> Result<(), Trap> {
        let p = self.bc.profiles[id as usize];
        let ks = self.key_arena.len();
        for op in &p.inputs {
            read_operand_into(
                &self.mem,
                self.frame,
                op,
                &mut self.key_arena,
                &mut self.dep_rt,
            )?;
        }
        {
            let prof = self.profiler.as_mut().expect("profiler present");
            let seg = &mut prof.segs[p.seg as usize];
            seg.n += 1;
            let key = &self.key_arena[ks..];
            if let Some(c) = seg.distinct.get_mut(key) {
                *c += 1;
            } else {
                seg.distinct.insert(key.into(), 1);
            }
            self.seen_scratch.clear();
            for r in &self.regions {
                if r.memo {
                    continue;
                }
                let outer = self.bc.profiles[r.id as usize].seg;
                if outer != p.seg && !self.seen_scratch.contains(&outer) {
                    self.seen_scratch.push(outer);
                    *seg.within.entry(outer).or_insert(0) += 1;
                }
            }
        }
        self.key_arena.truncate(ks);
        self.regions.push(Region {
            memo: false,
            id,
            armed: false,
            key_start: 0,
            entry_cycles: self.cycles,
        });
        Ok(())
    }

    fn profile_exit(&mut self, id: u32) {
        let r = self.regions.pop().expect("profile region");
        debug_assert!(!r.memo && r.id == id, "region stack out of sync");
        let spent = self.cycles - r.entry_cycles;
        let seg = self.bc.profiles[id as usize].seg;
        if let Some(prof) = self.profiler.as_mut() {
            prof.segs[seg as usize].body_cycles += spent;
        }
    }
}
